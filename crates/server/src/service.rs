//! The repair service proper: parses a `POST /repair` body, admits or
//! rejects it, runs the requested technique under a deadline, and shapes
//! the JSON response.
//!
//! This module is transport-agnostic — it maps body text to
//! [`crate::http::Response`] values and leaves sockets, queues and threads
//! to [`crate::server`]. That split keeps the whole admission/deadline
//! policy unit-testable without opening a port.

use std::time::{Duration, Instant};

use std::sync::Arc;

use serde::{Serialize, Value};
use specrepair_core::{
    CancelToken, OracleHandle, RepairBudget, RepairContext, RepairOutcome, RepairTechnique,
};
use specrepair_llm::{
    FaultyLm, MultiRound, ResilientLm, RetryPolicy, SingleRound, SyntheticLm, TransportStats,
};
use specrepair_metrics::{candidate_metrics, CandidateMetrics};
use specrepair_portfolio::{Entrant, EntrantReport, Portfolio};
use specrepair_study::{RosterId, StudyConfig, TechniqueId};
use specrepair_traditional::{ARepair, Atr, BeAFix, Icebar};

use crate::http::Response;

/// Appends `s` as a JSON string literal (quotes and escapes included).
pub fn push_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Policy knobs of the service (transport-independent).
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Deadline applied when the request does not carry `deadline_ms`.
    pub default_deadline_ms: u64,
    /// Largest analysis scope admitted: a spec whose commands ask for more
    /// is rejected with `422` instead of being allowed to monopolise a
    /// worker (scope is the dominant cost driver of bounded analysis).
    pub max_scope: u32,
    /// Server-wide injected LM-transport fault rate (0.0 = off). A request
    /// may override it with a `fault_rate` field. Faults are absorbed by
    /// the resilience layer; this exists so a daemon can run in chaos mode
    /// for smoke tests.
    pub chaos_rate: f64,
    /// Base seed for the server's fault schedules (per-request plans also
    /// mix in the spec text and technique label).
    pub chaos_seed: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            default_deadline_ms: 10_000,
            max_scope: 6,
            chaos_rate: 0.0,
            chaos_seed: 0xC4A05,
        }
    }
}

/// One parsed `POST /repair` request.
#[derive(Debug, Clone)]
pub struct RepairRequest {
    /// The faulty μAlloy specification source.
    pub spec: String,
    /// Technique label (see `GET /techniques`).
    pub technique: String,
    /// Budget override; defaults to the study calibration for the
    /// technique.
    pub budget: Option<RepairBudget>,
    /// Per-request deadline override in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Seed for the stochastic (LLM) techniques.
    pub seed: Option<u64>,
    /// Optional ground-truth source; when present the response carries
    /// TM/SM/REP metrics of the candidate against it.
    pub reference: Option<String>,
    /// Per-request injected-fault rate override (chaos testing).
    pub fault_rate: Option<f64>,
    /// Per-request fault-schedule seed override.
    pub fault_seed: Option<u64>,
}

fn get<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .filter(|v| !matches!(v, Value::Null))
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        Value::I64(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::F64(x) => Some(*x),
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        _ => None,
    }
}

impl RepairRequest {
    /// Parses a request from a JSON body.
    ///
    /// The vendored serde derive requires every field on deserialize, so
    /// the optional-field handling here is by hand: `spec` and `technique`
    /// are mandatory, everything else defaults.
    ///
    /// # Errors
    ///
    /// A human-readable message for any malformed body (not JSON, not an
    /// object, missing/ill-typed fields).
    pub fn parse(body: &str) -> Result<RepairRequest, String> {
        let value: Value =
            serde_json::from_str(body).map_err(|e| format!("body is not valid JSON: {e}"))?;
        let Value::Map(map) = &value else {
            return Err("body must be a JSON object".to_string());
        };
        let spec = get(map, "spec")
            .and_then(as_str)
            .ok_or("missing required string field `spec`")?
            .to_string();
        let technique = get(map, "technique")
            .and_then(as_str)
            .ok_or("missing required string field `technique`")?
            .to_string();
        let budget = match get(map, "budget") {
            None => None,
            Some(Value::Map(b)) => {
                let max_candidates = get(b, "max_candidates")
                    .and_then(as_u64)
                    .ok_or("`budget.max_candidates` must be a non-negative integer")?;
                let max_rounds = get(b, "max_rounds")
                    .and_then(as_u64)
                    .ok_or("`budget.max_rounds` must be a non-negative integer")?;
                Some(RepairBudget {
                    max_candidates: max_candidates as usize,
                    max_rounds: max_rounds as usize,
                })
            }
            Some(_) => return Err("`budget` must be an object".to_string()),
        };
        let number = |key: &str| match get(map, key) {
            None => Ok(None),
            Some(v) => as_u64(v)
                .map(Some)
                .ok_or(format!("`{key}` must be a non-negative integer")),
        };
        let deadline_ms = number("deadline_ms")?;
        let seed = number("seed")?;
        let fault_seed = number("fault_seed")?;
        let fault_rate = match get(map, "fault_rate") {
            None => None,
            Some(v) => Some(
                as_f64(v)
                    .filter(|r| (0.0..=1.0).contains(r))
                    .ok_or("`fault_rate` must be a number in [0, 1]")?,
            ),
        };
        let reference = match get(map, "reference") {
            None => None,
            Some(v) => Some(as_str(v).ok_or("`reference` must be a string")?.to_string()),
        };
        Ok(RepairRequest {
            spec,
            technique,
            budget,
            deadline_ms,
            seed,
            reference,
            fault_rate,
            fault_seed,
        })
    }
}

/// The JSON document returned by `POST /repair` (status `200`, or `504`
/// with `timed_out: true` when the deadline fired first — the fields then
/// describe the partial attempt).
#[derive(Debug, Clone, Serialize)]
pub struct RepairResponse {
    /// Technique label that ran.
    pub technique: String,
    /// Whether the technique's own oracle accepted the final candidate.
    pub success: bool,
    /// Whether the per-request deadline fired during the attempt.
    pub timed_out: bool,
    /// Source text of the final candidate, if any.
    pub candidate: Option<String>,
    /// Oracle validations / drafts spent.
    pub explored: usize,
    /// Refinement rounds used.
    pub rounds: usize,
    /// Wall-clock duration of the attempt in milliseconds.
    pub duration_ms: u64,
    /// REP/TM/SM against `reference`, when one was supplied.
    pub metrics: Option<CandidateMetrics>,
    /// Label of the winning roster member (portfolio techniques only).
    pub winner: Option<String>,
    /// Per-entrant race reports (portfolio techniques only): rank,
    /// success, cost, start/finish/cancelled-at timestamps.
    pub entrants: Option<Vec<EntrantReport>>,
    /// Deterministic trace id of this request's span tree: the root span
    /// id of the cell seeded from (spec, technique, seed), as 16 hex
    /// digits. Stable across replays of the same request whether or not
    /// the collector is on, so a client can correlate its response with
    /// `GET /trace/summary` windows or an offline trace dump.
    pub trace_id: String,
}

/// What one handled repair request looked like, for the metrics registry.
#[derive(Debug, Clone)]
pub struct Handled {
    /// The response to write to the client.
    pub response: Response,
    /// Technique label, when the request got far enough to resolve one.
    pub technique: Option<String>,
    /// Repair wall-clock latency, when a repair actually ran.
    pub latency: Option<Duration>,
    /// Whether the deadline fired.
    pub timed_out: bool,
    /// Per-entrant latencies of a portfolio race, as
    /// `("<portfolio>/<member>", micros)` pairs — the registry records
    /// them as their own `/metrics` histogram rows.
    pub entrant_latency: Vec<(String, u64)>,
}

impl Handled {
    fn rejection(response: Response) -> Handled {
        Handled {
            response,
            technique: None,
            latency: None,
            timed_out: false,
            entrant_latency: Vec::new(),
        }
    }
}

/// The repair service: one shared oracle plus the admission policy.
#[derive(Debug, Clone)]
pub struct RepairService {
    oracle: OracleHandle,
    config: ServiceConfig,
    /// Daemon-wide resilience counters: every per-request LM stack writes
    /// its retries, breaker events and injected-fault counts here, so
    /// `GET /metrics` reports them aggregated.
    transport: Arc<TransportStats>,
}

impl RepairService {
    /// A service over the given shared oracle.
    pub fn new(oracle: OracleHandle, config: ServiceConfig) -> RepairService {
        RepairService {
            oracle,
            config,
            transport: Arc::new(TransportStats::new()),
        }
    }

    /// The shared oracle handle (for `/metrics`).
    pub fn oracle(&self) -> &OracleHandle {
        &self.oracle
    }

    /// The aggregated resilience counters (for `/metrics`).
    pub fn transport_stats(&self) -> &Arc<TransportStats> {
        &self.transport
    }

    /// Handles one `POST /repair` body end to end.
    pub fn handle_repair(&self, body: &str) -> Handled {
        let request = match RepairRequest::parse(body) {
            Ok(r) => r,
            Err(msg) => return Handled::rejection(Response::error(400, &msg)),
        };
        let Some(id) = TechniqueId::from_label(&request.technique) else {
            return Handled::rejection(Response::error(
                400,
                &format!(
                    "unknown technique {:?}; see GET /techniques",
                    request.technique
                ),
            ));
        };
        let faulty = match mualloy_syntax::parse_spec(&request.spec) {
            Ok(s) => s,
            Err(e) => {
                return Handled::rejection(Response::error(
                    400,
                    &format!("`spec` does not parse: {e}"),
                ))
            }
        };
        if let Some(cmd) = faulty
            .commands
            .iter()
            .find(|c| c.scope > self.config.max_scope)
        {
            return Handled::rejection(Response::error(
                422,
                &format!(
                    "command `{}` asks for scope {}, above this server's limit of {}",
                    cmd.target(),
                    cmd.scope,
                    self.config.max_scope
                ),
            ));
        }
        let reference = match &request.reference {
            None => None,
            Some(src) => match mualloy_syntax::parse_spec(src) {
                Ok(spec) => Some((spec, src.clone())),
                Err(e) => {
                    return Handled::rejection(Response::error(
                        400,
                        &format!("`reference` does not parse: {e}"),
                    ))
                }
            },
        };

        let study = StudyConfig {
            seed: request.seed.unwrap_or(StudyConfig::default().seed),
            fault_rate: request.fault_rate.unwrap_or(self.config.chaos_rate),
            fault_seed: request.fault_seed.unwrap_or(self.config.chaos_seed),
            ..StudyConfig::default()
        };
        let budget = request.budget.unwrap_or_else(|| study.budget_for(id));
        let deadline_ms = request
            .deadline_ms
            .unwrap_or(self.config.default_deadline_ms);
        let cancel = CancelToken::with_deadline(Duration::from_millis(deadline_ms));
        let ctx = RepairContext::new(faulty, budget)
            .with_source(&request.spec)
            .with_oracle(self.oracle.clone())
            .with_cancel(cancel.clone());

        // The request's deterministic span-id space: seeded from the cell
        // identity (spec text × technique × seed), so a replayed request
        // produces the same trace_id and span ids every time.
        let trace_seed = study.cell_seed_for(&request.spec, id.label());
        let trace_id = format!("{:016x}", specrepair_trace::root_span_id(trace_seed));

        let started = Instant::now();
        let (outcome, reports) = {
            let _trace_scope = specrepair_trace::cell_scope(trace_seed, 0, None);
            let cell_span = specrepair_trace::span("cell", specrepair_trace::Phase::Orchestration);
            if cell_span.is_active() {
                cell_span.attr_str("technique", id.label());
                cell_span.attr_str("problem", &trace_id);
            }
            match id {
                TechniqueId::Portfolio(roster) => {
                    let (outcome, reports) = run_portfolio(roster, &study, &ctx, &self.transport);
                    (outcome, Some(reports))
                }
                _ => (run_technique(id, &study, &ctx, &self.transport), None),
            }
        };
        let latency = started.elapsed();
        let timed_out = cancel.is_cancelled();

        let entrant_latency = reports
            .as_deref()
            .map(|reports| {
                reports
                    .iter()
                    .filter_map(|r| {
                        let (start, finish) = (r.started_ms?, r.finished_ms?);
                        let micros = finish.saturating_sub(start).saturating_mul(1000);
                        Some((format!("{}/{}", id.label(), r.label), micros))
                    })
                    .collect()
            })
            .unwrap_or_default();
        let winner = reports.as_deref().and_then(|reports| {
            reports
                .iter()
                .find(|r| r.success && r.counted)
                .map(|r| r.label.clone())
        });
        let metrics = reference.as_ref().map(|(truth, truth_source)| {
            candidate_metrics(truth, truth_source, outcome.candidate_source.as_deref())
        });
        let doc = RepairResponse {
            technique: outcome.technique.clone(),
            success: outcome.success,
            timed_out,
            candidate: outcome.candidate_source.clone(),
            explored: outcome.candidates_explored,
            rounds: outcome.rounds,
            duration_ms: latency.as_millis() as u64,
            metrics,
            winner,
            entrants: reports,
            trace_id,
        };
        let body = serde_json::to_string(&doc).expect("repair response always serializes");
        let status = if timed_out { 504 } else { 200 };
        Handled {
            response: Response::json(status, body),
            technique: Some(id.label().to_string()),
            latency: Some(latency),
            timed_out,
            entrant_latency,
        }
    }

    /// The `GET /techniques` document: every label the service accepts —
    /// the twelve studied techniques plus the portfolio rosters.
    pub fn techniques_document() -> String {
        let labels: Vec<String> = TechniqueId::with_portfolios()
            .into_iter()
            .map(|id| id.label().to_string())
            .collect();
        serde_json::to_string_pretty(&Value::Map(vec![(
            "techniques".to_string(),
            labels.to_value(),
        )]))
        .expect("techniques document always serializes")
    }
}

/// Dispatches one technique by id. Single-Round runs without problem hints:
/// a service request carries no benchmark fault metadata, which matches the
/// paper's `None` prompt ablation for the hinted settings.
///
/// The LLM techniques run behind a [`ResilientLm`]; when the effective
/// fault rate is nonzero the stack additionally injects deterministic
/// transport faults (keyed by the request's spec text and technique, so a
/// replayed request sees the same schedule). Either way the stack's
/// counters aggregate into the daemon-wide `stats`.
fn run_technique(
    id: TechniqueId,
    study: &StudyConfig,
    ctx: &RepairContext,
    stats: &Arc<TransportStats>,
) -> RepairOutcome {
    let lm = || {
        let base = if study.chaos_enabled() {
            let plan = study.fault_plan_for(&ctx.source, id.label());
            let retries = plan.max_consecutive_faults(4096).max(4);
            ResilientLm::over(
                FaultyLm::new(SyntheticLm::default(), plan).with_stats(stats.faults.clone()),
            )
            .with_policy(RetryPolicy::snappy().with_max_retries(retries))
        } else {
            ResilientLm::synthetic()
        };
        base.with_stats(Arc::clone(stats))
    };
    match id {
        TechniqueId::ARepair => ARepair::default().repair(ctx),
        TechniqueId::Icebar => Icebar::default().repair(ctx),
        TechniqueId::BeAFix => BeAFix::default().repair(ctx),
        TechniqueId::Atr => Atr::default().repair(ctx),
        TechniqueId::Single(setting) => SingleRound::new(setting, study.seed)
            .with_lm(lm())
            .repair(ctx),
        TechniqueId::Multi(feedback) => MultiRound::new(feedback, study.seed)
            .with_lm(lm())
            .repair(ctx),
        TechniqueId::Portfolio(_) => unreachable!("portfolios dispatch through run_portfolio"),
    }
}

/// Races one roster for a service request: every member becomes an entrant
/// running this service's own technique dispatch (so each gets the daemon's
/// resilient LM stack, and a chaos-afflicted entrant retries or loses the
/// race instead of stalling it). The request's deadline token is the race's
/// parent: when it fires, every entrant's child token fires with it.
fn run_portfolio(
    roster: RosterId,
    study: &StudyConfig,
    ctx: &RepairContext,
    stats: &Arc<TransportStats>,
) -> (RepairOutcome, Vec<EntrantReport>) {
    let entrants: Vec<Entrant> = roster
        .members()
        .into_iter()
        .map(|member| {
            let stats = Arc::clone(stats);
            Entrant::new(
                member.label(),
                study.budget_for(member),
                move |entrant_ctx: &RepairContext| {
                    run_technique(member, study, entrant_ctx, &stats)
                },
            )
        })
        .collect();
    let raced = Portfolio::new(roster.label()).race(ctx, entrants);
    (raced.outcome, raced.entrants)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FAULTY: &str = "sig N { next: lone N } \
        fact { some n: N | n in n.next } \
        assert NoSelf { all n: N | n not in n.next } \
        check NoSelf for 3 expect 0";

    const TRUTH: &str = "sig N { next: lone N } \
        fact { no n: N | n in n.next } \
        assert NoSelf { all n: N | n not in n.next } \
        check NoSelf for 3 expect 0";

    fn service() -> RepairService {
        RepairService::new(OracleHandle::fresh(), ServiceConfig::default())
    }

    fn repair_body(technique: &str, extra: &str) -> String {
        let mut spec = String::new();
        push_json_string(FAULTY, &mut spec);
        format!("{{\"spec\":{spec},\"technique\":\"{technique}\"{extra}}}")
    }

    #[test]
    fn push_json_string_escapes() {
        let mut out = String::new();
        push_json_string("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn parse_requires_spec_and_technique() {
        assert!(RepairRequest::parse("not json").is_err());
        assert!(RepairRequest::parse("[1,2]").is_err());
        assert!(RepairRequest::parse("{\"spec\":\"x\"}")
            .unwrap_err()
            .contains("technique"));
        let r = RepairRequest::parse(
            "{\"spec\":\"x\",\"technique\":\"ATR\",\"deadline_ms\":250,\
             \"budget\":{\"max_candidates\":5,\"max_rounds\":1},\"seed\":9}",
        )
        .unwrap();
        assert_eq!(r.technique, "ATR");
        assert_eq!(r.deadline_ms, Some(250));
        assert_eq!(r.seed, Some(9));
        assert_eq!(r.budget.unwrap().max_candidates, 5);
        assert!(r.reference.is_none());
    }

    #[test]
    fn unknown_technique_and_bad_spec_are_400() {
        let s = service();
        let h = s.handle_repair(&repair_body("NoSuchTool", ""));
        assert_eq!(h.response.status, 400);
        assert!(h.response.body.contains("unknown technique"));
        let h = s.handle_repair("{\"spec\":\"sig {\",\"technique\":\"ATR\"}");
        assert_eq!(h.response.status, 400);
        assert!(h.response.body.contains("does not parse"));
    }

    #[test]
    fn oversized_scope_is_422() {
        let s = RepairService::new(
            OracleHandle::fresh(),
            ServiceConfig {
                max_scope: 2,
                ..ServiceConfig::default()
            },
        );
        let h = s.handle_repair(&repair_body("ATR", ""));
        assert_eq!(h.response.status, 422, "{}", h.response.body);
        assert!(h.response.body.contains("scope 3"));
    }

    #[test]
    fn repair_succeeds_and_reports_metrics() {
        let s = service();
        let mut reference = String::new();
        push_json_string(TRUTH, &mut reference);
        let h = s.handle_repair(&repair_body("ATR", &format!(",\"reference\":{reference}")));
        assert_eq!(h.response.status, 200, "{}", h.response.body);
        assert_eq!(h.technique.as_deref(), Some("ATR"));
        assert!(h.latency.is_some());
        assert!(h.response.body.contains("\"success\":true"));
        assert!(h.response.body.contains("\"rep\":1"));
    }

    #[test]
    fn chaos_request_is_absorbed_and_counted() {
        let s = service();
        let clean = s.handle_repair(&repair_body("Single-Round_None", ""));
        let chaotic = s.handle_repair(&repair_body("Single-Round_None", ",\"fault_rate\":0.9"));
        assert_eq!(chaotic.response.status, 200, "{}", chaotic.response.body);
        // Injected transient faults are retried away and must not change
        // the repair result (only the wall-clock field may differ).
        let strip = |body: &str| {
            let Value::Map(map) = serde_json::from_str(body).unwrap() else {
                panic!("response is not an object");
            };
            let kept: Vec<_> = map
                .into_iter()
                .filter(|(k, _)| k != "duration_ms")
                .collect();
            serde_json::to_string(&Value::Map(kept)).unwrap()
        };
        assert_eq!(strip(&clean.response.body), strip(&chaotic.response.body));
        // The injected faults and retries land in the daemon-wide stats.
        let stats = s.transport_stats();
        assert!(stats.faults.total() > 0, "faults were injected");
        assert!(
            stats.retries.get() >= stats.faults.total(),
            "every injected fault was retried"
        );
    }

    #[test]
    fn fault_rate_outside_unit_interval_is_400() {
        let s = service();
        let h = s.handle_repair(&repair_body("ATR", ",\"fault_rate\":1.5"));
        assert_eq!(h.response.status, 400);
        assert!(h.response.body.contains("fault_rate"));
    }

    #[test]
    fn millisecond_deadline_times_out_instead_of_hanging() {
        let s = service();
        let h = s.handle_repair(&repair_body("Multi-Round_Auto", ",\"deadline_ms\":0"));
        assert_eq!(h.response.status, 504, "{}", h.response.body);
        assert!(h.timed_out);
        assert!(h.response.body.contains("\"timed_out\":true"));
    }

    #[test]
    fn techniques_document_lists_all_twelve_plus_portfolios() {
        let doc = RepairService::techniques_document();
        for id in TechniqueId::with_portfolios() {
            assert!(doc.contains(id.label()), "{doc}");
        }
        assert!(doc.contains("Portfolio_All"), "{doc}");
    }

    #[test]
    fn portfolio_request_races_and_reports_entrants() {
        let s = service();
        let mut reference = String::new();
        push_json_string(TRUTH, &mut reference);
        let h = s.handle_repair(&repair_body(
            "Portfolio_ARepair+Single-Round_Loc",
            &format!(",\"reference\":{reference}"),
        ));
        assert_eq!(h.response.status, 200, "{}", h.response.body);
        assert_eq!(
            h.technique.as_deref(),
            Some("Portfolio_ARepair+Single-Round_Loc")
        );
        assert!(
            h.response.body.contains("\"entrants\""),
            "{}",
            h.response.body
        );
        assert!(h.response.body.contains("\"rank\""), "{}", h.response.body);
        // Both members ran (or were raced); each ran one reports a latency
        // row the daemon exposes as "<portfolio>/<member>".
        for (label, _) in &h.entrant_latency {
            assert!(
                label.starts_with("Portfolio_ARepair+Single-Round_Loc/"),
                "{label}"
            );
        }
        // The winner (if the race repaired the spec) is one of the members.
        if h.response.body.contains("\"success\":true") {
            assert!(
                h.response.body.contains("\"winner\""),
                "{}",
                h.response.body
            );
        }
    }

    #[test]
    fn portfolio_respects_the_request_deadline() {
        let s = service();
        let h = s.handle_repair(&repair_body("Portfolio_All", ",\"deadline_ms\":0"));
        assert_eq!(h.response.status, 504, "{}", h.response.body);
        assert!(h.timed_out);
    }
}
