//! `specrepaird route`: the deterministic cluster front-end.
//!
//! The router owns no verdicts. It parses just enough of each `/repair`
//! body to compute the spec's canonical fingerprint, asks the shared
//! [`ShardRing`] which shard owns it, and forwards the raw body there —
//! the shard's response is relayed byte-for-byte. Verdict probes
//! (`GET`/`PUT /verdict/<fp>`) forward the same way. Routing is a pure
//! function of (ordered shard list, request body): two routers given the
//! same `--shards` list make identical decisions, so clients can sit
//! behind any of them.
//!
//! Failure handling mirrors the persistent tier's discipline: one retry on
//! transport error, a per-shard [`CallBreaker`] that stops hammering a
//! dead peer, and **degraded local solve** — the router embeds a full
//! [`RepairService`] and serves the request itself when the owning shard
//! is unreachable. A degraded answer is computed by the same deterministic
//! pipeline the shard would have run, so outputs stay byte-identical; the
//! cluster loses only its cache locality, never correctness.

use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use mualloy_analyzer::Oracle;
use mualloy_syntax::Fingerprint;
use specrepair_cluster::client;
use specrepair_cluster::ShardRing;
use specrepair_core::OracleHandle;
use specrepair_faults::CallBreaker;
use specrepair_telemetry::{
    fleet_document, prom, ClusterSection, RouterClusterSection, RouterShardRow, ShardScrape,
    Snapshot,
};

use crate::engine::{self, Admission, HttpApp};
use crate::http::{Request, Response};
use crate::metrics::ServerMetrics;
use crate::service::{RepairService, ServiceConfig};

/// Consecutive transport failures (after the in-call retry) that open a
/// shard's breaker — the same discipline as the persistent tier's.
const TRIP_AFTER: u32 = 3;

/// Forward attempts skipped while open before one probe is let through.
const HALFOPEN_AFTER: u32 = 16;

/// Read timeout for one forwarded call. Generous: a forwarded repair runs
/// a full SAT-backed search on the shard; the client's own `deadline_ms`
/// bounds it there, and this only catches a hung peer.
const FORWARD_TIMEOUT: Duration = Duration::from_secs(60);

/// Configuration of one router instance.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; use port 0 for an ephemeral port (tests).
    pub addr: String,
    /// The ordered shard address list — the cluster membership contract,
    /// identical to what every shard was booted with.
    pub shards: Vec<String>,
    /// Worker threads forwarding requests (and solving degraded ones).
    pub workers: usize,
    /// Admission queue capacity; connections beyond it are shed with `503`.
    pub queue_capacity: usize,
    /// Deadline for degraded local repairs without `deadline_ms`.
    pub default_deadline_ms: u64,
    /// Largest admitted analysis scope for degraded local repairs.
    pub max_scope: u32,
    /// Optional shutdown signal file, as the daemon's.
    pub shutdown_file: Option<PathBuf>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:7870".to_string(),
            shards: Vec::new(),
            workers: 4,
            queue_capacity: 64,
            default_deadline_ms: 10_000,
            max_scope: 6,
            shutdown_file: None,
        }
    }
}

/// Per-shard forwarding counters.
#[derive(Debug, Default)]
struct ShardCounters {
    forwarded: AtomicU64,
    retries: AtomicU64,
    failures: AtomicU64,
}

/// Shared state between the router's acceptor, workers and handle.
struct RouterState {
    ring: ShardRing,
    /// The degraded-mode fallback: a complete local repair service.
    local: RepairService,
    metrics: ServerMetrics,
    admission: Admission,
    breakers: Vec<CallBreaker>,
    shards: Vec<ShardCounters>,
    degraded_local_solves: AtomicU64,
    breaker_trips: AtomicU64,
    skipped_open: AtomicU64,
}

impl HttpApp for RouterState {
    fn admission(&self) -> &Admission {
        &self.admission
    }

    fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    fn route(self: &Arc<Self>, request: &Request) -> Response {
        route(self, request)
    }
}

/// A running router: its bound address plus the thread handles.
pub struct RouterHandle {
    addr: SocketAddr,
    state: Arc<RouterState>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl RouterHandle {
    /// The address the router actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates graceful shutdown (idempotent).
    pub fn shutdown(&self) {
        self.state.admission.begin_drain();
    }

    /// Blocks until the acceptor and every worker have exited; call
    /// [`RouterHandle::shutdown`] (or POST `/shutdown`) first.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Binds the listener and spawns the router threads.
///
/// # Errors
///
/// Propagates the bind failure; `InvalidInput` when `shards` is empty (a
/// router with nothing to route to is a misconfiguration, not a mode).
pub fn spawn_router(config: RouterConfig) -> std::io::Result<RouterHandle> {
    if config.shards.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "a router needs at least one shard address",
        ));
    }
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let state = Arc::new(RouterState {
        ring: ShardRing::from_addrs(&config.shards),
        local: RepairService::new(
            OracleHandle::fresh(),
            ServiceConfig {
                default_deadline_ms: config.default_deadline_ms,
                max_scope: config.max_scope,
                chaos_rate: 0.0,
                chaos_seed: 0,
            },
        ),
        metrics: ServerMetrics::new(),
        admission: Admission::new(config.queue_capacity, config.shutdown_file.clone()),
        breakers: config
            .shards
            .iter()
            .map(|_| CallBreaker::new(TRIP_AFTER, HALFOPEN_AFTER))
            .collect(),
        shards: config
            .shards
            .iter()
            .map(|_| ShardCounters::default())
            .collect(),
        degraded_local_solves: AtomicU64::new(0),
        breaker_trips: AtomicU64::new(0),
        skipped_open: AtomicU64::new(0),
    });
    let (acceptor, workers) =
        engine::spawn_threads(listener, config.workers, "specrepaird-route", &state);
    Ok(RouterHandle {
        addr,
        state,
        acceptor: Some(acceptor),
        workers,
    })
}

/// The fingerprint a `/repair` body routes on: parse the request envelope,
/// then the spec source, then take the canonical Merkle fingerprint — the
/// exact key the owning shard's oracle will memoize the work under.
/// `None` when the body or spec is malformed (those requests are answered
/// locally; every daemon rejects them identically).
fn repair_routing_key(body: &str) -> Option<Fingerprint> {
    let request = crate::service::RepairRequest::parse(body).ok()?;
    let spec = mualloy_syntax::parse_spec(&request.spec).ok()?;
    Some(Oracle::fingerprint(&spec))
}

/// Forwards one call to shard `index`, retrying once on transport error
/// and feeding the shard's breaker. `None` means the shard is unreachable
/// (or its breaker is open) and the caller should degrade.
fn forward(
    state: &RouterState,
    index: usize,
    method: &str,
    path: &str,
    body: &str,
) -> Option<(u16, String)> {
    if !state.breakers[index].allow() {
        state.skipped_open.fetch_add(1, Ordering::Relaxed);
        return None;
    }
    let addr = &state.ring.nodes()[index].addr;
    let counters = &state.shards[index];
    for attempt in 0..2 {
        match client::call(addr, method, path, body, FORWARD_TIMEOUT) {
            Ok(reply) => {
                state.breakers[index].success();
                counters.forwarded.fetch_add(1, Ordering::Relaxed);
                return Some(reply);
            }
            Err(_) if attempt == 0 => {
                counters.retries.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                counters.failures.fetch_add(1, Ordering::Relaxed);
                if state.breakers[index].failure() {
                    state.breaker_trips.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
    None
}

/// Serves one `/repair` body with the router's own embedded service — the
/// degraded path when the owning shard is down, and the canonical-error
/// path for bodies too malformed to route on.
fn local_repair(state: &RouterState, body: &str) -> Response {
    let handled = state.local.handle_repair(body);
    if let (Some(technique), Some(latency)) = (&handled.technique, handled.latency) {
        state
            .metrics
            .record_latency(technique, latency.as_micros() as u64);
    }
    for (label, micros) in &handled.entrant_latency {
        state.metrics.record_latency(label, *micros);
    }
    if handled.timed_out {
        state.metrics.record_deadline_exceeded();
    }
    handled.response
}

/// `POST /repair`: route on the spec fingerprint, forward raw, degrade to
/// a local solve when the owning shard is unreachable.
fn route_repair(state: &RouterState, body: &str) -> Response {
    let Some(key) = repair_routing_key(body) else {
        // Unroutable bodies get the canonical local rejection (the same
        // 4xx any shard would produce).
        return local_repair(state, body);
    };
    let owner = state.ring.owner_index(key);
    match forward(state, owner, "POST", "/repair", body) {
        // Byte-for-byte relay of whatever the shard answered, errors
        // included: the router adds routing, not interpretation.
        Some((status, text)) => Response::json(status, text),
        None => {
            state.degraded_local_solves.fetch_add(1, Ordering::Relaxed);
            local_repair(state, body)
        }
    }
}

/// `GET /verdict/<fp>` through the router: forwarded to the owner; when
/// the owner is down the router's own memo is the only fallback (usually a
/// 404 — the router solves only degraded repairs).
fn route_verdict_get(state: &RouterState, hex: &str) -> Response {
    let Some(key) = crate::server::parse_fingerprint(hex) else {
        return Response::error(400, "malformed fingerprint (want 32 hex digits)");
    };
    let owner = state.ring.owner_index(key);
    if let Some(reply) = forward(state, owner, "GET", &format!("/verdict/{key}"), "") {
        let (status, text) = reply;
        return Response::json(status, text);
    }
    state.degraded_local_solves.fetch_add(1, Ordering::Relaxed);
    match state.local.oracle().service().probe_verdict(key) {
        Some(verdict) => Response::json(
            200,
            format!("{{\"verdict\":{verdict},\"source\":\"degraded\"}}"),
        ),
        None => Response::error(404, "unknown fingerprint (owner unreachable)"),
    }
}

/// `PUT /verdict/<fp>` through the router: forwarded to the owner; when
/// the owner is down the verdict lands in the router's own memo so the
/// degraded repair path can still use it.
fn route_verdict_put(state: &RouterState, hex: &str, body: &str) -> Response {
    let Some(key) = crate::server::parse_fingerprint(hex) else {
        return Response::error(400, "malformed fingerprint (want 32 hex digits)");
    };
    let verdict = match body.trim() {
        "1" | "true" => true,
        "0" | "false" => false,
        _ => return Response::error(400, "verdict body must be 0 or 1"),
    };
    let owner = state.ring.owner_index(key);
    if let Some((status, text)) = forward(state, owner, "PUT", &format!("/verdict/{key}"), body) {
        return Response::json(status, text);
    }
    state.degraded_local_solves.fetch_add(1, Ordering::Relaxed);
    state.local.oracle().service().inject_verdict(key, verdict);
    Response::json(200, "{\"stored\":true,\"degraded\":true}")
}

/// The typed `cluster` section of the router's `/metrics`.
fn cluster_section(state: &RouterState) -> ClusterSection {
    let shards = state
        .ring
        .nodes()
        .iter()
        .zip(&state.shards)
        .enumerate()
        .map(|(index, (node, counters))| RouterShardRow {
            addr: node.addr.clone(),
            forwarded: counters.forwarded.load(Ordering::Relaxed),
            retries: counters.retries.load(Ordering::Relaxed),
            failures: counters.failures.load(Ordering::Relaxed),
            breaker_open: state.breakers[index].is_open(),
        })
        .collect();
    ClusterSection::Router(RouterClusterSection {
        shards,
        degraded_local_solves: state.degraded_local_solves.load(Ordering::Relaxed),
        breaker_trips: state.breaker_trips.load(Ordering::Relaxed),
        skipped_open: state.skipped_open.load(Ordering::Relaxed),
    })
}

/// The router's full telemetry snapshot (its own counters, degraded-path
/// service stats, and the per-shard forwarding section).
fn full_snapshot(state: &RouterState) -> Snapshot {
    let oracle = state.local.oracle();
    state.metrics.snapshot(
        &oracle.stats(),
        oracle.service().memoized_specs(),
        &oracle.dedup_stats(),
        &oracle.incremental_stats(),
        state.local.transport_stats(),
        None,
        cluster_section(state),
    )
}

/// Read timeout for one shard telemetry scrape: a snapshot render is a
/// memory walk on the shard, never a solve.
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(5);

/// Scrapes one shard's `/metrics/prom` for the fleet view, behind the same
/// per-shard breaker the forwarding path feeds, with one retry. Scrapes
/// never count as forwards — `ShardCounters.forwarded` stays a routing
/// metric — but a dead shard's scrape failures do feed its breaker.
fn scrape_shard(state: &RouterState, index: usize) -> ShardScrape {
    let addr = state.ring.nodes()[index].addr.clone();
    if !state.breakers[index].allow() {
        return ShardScrape::stale(addr, "breaker open");
    }
    let mut last_error = String::new();
    for _ in 0..2 {
        match client::call(&addr, "GET", "/metrics/prom", "", SCRAPE_TIMEOUT) {
            Ok((200, body)) => {
                state.breakers[index].success();
                return match prom::parse(&body) {
                    Ok(samples) => ShardScrape::fresh(addr, samples),
                    Err(why) => ShardScrape::stale(addr, format!("unparsable exposition: {why}")),
                };
            }
            Ok((status, _)) => {
                state.breakers[index].success();
                return ShardScrape::stale(addr, format!("shard answered {status}"));
            }
            Err(why) => last_error = why.to_string(),
        }
    }
    if state.breakers[index].failure() {
        state.breaker_trips.fetch_add(1, Ordering::Relaxed);
    }
    ShardScrape::stale(addr, format!("scrape failed: {last_error}"))
}

/// `GET /cluster/metrics`: scrape every shard's exposition and serve the
/// merged fleet document (summed counters, merged histograms, min/max/mean
/// gauges); unreachable shards are labeled stale, never omitted.
fn cluster_metrics(state: &RouterState) -> Response {
    let scrapes: Vec<ShardScrape> = (0..state.ring.len())
        .map(|index| scrape_shard(state, index))
        .collect();
    Response::json(200, fleet_document(&scrapes))
}

/// Routes one request and records it in the metrics.
fn route(state: &Arc<RouterState>, request: &Request) -> Response {
    let (endpoint, response) = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let status = if state.admission.is_draining() {
                "draining"
            } else {
                "ok"
            };
            (
                "healthz",
                Response::json(200, format!("{{\"status\":\"{status}\"}}")),
            )
        }
        // Technique metadata is static; no reason to burden a shard.
        ("GET", "/techniques") => (
            "techniques",
            Response::json(200, RepairService::techniques_document()),
        ),
        ("GET", "/metrics") => (
            "metrics",
            Response::json(200, full_snapshot(state).to_json()),
        ),
        ("GET", "/metrics/prom") => (
            "metrics",
            Response::text(200, prom::render(&full_snapshot(state))),
        ),
        ("GET", "/cluster/metrics") => ("cluster_metrics", cluster_metrics(state)),
        ("POST", "/repair") => ("repair", route_repair(state, &request.body_text())),
        ("GET", path) if path.starts_with("/verdict/") => (
            "verdict",
            route_verdict_get(state, &path["/verdict/".len()..]),
        ),
        ("PUT", path) if path.starts_with("/verdict/") => (
            "verdict",
            route_verdict_put(state, &path["/verdict/".len()..], &request.body_text()),
        ),
        ("POST", "/shutdown") => {
            state.admission.begin_drain();
            ("shutdown", Response::json(200, "{\"status\":\"draining\"}"))
        }
        (
            _,
            "/healthz" | "/techniques" | "/metrics" | "/metrics/prom" | "/cluster/metrics"
            | "/repair" | "/shutdown",
        ) => (
            "http",
            Response::error(405, &format!("{} not allowed here", request.method)),
        ),
        (_, path) if path.starts_with("/verdict/") => (
            "http",
            Response::error(405, &format!("{} not allowed here", request.method)),
        ),
        (_, path) => (
            "http",
            Response::error(404, &format!("no route for {path}")),
        ),
    };
    state.metrics.record_request(endpoint, response.status);
    response
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_refuses_an_empty_shard_list() {
        let err = spawn_router(RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            ..RouterConfig::default()
        });
        assert!(err.is_err());
    }

    #[test]
    fn repair_routing_key_requires_a_parsable_spec() {
        assert!(repair_routing_key("not json").is_none());
        assert!(repair_routing_key("{\"technique\":\"ATR\"}").is_none());
        let body = "{\"spec\":\"sig A {}\",\"technique\":\"ATR\"}";
        let key = repair_routing_key(body).expect("well-formed body routes");
        // Same body, same key: the routing function is deterministic.
        assert_eq!(repair_routing_key(body), Some(key));
    }
}
