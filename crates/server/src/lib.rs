//! `specrepair-server`: repair-as-a-service.
//!
//! The `specrepaird` daemon exposes every technique of the study over a
//! hand-rolled HTTP/1.1 API (the build environment is offline, so there is
//! no async runtime — a blocking acceptor, a bounded admission queue and a
//! fixed worker pool over `std::net` carry the whole thing):
//!
//! - `POST /repair` — repair one μAlloy specification with a named
//!   technique under a budget and a wall-clock deadline; optionally score
//!   the candidate against a reference (ground-truth) specification.
//! - `GET /techniques` — the twelve accepted technique labels.
//! - `GET /healthz` — liveness (reports `draining` during shutdown).
//! - `GET /metrics` — request counts, per-technique latency percentiles,
//!   queue depth and the shared oracle's cache statistics.
//! - `POST /shutdown` — graceful shutdown: stop admitting, drain, exit.
//!
//! Overload sheds at admission (`503` + `Retry-After`), deadlines cancel
//! cooperatively through [`specrepair_core::CancelToken`] (a late repair
//! returns `504` with the partial outcome instead of hanging), and the
//! bundled [`loadgen`] drives a running daemon for smoke tests and
//! capacity checks.
//!
//! Module map: [`http`] wire parsing · [`service`] request→repair→response
//! · [`server`] threads, queue, shutdown · [`metrics`] observability ·
//! [`loadgen`] the client.

pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod server;
pub mod service;

pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use metrics::{Histogram, ServerMetrics};
pub use server::{roundtrip, spawn, ServerConfig, ServerHandle};
pub use service::{RepairRequest, RepairService, ServiceConfig};
