//! `specrepair-server`: repair-as-a-service.
//!
//! The `specrepaird` daemon exposes every technique of the study over a
//! hand-rolled HTTP/1.1 API (the build environment is offline, so there is
//! no async runtime — a blocking acceptor, a bounded admission queue and a
//! fixed worker pool over `std::net` carry the whole thing):
//!
//! - `POST /repair` — repair one μAlloy specification with a named
//!   technique under a budget and a wall-clock deadline; optionally score
//!   the candidate against a reference (ground-truth) specification.
//! - `GET /techniques` — the twelve accepted technique labels.
//! - `GET /healthz` — liveness (reports `draining` during shutdown).
//! - `GET /metrics` — request counts, per-technique latency percentiles,
//!   queue depth and the shared oracle's cache statistics.
//! - `POST /shutdown` — graceful shutdown: stop admitting, drain, exit.
//!
//! Overload sheds at admission (`503` + `Retry-After`), deadlines cancel
//! cooperatively through [`specrepair_core::CancelToken`] (a late repair
//! returns `504` with the partial outcome instead of hanging), and the
//! bundled [`loadgen`] drives a running daemon for smoke tests and
//! capacity checks.
//!
//! The daemon also scales out: `specrepaird serve --shard-id N --peers …`
//! runs it as one shard of a consistent-hash oracle cluster (adding the
//! compact `GET`/`PUT /verdict/<fingerprint>` shard API), and
//! `specrepaird route --shards …` runs the deterministic [`router`] that
//! forwards each repair to the shard owning its spec fingerprint —
//! degrading to a local solve when that shard is down.
//!
//! Module map: [`http`] wire parsing · [`service`] request→repair→response
//! · [`engine`] threads, queue, shutdown · [`server`] the daemon/shard ·
//! [`router`] the cluster front-end · [`metrics`] observability ·
//! [`loadgen`] the client.

pub(crate) mod engine;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod router;
pub mod server;
pub mod service;

pub use loadgen::{LoadgenConfig, LoadgenReport, WorkloadProfile};
pub use metrics::{Histogram, ServerMetrics};
pub use router::{spawn_router, RouterConfig, RouterHandle};
pub use server::{roundtrip, spawn, ServerConfig, ServerHandle, ShardConfig};
pub use service::{RepairRequest, RepairService, ServiceConfig};
