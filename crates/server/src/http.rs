//! A minimal, dependency-free HTTP/1.1 layer over `std::net`.
//!
//! The build environment is fully offline — no tokio, no hyper — so
//! `specrepaird` speaks exactly the slice of HTTP/1.1 it needs: request
//! line + headers + `Content-Length` bodies on the way in, status line +
//! JSON bodies on the way out, with opt-out keep-alive. Anything outside
//! that slice is answered with a `400`/`413` and the connection closed.

use std::io::{BufRead, Write};

/// Largest request body accepted, in bytes. Specifications are text; a
/// megabyte of μAlloy is far beyond anything the corpus contains.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Request target path (query strings are not used by this API).
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    /// The body as UTF-8, replacing invalid sequences.
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// The peer closed the connection cleanly before sending a request.
    Closed,
    /// The bytes on the wire were not a well-formed HTTP/1.x request.
    Malformed(String),
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    TooLarge(usize),
    /// An I/O error (including read timeouts on idle keep-alive peers).
    Io(std::io::Error),
}

/// Reads one request from a buffered stream.
///
/// # Errors
///
/// See [`RequestError`]; `Closed` is the clean end of a keep-alive session,
/// everything else should terminate the connection (after a `400`/`413`
/// where a response is still possible).
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, RequestError> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Err(RequestError::Closed),
        Ok(_) => {}
        Err(e) => return Err(RequestError::Io(e)),
    }
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => {
            (m.to_ascii_uppercase(), p.to_string(), v.to_string())
        }
        _ => {
            return Err(RequestError::Malformed(format!(
                "bad request line: {:?}",
                line.trim_end()
            )))
        }
    };

    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => return Err(RequestError::Malformed("eof inside headers".to_string())),
            Ok(_) => {}
            Err(e) => return Err(RequestError::Io(e)),
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(RequestError::Malformed(format!("bad header: {header:?}")));
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| RequestError::Malformed(format!("bad content-length {value:?}")))?
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    keep_alive = false;
                } else if v.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            _ => {}
        }
    }

    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::TooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(RequestError::Io)?;
    }
    Ok(Request {
        method,
        path,
        body,
        keep_alive,
    })
}

/// One HTTP response (JSON on every API route; plain text on the
/// Prometheus exposition route).
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Body text.
    pub body: String,
    /// The `content-type` header value.
    pub content_type: &'static str,
    /// Extra headers beyond the standard set, e.g. `Retry-After`.
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
            content_type: "application/json",
            extra_headers: Vec::new(),
        }
    }

    /// A plain-text response, used for the Prometheus exposition format
    /// (whose convention is `text/plain; version=0.0.4`).
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
            content_type: "text/plain; version=0.0.4",
            extra_headers: Vec::new(),
        }
    }

    /// An error response with a `{"error": ...}` body.
    pub fn error(status: u16, message: &str) -> Response {
        let mut body = String::from("{\"error\":");
        crate::service::push_json_string(message, &mut body);
        body.push('}');
        Response::json(status, body)
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.extra_headers
            .push((name.to_string(), value.to_string()));
        self
    }

    /// The standard reason phrase of the status code.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }

    /// Serializes the response to the wire. `keep_alive` controls the
    /// `Connection` header — the caller decides (client preference AND
    /// server drain state).
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn write_to<W: Write>(&self, stream: &mut W, keep_alive: bool) -> std::io::Result<()> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.extra_headers {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out.push_str("\r\n");
        out.push_str(&self.body);
        stream.write_all(out.as_bytes())?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, RequestError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse("POST /repair HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/repair");
        assert_eq!(req.body_text(), "abcd");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_get_without_body_and_connection_close() {
        let req = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(!req.keep_alive);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            parse("nonsense\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(parse(""), Err(RequestError::Closed)));
    }

    #[test]
    fn rejects_oversized_bodies() {
        let raw = format!(
            "POST /repair HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&raw), Err(RequestError::TooLarge(_))));
    }

    #[test]
    fn response_wire_format_round_trips() {
        let mut buf = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .with_header("retry-after", "1")
            .write_to(&mut buf, false)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }
}
