//! The daemon engine shared by `specrepaird serve` and `specrepaird
//! route`: a blocking acceptor thread, a bounded admission queue and a
//! fixed worker pool over `std::net`, generic over the app that routes
//! requests.
//!
//! Load shedding happens at admission: when the queue is full the acceptor
//! answers `503` with `Retry-After` itself and never hands the connection
//! to a worker, so overload degrades into fast rejections instead of
//! unbounded latency. Shutdown (via `POST /shutdown` or a signal file) is
//! graceful — the acceptor stops admitting, workers drain what was already
//! queued, then everything joins.

use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::http::{read_request, Request, RequestError, Response};
use crate::metrics::ServerMetrics;

/// How long a worker waits for the next request on an idle keep-alive
/// connection before closing it.
const KEEP_ALIVE_IDLE: Duration = Duration::from_secs(2);

/// Acceptor poll interval while the listener has nothing to accept.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// The admission machinery every engine-driven daemon embeds: the bounded
/// connection queue, the drain flag and the optional shutdown signal file.
pub(crate) struct Admission {
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cond: Condvar,
    queue_capacity: usize,
    draining: AtomicBool,
    shutdown_file: Option<PathBuf>,
}

impl Admission {
    pub(crate) fn new(queue_capacity: usize, shutdown_file: Option<PathBuf>) -> Admission {
        Admission {
            queue: Mutex::new(VecDeque::new()),
            queue_cond: Condvar::new(),
            queue_capacity: queue_capacity.max(1),
            draining: AtomicBool::new(false),
            shutdown_file,
        }
    }

    /// Initiates graceful shutdown (idempotent): stop admitting, wake
    /// every worker so the drain check runs even on an empty queue.
    pub(crate) fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue_cond.notify_all();
    }

    pub(crate) fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

/// What an app plugs into the engine: its admission state, its metrics
/// registry (the engine records sheds and queue depth there) and the
/// request router.
pub(crate) trait HttpApp: Send + Sync + 'static {
    fn admission(&self) -> &Admission;
    fn metrics(&self) -> &ServerMetrics;
    fn route(self: &Arc<Self>, request: &Request) -> Response;
}

/// Spawns the acceptor and `workers` worker threads over the listener.
/// Returns the handles; joining them after [`Admission::begin_drain`]
/// completes a graceful shutdown.
pub(crate) fn spawn_threads<A: HttpApp>(
    listener: TcpListener,
    workers: usize,
    thread_prefix: &str,
    app: &Arc<A>,
) -> (JoinHandle<()>, Vec<JoinHandle<()>>) {
    let workers = (0..workers.max(1))
        .map(|i| {
            let app = Arc::clone(app);
            std::thread::Builder::new()
                .name(format!("{thread_prefix}-worker-{i}"))
                .spawn(move || worker_loop(&app))
                .expect("spawning a worker thread")
        })
        .collect();
    let acceptor = {
        let app = Arc::clone(app);
        std::thread::Builder::new()
            .name(format!("{thread_prefix}-acceptor"))
            .spawn(move || accept_loop(&listener, &app))
            .expect("spawning the acceptor thread")
    };
    (acceptor, workers)
}

fn accept_loop<A: HttpApp>(listener: &TcpListener, app: &Arc<A>) {
    let admission = app.admission();
    // The signal file is polled on a coarser cadence than the listener.
    let mut polls_until_file_check = 0u32;
    loop {
        if admission.is_draining() {
            break;
        }
        if polls_until_file_check == 0 {
            polls_until_file_check = 10;
            if let Some(path) = &admission.shutdown_file {
                if path.exists() {
                    admission.begin_drain();
                    break;
                }
            }
        }
        match listener.accept() {
            Ok((stream, _)) => admit(app, stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                polls_until_file_check = polls_until_file_check.saturating_sub(1);
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    admission.queue_cond.notify_all();
}

/// Enqueues one accepted connection, or sheds it with `503` when the
/// admission queue is full.
fn admit<A: HttpApp>(app: &Arc<A>, stream: TcpStream) {
    let admission = app.admission();
    {
        let mut queue = admission.queue.lock().unwrap();
        if queue.len() < admission.queue_capacity {
            queue.push_back(stream);
            app.metrics().queue_depth_add(1);
            admission.queue_cond.notify_one();
            return;
        }
    }
    app.metrics().record_shed();
    shed(stream);
}

/// Writes the `503` shed response. The request is read (best-effort, short
/// timeout) before responding so well-behaved clients see the response
/// rather than a reset from unread data.
fn shed(stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader_stream);
    let _ = read_request(&mut reader);
    let mut writer = stream;
    let _ = Response::error(503, "admission queue full, retry shortly")
        .with_header("retry-after", "1")
        .write_to(&mut writer, false);
}

fn worker_loop<A: HttpApp>(app: &Arc<A>) {
    let admission = app.admission();
    loop {
        let next = {
            let mut queue = admission.queue.lock().unwrap();
            loop {
                if let Some(stream) = queue.pop_front() {
                    app.metrics().queue_depth_add(-1);
                    break Some(stream);
                }
                if admission.is_draining() {
                    break None;
                }
                let (guard, _) = admission
                    .queue_cond
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap();
                queue = guard;
            }
        };
        let Some(stream) = next else { return };
        app.metrics().inflight_add(1);
        handle_connection(app, stream);
        app.metrics().inflight_add(-1);
    }
}

/// Serves one connection: a keep-alive loop of request → route → response.
fn handle_connection<A: HttpApp>(app: &Arc<A>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(KEEP_ALIVE_IDLE));
    let _ = stream.set_nodelay(true);
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = stream;
    loop {
        match read_request(&mut reader) {
            Ok(request) => {
                let response = app.route(&request);
                // Draining closes connections after the in-flight response.
                let keep_alive = request.keep_alive && !app.admission().is_draining();
                if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(RequestError::Closed) | Err(RequestError::Io(_)) => return,
            Err(RequestError::Malformed(msg)) => {
                app.metrics().record_request("http", 400);
                let _ = Response::error(400, &msg).write_to(&mut writer, false);
                return;
            }
            Err(RequestError::TooLarge(n)) => {
                app.metrics().record_request("http", 413);
                let _ = Response::error(413, &format!("body of {n} bytes exceeds the limit"))
                    .write_to(&mut writer, false);
                return;
            }
        }
    }
}
