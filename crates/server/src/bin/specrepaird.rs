//! The `specrepaird` CLI.
//!
//! ```text
//! specrepaird serve   [--addr A] [--workers N] [--queue N] [--deadline-ms N]
//!                     [--max-scope N] [--cache-per-shard N] [--shutdown-file P]
//!                     [--chaos-rate R] [--chaos-seed N] [--trace]
//!                     [--cache-dir P] [--disk-chaos-rate R] [--disk-chaos-seed N]
//!                     [--metrics-history-interval-ms N] [--metrics-history-capacity N]
//!                     [--metrics-history-file P]
//!                     [--shard-id N --peers a,b,c]
//! specrepaird route   --shards a,b,c [--addr A] [--workers N] [--queue N]
//!                     [--deadline-ms N] [--max-scope N] [--shutdown-file P]
//! specrepaird loadgen [--addr A] [--requests N] [--connections N]
//!                     [--deadline-ms N] [--seed N] [--chaos-rate R]
//!                     [--shed-backoff-ms N] [--profile uniform|zipfian]
//!                     [--tenants N] [--shards a,b,c]
//! ```
//!
//! `serve` runs the daemon in the foreground until `POST /shutdown` (or the
//! shutdown file appears); with `--shard-id`/`--peers` it runs as one shard
//! of a consistent-hash oracle cluster, exposing the verdict-exchange API.
//! `route` runs the deterministic cluster front-end: it forwards each
//! repair to the shard owning the spec's fingerprint, degrading to a local
//! solve when that shard is down. `loadgen` drives a running daemon (or
//! router) and exits nonzero if any response was outside the expected set
//! (200/503/504); `--profile zipfian` generates a multi-tenant rank-skewed
//! workload, and `--shards` makes the report read per-shard hit rates.
//! `--chaos-rate` (serve/loadgen) turns on deterministic LM-transport
//! fault injection, exercised through the resilience layer and visible in
//! `GET /metrics` under `transport`. `--trace` turns on the span collector:
//! every repair's per-phase busy time aggregates into `GET /trace/summary`,
//! and responses always carry a deterministic `trace_id`. `--cache-dir`
//! turns on the persistent verdict cache (warm boot + crash-safe appends;
//! `GET /metrics` grows a `persistent` section); `--disk-chaos-rate` injects
//! deterministic disk faults into that tier's appends.
//! `--metrics-history-interval-ms` turns on the in-memory time-series ring:
//! every scalar metric is sampled at that cadence, served at
//! `GET /metrics/history`, and dumped to `--metrics-history-file` (default
//! `metrics_history.jsonl`) on drain.

use specrepair_server::server::ShardConfig;
use specrepair_server::{
    loadgen, router, server, LoadgenConfig, RouterConfig, ServerConfig, WorkloadProfile,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("route") => route(&args[1..]),
        Some("loadgen") => run_loadgen(&args[1..]),
        _ => die("expected a subcommand: serve | route | loadgen"),
    }
}

/// Splits a `--shards`/`--peers` comma list into trimmed addresses.
fn addr_list(value: &str) -> Vec<String> {
    value
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn serve(args: &[String]) {
    let mut config = ServerConfig::default();
    let mut shard_id: Option<usize> = None;
    let mut peers: Vec<String> = Vec::new();
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next_flag() {
        match flag.as_str() {
            "--addr" => config.addr = flags.value(&flag),
            "--workers" => config.workers = flags.parsed(&flag),
            "--queue" => config.queue_capacity = flags.parsed(&flag),
            "--deadline-ms" => config.default_deadline_ms = flags.parsed(&flag),
            "--max-scope" => config.max_scope = flags.parsed(&flag),
            "--cache-per-shard" => config.cache_per_shard = flags.parsed(&flag),
            "--shutdown-file" => config.shutdown_file = Some(flags.value(&flag).into()),
            "--chaos-rate" => config.chaos_rate = flags.rate(&flag),
            "--chaos-seed" => config.chaos_seed = flags.parsed(&flag),
            "--trace" => config.trace = true,
            "--cache-dir" => config.cache_dir = Some(flags.value(&flag).into()),
            "--disk-chaos-rate" => config.disk_chaos_rate = flags.rate(&flag),
            "--disk-chaos-seed" => config.disk_chaos_seed = flags.parsed(&flag),
            "--metrics-history-interval-ms" | "--metrics-history-interval" => {
                config.metrics_history_interval_ms = flags.parsed(&flag)
            }
            "--metrics-history-capacity" => config.metrics_history_capacity = flags.parsed(&flag),
            "--metrics-history-file" => {
                config.metrics_history_file = Some(flags.value(&flag).into())
            }
            "--shard-id" => shard_id = Some(flags.parsed(&flag)),
            "--peers" => peers = addr_list(&flags.value(&flag)),
            other => die(&format!("unknown flag `{other}` for serve")),
        }
    }
    config.shard = match (shard_id, peers.is_empty()) {
        (Some(shard_id), false) => Some(ShardConfig { shard_id, peers }),
        (None, true) => None,
        _ => die("--shard-id and --peers must be given together"),
    };
    let handle = server::spawn(config).unwrap_or_else(|e| die(&format!("cannot bind: {e}")));
    eprintln!("specrepaird listening on {}", handle.addr());
    handle.join();
    eprintln!("specrepaird drained and stopped");
}

fn route(args: &[String]) {
    let mut config = RouterConfig::default();
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next_flag() {
        match flag.as_str() {
            "--addr" => config.addr = flags.value(&flag),
            "--shards" => config.shards = addr_list(&flags.value(&flag)),
            "--workers" => config.workers = flags.parsed(&flag),
            "--queue" => config.queue_capacity = flags.parsed(&flag),
            "--deadline-ms" => config.default_deadline_ms = flags.parsed(&flag),
            "--max-scope" => config.max_scope = flags.parsed(&flag),
            "--shutdown-file" => config.shutdown_file = Some(flags.value(&flag).into()),
            other => die(&format!("unknown flag `{other}` for route")),
        }
    }
    let handle =
        router::spawn_router(config).unwrap_or_else(|e| die(&format!("cannot start router: {e}")));
    eprintln!("specrepaird router listening on {}", handle.addr());
    handle.join();
    eprintln!("specrepaird router drained and stopped");
}

fn run_loadgen(args: &[String]) {
    let mut config = LoadgenConfig::default();
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next_flag() {
        match flag.as_str() {
            "--addr" => config.addr = flags.value(&flag),
            "--requests" => config.requests = flags.parsed(&flag),
            "--connections" => config.connections = flags.parsed(&flag),
            "--deadline-ms" => config.deadline_ms = flags.parsed(&flag),
            "--seed" => config.seed = flags.parsed(&flag),
            "--chaos-rate" => config.chaos_rate = flags.rate(&flag),
            "--shed-backoff-ms" => config.shed_backoff_ms = flags.parsed(&flag),
            "--profile" => {
                config.profile =
                    WorkloadProfile::parse(&flags.value(&flag)).unwrap_or_else(|e| die(&e))
            }
            "--tenants" => config.tenants = flags.parsed(&flag),
            "--shards" => config.shards = addr_list(&flags.value(&flag)),
            other => die(&format!("unknown flag `{other}` for loadgen")),
        }
    }
    let report = loadgen::run(&config);
    println!("{}", report.render());
    if !report.clean() {
        eprintln!(
            "error: {} response(s) outside the expected 200/503/504 set",
            report.unexpected
        );
        std::process::exit(1);
    }
}

/// A minimal `--flag value` scanner.
struct Flags<'a> {
    args: &'a [String],
    pos: usize,
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Flags<'a> {
        Flags { args, pos: 0 }
    }

    fn next_flag(&mut self) -> Option<String> {
        let flag = self.args.get(self.pos)?.clone();
        self.pos += 1;
        Some(flag)
    }

    fn value(&mut self, flag: &str) -> String {
        let value = self
            .args
            .get(self.pos)
            .unwrap_or_else(|| die(&format!("{flag} needs a value")));
        self.pos += 1;
        value.clone()
    }

    fn parsed<T: std::str::FromStr>(&mut self, flag: &str) -> T {
        self.value(flag)
            .parse()
            .unwrap_or_else(|_| die(&format!("{flag} needs a number")))
    }

    fn rate(&mut self, flag: &str) -> f64 {
        let rate: f64 = self.parsed(flag);
        if !(0.0..=1.0).contains(&rate) {
            die(&format!("{flag} needs a number in [0, 1]"));
        }
        rate
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: specrepaird serve   [--addr A] [--workers N] [--queue N] [--deadline-ms N] \
         [--max-scope N] [--cache-per-shard N] [--shutdown-file P] \
         [--chaos-rate R] [--chaos-seed N] [--trace] \
         [--cache-dir P] [--disk-chaos-rate R] [--disk-chaos-seed N] \
         [--metrics-history-interval-ms N] [--metrics-history-capacity N] \
         [--metrics-history-file P] [--shard-id N --peers a,b,c]\n\
         \x20      specrepaird route   --shards a,b,c [--addr A] [--workers N] [--queue N] \
         [--deadline-ms N] [--max-scope N] [--shutdown-file P]\n\
         \x20      specrepaird loadgen [--addr A] [--requests N] [--connections N] \
         [--deadline-ms N] [--seed N] [--chaos-rate R] [--shed-backoff-ms N] \
         [--profile uniform|zipfian] [--tenants N] [--shards a,b,c]"
    );
    std::process::exit(2);
}
