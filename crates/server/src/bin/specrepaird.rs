//! The `specrepaird` CLI.
//!
//! ```text
//! specrepaird serve   [--addr A] [--workers N] [--queue N] [--deadline-ms N]
//!                     [--max-scope N] [--cache-per-shard N] [--shutdown-file P]
//!                     [--chaos-rate R] [--chaos-seed N] [--trace]
//!                     [--cache-dir P] [--disk-chaos-rate R] [--disk-chaos-seed N]
//! specrepaird loadgen [--addr A] [--requests N] [--connections N]
//!                     [--deadline-ms N] [--seed N] [--chaos-rate R]
//!                     [--shed-backoff-ms N]
//! ```
//!
//! `serve` runs the daemon in the foreground until `POST /shutdown` (or the
//! shutdown file appears). `loadgen` drives a running daemon and exits
//! nonzero if any response was outside the expected set (200/503/504).
//! `--chaos-rate` (both subcommands) turns on deterministic LM-transport
//! fault injection, exercised through the resilience layer and visible in
//! `GET /metrics` under `transport`. `--trace` turns on the span collector:
//! every repair's per-phase busy time aggregates into `GET /trace/summary`,
//! and responses always carry a deterministic `trace_id`. `--cache-dir`
//! turns on the persistent verdict cache (warm boot + crash-safe appends;
//! `GET /metrics` grows a `persistent` section); `--disk-chaos-rate` injects
//! deterministic disk faults into that tier's appends.

use specrepair_server::{loadgen, server, LoadgenConfig, ServerConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("loadgen") => run_loadgen(&args[1..]),
        _ => die("expected a subcommand: serve | loadgen"),
    }
}

fn serve(args: &[String]) {
    let mut config = ServerConfig::default();
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next_flag() {
        match flag.as_str() {
            "--addr" => config.addr = flags.value(&flag),
            "--workers" => config.workers = flags.parsed(&flag),
            "--queue" => config.queue_capacity = flags.parsed(&flag),
            "--deadline-ms" => config.default_deadline_ms = flags.parsed(&flag),
            "--max-scope" => config.max_scope = flags.parsed(&flag),
            "--cache-per-shard" => config.cache_per_shard = flags.parsed(&flag),
            "--shutdown-file" => config.shutdown_file = Some(flags.value(&flag).into()),
            "--chaos-rate" => config.chaos_rate = flags.rate(&flag),
            "--chaos-seed" => config.chaos_seed = flags.parsed(&flag),
            "--trace" => config.trace = true,
            "--cache-dir" => config.cache_dir = Some(flags.value(&flag).into()),
            "--disk-chaos-rate" => config.disk_chaos_rate = flags.rate(&flag),
            "--disk-chaos-seed" => config.disk_chaos_seed = flags.parsed(&flag),
            other => die(&format!("unknown flag `{other}` for serve")),
        }
    }
    let handle = server::spawn(config).unwrap_or_else(|e| die(&format!("cannot bind: {e}")));
    eprintln!("specrepaird listening on {}", handle.addr());
    handle.join();
    eprintln!("specrepaird drained and stopped");
}

fn run_loadgen(args: &[String]) {
    let mut config = LoadgenConfig::default();
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next_flag() {
        match flag.as_str() {
            "--addr" => config.addr = flags.value(&flag),
            "--requests" => config.requests = flags.parsed(&flag),
            "--connections" => config.connections = flags.parsed(&flag),
            "--deadline-ms" => config.deadline_ms = flags.parsed(&flag),
            "--seed" => config.seed = flags.parsed(&flag),
            "--chaos-rate" => config.chaos_rate = flags.rate(&flag),
            "--shed-backoff-ms" => config.shed_backoff_ms = flags.parsed(&flag),
            other => die(&format!("unknown flag `{other}` for loadgen")),
        }
    }
    let report = loadgen::run(&config);
    println!("{}", report.render());
    if !report.clean() {
        eprintln!(
            "error: {} response(s) outside the expected 200/503/504 set",
            report.unexpected
        );
        std::process::exit(1);
    }
}

/// A minimal `--flag value` scanner.
struct Flags<'a> {
    args: &'a [String],
    pos: usize,
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Flags<'a> {
        Flags { args, pos: 0 }
    }

    fn next_flag(&mut self) -> Option<String> {
        let flag = self.args.get(self.pos)?.clone();
        self.pos += 1;
        Some(flag)
    }

    fn value(&mut self, flag: &str) -> String {
        let value = self
            .args
            .get(self.pos)
            .unwrap_or_else(|| die(&format!("{flag} needs a value")));
        self.pos += 1;
        value.clone()
    }

    fn parsed<T: std::str::FromStr>(&mut self, flag: &str) -> T {
        self.value(flag)
            .parse()
            .unwrap_or_else(|_| die(&format!("{flag} needs a number")))
    }

    fn rate(&mut self, flag: &str) -> f64 {
        let rate: f64 = self.parsed(flag);
        if !(0.0..=1.0).contains(&rate) {
            die(&format!("{flag} needs a number in [0, 1]"));
        }
        rate
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: specrepaird serve   [--addr A] [--workers N] [--queue N] [--deadline-ms N] \
         [--max-scope N] [--cache-per-shard N] [--shutdown-file P] \
         [--chaos-rate R] [--chaos-seed N] [--trace] \
         [--cache-dir P] [--disk-chaos-rate R] [--disk-chaos-seed N]\n\
         \x20      specrepaird loadgen [--addr A] [--requests N] [--connections N] \
         [--deadline-ms N] [--seed N] [--chaos-rate R] [--shed-backoff-ms N]"
    );
    std::process::exit(2);
}
