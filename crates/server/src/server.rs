//! The `specrepaird` daemon core: a blocking acceptor thread, a bounded
//! admission queue, and a fixed worker pool over `std::net`.
//!
//! Load shedding happens at admission: when the queue is full the acceptor
//! answers `503` with `Retry-After` itself and never hands the connection
//! to a worker, so overload degrades into fast rejections instead of
//! unbounded latency. Shutdown (via `POST /shutdown` or a signal file) is
//! graceful — the acceptor stops admitting, workers drain what was already
//! queued, then everything joins.

use std::collections::VecDeque;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use specrepair_cache::PersistentCache;
use specrepair_core::OracleHandle;
use specrepair_faults::DiskFaultPlan;

use crate::http::{read_request, Request, RequestError, Response};
use crate::metrics::{ServerMetrics, TraceTotals};
use crate::service::{RepairService, ServiceConfig};

/// How long a worker waits for the next request on an idle keep-alive
/// connection before closing it.
const KEEP_ALIVE_IDLE: Duration = Duration::from_secs(2);

/// Acceptor poll interval while the listener has nothing to accept.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Configuration of one daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port (tests).
    pub addr: String,
    /// Worker threads executing repairs.
    pub workers: usize,
    /// Admission queue capacity; connections beyond it are shed with `503`.
    pub queue_capacity: usize,
    /// Deadline for requests that do not carry `deadline_ms`.
    pub default_deadline_ms: u64,
    /// Largest admitted analysis scope (see [`ServiceConfig::max_scope`]).
    pub max_scope: u32,
    /// Per-shard cap on the oracle memo table; `0` keeps it unbounded.
    pub cache_per_shard: usize,
    /// Server-wide injected LM-transport fault rate (0.0 = off); see
    /// [`ServiceConfig::chaos_rate`].
    pub chaos_rate: f64,
    /// Base seed for the chaos fault schedules.
    pub chaos_seed: u64,
    /// Optional signal file: the daemon initiates graceful shutdown as soon
    /// as this path exists (the file-based stand-in for SIGTERM, usable
    /// from CI scripts without a signal-handling dependency).
    pub shutdown_file: Option<PathBuf>,
    /// Turns the span collector on for the daemon's lifetime: every repair
    /// request's spans are drained into the per-phase totals behind
    /// `GET /trace/summary`. Off by default (the disabled collector costs
    /// one atomic load per would-be span).
    pub trace: bool,
    /// Directory for the persistent verdict cache (`verdicts.log`). When
    /// set, the daemon warm-boots the oracle from it and appends every new
    /// verdict; when the directory cannot be opened the daemon warns and
    /// runs memory-only. `None` (the default) disables the tier.
    pub cache_dir: Option<PathBuf>,
    /// Injected disk fault rate for the persistent tier (0.0 = off); see
    /// [`DiskFaultPlan`]. Only meaningful with `cache_dir`.
    pub disk_chaos_rate: f64,
    /// Base seed for the disk fault schedule.
    pub disk_chaos_seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 4,
            queue_capacity: 64,
            default_deadline_ms: 10_000,
            max_scope: 6,
            cache_per_shard: 0,
            chaos_rate: 0.0,
            chaos_seed: 0xC4A05,
            shutdown_file: None,
            trace: false,
            cache_dir: None,
            disk_chaos_rate: 0.0,
            disk_chaos_seed: 0xD15C,
        }
    }
}

/// Shared state between the acceptor, the workers and the handle.
struct ServerState {
    service: RepairService,
    metrics: ServerMetrics,
    trace: TraceTotals,
    trace_enabled: bool,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cond: Condvar,
    queue_capacity: usize,
    draining: AtomicBool,
    shutdown_file: Option<PathBuf>,
    /// The persistent verdict tier, when `--cache-dir` opened one. Held
    /// here (besides the oracle's trait handle) for `/metrics` snapshots
    /// and the drain-time seal.
    persist: Option<Arc<PersistentCache>>,
}

impl ServerState {
    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue_cond.notify_all();
    }

    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

/// A running daemon: its bound address plus the thread handles.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the daemon actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates graceful shutdown (idempotent): stop admitting, drain the
    /// queue, let workers exit.
    pub fn shutdown(&self) {
        self.state.begin_drain();
    }

    /// Blocks until the acceptor and every worker have exited. Call
    /// [`ServerHandle::shutdown`] first (or POST `/shutdown`) or this
    /// blocks forever.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Drain hook: with every worker gone no verdict can still be in
        // flight, so seal the persistent log (compact if the disk view
        // drifted from memory, then fsync) before the process exits.
        if let Some(persist) = &self.state.persist {
            persist.seal();
        }
    }
}

/// Binds the listener and spawns the acceptor and worker threads.
///
/// # Errors
///
/// Propagates the bind failure (address in use, permission).
pub fn spawn(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let mut oracle = if config.cache_per_shard == 0 {
        OracleHandle::fresh()
    } else {
        OracleHandle::bounded(config.cache_per_shard)
    };
    // Warm-boot the persistent verdict tier. An unopenable cache dir is a
    // degradation, not a boot failure: warn and run memory-only.
    let persist = match &config.cache_dir {
        None => None,
        Some(dir) => {
            let plan = if config.disk_chaos_rate > 0.0 {
                DiskFaultPlan::new(config.disk_chaos_seed, config.disk_chaos_rate)
            } else {
                DiskFaultPlan::none()
            };
            match PersistentCache::open_with_faults(dir, plan) {
                Ok(cache) => {
                    let cache = Arc::new(cache);
                    oracle = oracle.with_persistent(cache.clone());
                    Some(cache)
                }
                Err(e) => {
                    eprintln!(
                        "specrepaird: cannot open cache dir {}: {e}; running memory-only",
                        dir.display()
                    );
                    None
                }
            }
        }
    };
    if config.trace {
        specrepair_trace::set_enabled(true);
    }
    let state = Arc::new(ServerState {
        service: RepairService::new(
            oracle,
            ServiceConfig {
                default_deadline_ms: config.default_deadline_ms,
                max_scope: config.max_scope,
                chaos_rate: config.chaos_rate,
                chaos_seed: config.chaos_seed,
            },
        ),
        metrics: ServerMetrics::new(),
        trace: TraceTotals::new(),
        trace_enabled: config.trace,
        queue: Mutex::new(VecDeque::new()),
        queue_cond: Condvar::new(),
        queue_capacity: config.queue_capacity.max(1),
        draining: AtomicBool::new(false),
        shutdown_file: config.shutdown_file.clone(),
        persist,
    });

    let workers = (0..config.workers.max(1))
        .map(|i| {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("specrepaird-worker-{i}"))
                .spawn(move || worker_loop(&state))
                .expect("spawning a worker thread")
        })
        .collect();
    let acceptor = {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("specrepaird-acceptor".to_string())
            .spawn(move || accept_loop(&listener, &state))
            .expect("spawning the acceptor thread")
    };

    Ok(ServerHandle {
        addr,
        state,
        acceptor: Some(acceptor),
        workers,
    })
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    // The signal file is polled on a coarser cadence than the listener.
    let mut polls_until_file_check = 0u32;
    loop {
        if state.is_draining() {
            break;
        }
        if polls_until_file_check == 0 {
            polls_until_file_check = 10;
            if let Some(path) = &state.shutdown_file {
                if path.exists() {
                    state.begin_drain();
                    break;
                }
            }
        }
        match listener.accept() {
            Ok((stream, _)) => admit(state, stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                polls_until_file_check = polls_until_file_check.saturating_sub(1);
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Wake every worker so the drain check runs even on an empty queue.
    state.queue_cond.notify_all();
}

/// Enqueues one accepted connection, or sheds it with `503` when the
/// admission queue is full.
fn admit(state: &Arc<ServerState>, stream: TcpStream) {
    {
        let mut queue = state.queue.lock().unwrap();
        if queue.len() < state.queue_capacity {
            queue.push_back(stream);
            state.metrics.queue_depth_add(1);
            state.queue_cond.notify_one();
            return;
        }
    }
    state.metrics.record_shed();
    shed(state, stream);
}

/// Writes the `503` shed response. The request is read (best-effort, short
/// timeout) before responding so well-behaved clients see the response
/// rather than a reset from unread data.
fn shed(_state: &Arc<ServerState>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader_stream);
    let _ = read_request(&mut reader);
    let mut writer = stream;
    let _ = Response::error(503, "admission queue full, retry shortly")
        .with_header("retry-after", "1")
        .write_to(&mut writer, false);
}

fn worker_loop(state: &Arc<ServerState>) {
    loop {
        let next = {
            let mut queue = state.queue.lock().unwrap();
            loop {
                if let Some(stream) = queue.pop_front() {
                    state.metrics.queue_depth_add(-1);
                    break Some(stream);
                }
                if state.is_draining() {
                    break None;
                }
                let (guard, _) = state
                    .queue_cond
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap();
                queue = guard;
            }
        };
        let Some(stream) = next else { return };
        state.metrics.inflight_add(1);
        handle_connection(state, stream);
        state.metrics.inflight_add(-1);
    }
}

/// Serves one connection: a keep-alive loop of request → route → response.
fn handle_connection(state: &Arc<ServerState>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(KEEP_ALIVE_IDLE));
    let _ = stream.set_nodelay(true);
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = stream;
    loop {
        match read_request(&mut reader) {
            Ok(request) => {
                let response = route(state, &request);
                // Draining closes connections after the in-flight response.
                let keep_alive = request.keep_alive && !state.is_draining();
                if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(RequestError::Closed) | Err(RequestError::Io(_)) => return,
            Err(RequestError::Malformed(msg)) => {
                state.metrics.record_request("http", 400);
                let _ = Response::error(400, &msg).write_to(&mut writer, false);
                return;
            }
            Err(RequestError::TooLarge(n)) => {
                state.metrics.record_request("http", 413);
                let _ = Response::error(413, &format!("body of {n} bytes exceeds the limit"))
                    .write_to(&mut writer, false);
                return;
            }
        }
    }
}

/// Routes one request to its endpoint and records it in the metrics.
fn route(state: &Arc<ServerState>, request: &Request) -> Response {
    let (endpoint, response) = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let status = if state.is_draining() {
                "draining"
            } else {
                "ok"
            };
            (
                "healthz",
                Response::json(200, format!("{{\"status\":\"{status}\"}}")),
            )
        }
        ("GET", "/techniques") => (
            "techniques",
            Response::json(200, RepairService::techniques_document()),
        ),
        ("GET", "/metrics") => {
            let oracle = state.service.oracle();
            let persist = state.persist.as_ref().map(|p| p.stats());
            let body = state.metrics.render(
                &oracle.stats(),
                oracle.service().memoized_specs(),
                &oracle.dedup_stats(),
                &oracle.incremental_stats(),
                state.service.transport_stats(),
                persist.as_ref(),
            );
            ("metrics", Response::json(200, body))
        }
        ("GET", "/trace/summary") => (
            "trace",
            Response::json(200, state.trace.render(state.trace_enabled)),
        ),
        ("POST", "/repair") => {
            let handled = state.service.handle_repair(&request.body_text());
            if state.trace_enabled {
                // Fold whatever this (and any concurrently finished)
                // request traced into the since-boot phase totals.
                state.trace.absorb(&specrepair_trace::take_spans());
            }
            if let (Some(technique), Some(latency)) = (&handled.technique, handled.latency) {
                state
                    .metrics
                    .record_latency(technique, latency.as_micros() as u64);
            }
            // A portfolio race also reports each entrant's own latency
            // under "<portfolio>/<member>" histogram rows.
            for (label, micros) in &handled.entrant_latency {
                state.metrics.record_latency(label, *micros);
            }
            if handled.timed_out {
                state.metrics.record_deadline_exceeded();
            }
            ("repair", handled.response)
        }
        ("POST", "/shutdown") => {
            state.begin_drain();
            ("shutdown", Response::json(200, "{\"status\":\"draining\"}"))
        }
        (
            _,
            "/healthz" | "/techniques" | "/metrics" | "/trace/summary" | "/repair" | "/shutdown",
        ) => (
            "http",
            Response::error(405, &format!("{} not allowed here", request.method)),
        ),
        (_, path) => (
            "http",
            Response::error(404, &format!("no route for {path}")),
        ),
    };
    state.metrics.record_request(endpoint, response.status);
    response
}

/// Writes an HTTP request to `stream` and reads back `(status, body)` —
/// the tiny client used by the load generator, the CLI and the tests.
///
/// # Errors
///
/// Propagates connection and read errors; a malformed status line is an
/// `InvalidData` error.
pub fn roundtrip(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    stream.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nhost: specrepaird\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    read_response(&mut reader)
}

/// Reads one HTTP response from a buffered stream.
///
/// # Errors
///
/// `InvalidData` for malformed status lines or bodies, plus socket errors.
pub fn read_response<R: std::io::BufRead>(reader: &mut R) -> std::io::Result<(u16, String)> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(&format!("bad status line {line:?}")))?;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad content-length"))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(|text| (status, text))
        .map_err(|_| bad("response body is not utf-8"))
}
