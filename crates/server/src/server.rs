//! The `specrepaird serve` daemon: the repair service plugged into the
//! shared [engine](crate::engine) (blocking acceptor, bounded admission
//! queue, fixed worker pool over `std::net`).
//!
//! Besides the repair API the daemon can run as one **shard** of a
//! consistent-hash oracle cluster (`--shard-id N --peers a,b,c`): it then
//! exposes the compact `GET`/`PUT /verdict/<fingerprint>` shard API and
//! composes its oracle's persistent tier as *local log → remote peers*, so
//! a verdict any shard solved once is answered cluster-wide without a
//! second SAT solve. Remote verdicts are only ever verdicts a deterministic
//! local solve would also produce, so shard mode changes latency, never
//! bytes.

use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;

use mualloy_analyzer::{TieredStore, VerdictStore};
use mualloy_syntax::Fingerprint;
use specrepair_cache::PersistentCache;
use specrepair_cluster::{RemoteVerdictStore, ShardRing};
use specrepair_core::OracleHandle;
use specrepair_faults::DiskFaultPlan;
use specrepair_telemetry::{ClusterSection, History, Snapshot};

use crate::engine::{self, Admission, HttpApp};
use crate::http::{Request, Response};
use crate::metrics::{ServerMetrics, TraceTotals};
use crate::service::{RepairService, ServiceConfig};

pub use specrepair_cluster::client::{read_response, roundtrip};

/// Cluster-shard identity of one daemon: which entry of the shared ordered
/// peer list this process is.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// This daemon's index into [`ShardConfig::peers`].
    pub shard_id: usize,
    /// The ordered `host:port` list of every shard (including this one).
    /// The list *is* the cluster membership: every shard and the router
    /// derive the same [`ShardRing`] from it, with the address as the node
    /// identity.
    pub peers: Vec<String>,
}

/// Configuration of one daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port (tests).
    pub addr: String,
    /// Worker threads executing repairs.
    pub workers: usize,
    /// Admission queue capacity; connections beyond it are shed with `503`.
    pub queue_capacity: usize,
    /// Deadline for requests that do not carry `deadline_ms`.
    pub default_deadline_ms: u64,
    /// Largest admitted analysis scope (see [`ServiceConfig::max_scope`]).
    pub max_scope: u32,
    /// Per-shard cap on the oracle memo table; `0` keeps it unbounded.
    pub cache_per_shard: usize,
    /// Server-wide injected LM-transport fault rate (0.0 = off); see
    /// [`ServiceConfig::chaos_rate`].
    pub chaos_rate: f64,
    /// Base seed for the chaos fault schedules.
    pub chaos_seed: u64,
    /// Optional signal file: the daemon initiates graceful shutdown as soon
    /// as this path exists (the file-based stand-in for SIGTERM, usable
    /// from CI scripts without a signal-handling dependency).
    pub shutdown_file: Option<PathBuf>,
    /// Turns the span collector on for the daemon's lifetime: every repair
    /// request's spans are drained into the per-phase totals behind
    /// `GET /trace/summary`. Off by default (the disabled collector costs
    /// one atomic load per would-be span).
    pub trace: bool,
    /// Directory for the persistent verdict cache (`verdicts.log`). When
    /// set, the daemon warm-boots the oracle from it and appends every new
    /// verdict; when the directory cannot be opened the daemon warns and
    /// runs memory-only. `None` (the default) disables the tier.
    pub cache_dir: Option<PathBuf>,
    /// Injected disk fault rate for the persistent tier (0.0 = off); see
    /// [`DiskFaultPlan`]. Only meaningful with `cache_dir`.
    pub disk_chaos_rate: f64,
    /// Base seed for the disk fault schedule.
    pub disk_chaos_seed: u64,
    /// Cluster-shard mode: this daemon's identity in the shared peer list.
    /// `None` (the default) runs a plain single-node daemon.
    pub shard: Option<ShardConfig>,
    /// Metrics-history sampling interval in milliseconds; `0` (the
    /// default) disables the time-series ring and `GET /metrics/history`.
    pub metrics_history_interval_ms: u64,
    /// Ring capacity for the metrics history (samples retained).
    pub metrics_history_capacity: usize,
    /// Where the drain-time `metrics_history.jsonl` dump lands. `None`
    /// with history enabled writes `metrics_history.jsonl` in the working
    /// directory.
    pub metrics_history_file: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 4,
            queue_capacity: 64,
            default_deadline_ms: 10_000,
            max_scope: 6,
            cache_per_shard: 0,
            chaos_rate: 0.0,
            chaos_seed: 0xC4A05,
            shutdown_file: None,
            trace: false,
            cache_dir: None,
            disk_chaos_rate: 0.0,
            disk_chaos_seed: 0xD15C,
            shard: None,
            metrics_history_interval_ms: 0,
            metrics_history_capacity: 512,
            metrics_history_file: None,
        }
    }
}

/// Shared state between the acceptor, the workers and the handle.
struct ServerState {
    service: RepairService,
    metrics: ServerMetrics,
    trace: TraceTotals,
    trace_enabled: bool,
    admission: Admission,
    /// The persistent verdict tier, when `--cache-dir` opened one. Held
    /// here (besides the oracle's trait handle) for `/metrics` snapshots
    /// and the drain-time seal.
    persist: Option<Arc<PersistentCache>>,
    /// The remote-peer verdict tier, in shard mode. Held for `/metrics`.
    remote: Option<Arc<RemoteVerdictStore>>,
    /// Shard identity, in shard mode.
    shard: Option<ShardConfig>,
    /// The metrics time-series ring, when history sampling is on.
    history: Option<Arc<History>>,
}

impl HttpApp for ServerState {
    fn admission(&self) -> &Admission {
        &self.admission
    }

    fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    fn route(self: &Arc<Self>, request: &Request) -> Response {
        route(self, request)
    }
}

/// A running daemon: its bound address plus the thread handles.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    sampler: Option<JoinHandle<()>>,
    history_file: Option<PathBuf>,
}

impl ServerHandle {
    /// The address the daemon actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates graceful shutdown (idempotent): stop admitting, drain the
    /// queue, let workers exit.
    pub fn shutdown(&self) {
        self.state.admission.begin_drain();
    }

    /// Blocks until the acceptor and every worker have exited. Call
    /// [`ServerHandle::shutdown`] first (or POST `/shutdown`) or this
    /// blocks forever.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(sampler) = self.sampler.take() {
            let _ = sampler.join();
        }
        // Drain hook: with every worker gone no verdict can still be in
        // flight, so seal the persistent log (compact if the disk view
        // drifted from memory, then fsync) before the process exits.
        if let Some(persist) = &self.state.persist {
            persist.seal();
        }
        // Dump the metrics time series for offline analysis (e.g. the
        // hit-rate convergence plots in EXPERIMENTS.md E11).
        if let (Some(history), Some(path)) = (&self.state.history, &self.history_file) {
            if let Err(e) = std::fs::write(path, history.dump_jsonl()) {
                eprintln!(
                    "specrepaird: cannot write metrics history {}: {e}",
                    path.display()
                );
            }
        }
    }
}

/// Binds the listener and spawns the acceptor and worker threads.
///
/// # Errors
///
/// Propagates the bind failure (address in use, permission), or
/// `InvalidInput` for an inconsistent shard configuration.
pub fn spawn(config: ServerConfig) -> std::io::Result<ServerHandle> {
    if let Some(shard) = &config.shard {
        if shard.peers.is_empty() || shard.shard_id >= shard.peers.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "shard id {} out of range for {} peers",
                    shard.shard_id,
                    shard.peers.len()
                ),
            ));
        }
    }
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let mut oracle = if config.cache_per_shard == 0 {
        OracleHandle::fresh()
    } else {
        OracleHandle::bounded(config.cache_per_shard)
    };
    // Warm-boot the persistent verdict tier. An unopenable cache dir is a
    // degradation, not a boot failure: warn and run memory-only.
    let persist = match &config.cache_dir {
        None => None,
        Some(dir) => {
            let plan = if config.disk_chaos_rate > 0.0 {
                DiskFaultPlan::new(config.disk_chaos_seed, config.disk_chaos_rate)
            } else {
                DiskFaultPlan::none()
            };
            match PersistentCache::open_with_faults(dir, plan) {
                Ok(cache) => Some(Arc::new(cache)),
                Err(e) => {
                    eprintln!(
                        "specrepaird: cannot open cache dir {}: {e}; running memory-only",
                        dir.display()
                    );
                    None
                }
            }
        }
    };
    // In shard mode, peers form a remote verdict tier behind the local one.
    let remote = config.shard.as_ref().map(|shard| {
        Arc::new(RemoteVerdictStore::new(
            ShardRing::from_addrs(&shard.peers),
            Some(shard.peers[shard.shard_id].clone()),
        ))
    });
    // Compose the oracle's persistent seam: probe order is always
    // memo (inside the oracle) → local log → remote peers, with read
    // repair filling the local log on remote hits.
    let store: Option<Arc<dyn VerdictStore>> = match (&persist, &remote) {
        (Some(local), Some(remote)) => Some(Arc::new(TieredStore::new(vec![
            Arc::clone(local) as Arc<dyn VerdictStore>,
            Arc::clone(remote) as Arc<dyn VerdictStore>,
        ]))),
        (Some(local), None) => Some(Arc::clone(local) as Arc<dyn VerdictStore>),
        (None, Some(remote)) => Some(Arc::clone(remote) as Arc<dyn VerdictStore>),
        (None, None) => None,
    };
    if let Some(store) = store {
        oracle = oracle.with_persistent(store);
    }
    if config.trace {
        specrepair_trace::set_enabled(true);
    }
    let state = Arc::new(ServerState {
        service: RepairService::new(
            oracle,
            ServiceConfig {
                default_deadline_ms: config.default_deadline_ms,
                max_scope: config.max_scope,
                chaos_rate: config.chaos_rate,
                chaos_seed: config.chaos_seed,
            },
        ),
        metrics: ServerMetrics::new(),
        trace: TraceTotals::new(),
        trace_enabled: config.trace,
        admission: Admission::new(config.queue_capacity, config.shutdown_file.clone()),
        persist,
        remote,
        shard: config.shard.clone(),
        history: (config.metrics_history_interval_ms > 0).then(|| {
            Arc::new(History::new(
                config.metrics_history_capacity,
                config.metrics_history_interval_ms,
            ))
        }),
    });

    let (acceptor, workers) =
        engine::spawn_threads(listener, config.workers, "specrepaird", &state);
    // The history sampler: one thread recording every registered scalar
    // into the ring each interval, draining with the admission gate. It
    // sleeps in short chunks so shutdown is never delayed by a long
    // interval.
    let sampler = state.history.clone().map(|history| {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("specrepaird-history".to_string())
            .spawn(move || {
                let interval = std::time::Duration::from_millis(history.interval_ms().max(1));
                while !state.admission.is_draining() {
                    let mut left = interval;
                    while !left.is_zero() && !state.admission.is_draining() {
                        let nap = left.min(std::time::Duration::from_millis(50));
                        std::thread::sleep(nap);
                        left = left.saturating_sub(nap);
                    }
                    if state.admission.is_draining() {
                        break;
                    }
                    history.record(full_snapshot(&state).scalars());
                }
            })
            .expect("spawn history sampler")
    });
    let history_file = (config.metrics_history_interval_ms > 0).then(|| {
        config
            .metrics_history_file
            .clone()
            .unwrap_or_else(|| PathBuf::from("metrics_history.jsonl"))
    });
    Ok(ServerHandle {
        addr,
        state,
        acceptor: Some(acceptor),
        workers,
        sampler,
        history_file,
    })
}

/// Parses the `<32 hex digits>` tail of a `/verdict/` path into the
/// canonical 128-bit fingerprint.
pub(crate) fn parse_fingerprint(hex: &str) -> Option<Fingerprint> {
    if hex.len() != 32 {
        return None;
    }
    u128::from_str_radix(hex, 16).ok().map(Fingerprint)
}

/// `GET /verdict/<fp>`: answers strictly from **local** knowledge — the
/// in-memory memo first, then the local persistent log — never from the
/// remote tier, so two shards probing each other can never recurse. A disk
/// hit is injected into the memo so the next probe is memory-speed.
fn verdict_get(state: &Arc<ServerState>, hex: &str) -> Response {
    let Some(key) = parse_fingerprint(hex) else {
        return Response::error(400, "malformed fingerprint (want 32 hex digits)");
    };
    let oracle = state.service.oracle().service();
    if let Some(verdict) = oracle.probe_verdict(key) {
        return Response::json(
            200,
            format!("{{\"verdict\":{verdict},\"source\":\"memo\"}}"),
        );
    }
    if let Some(persist) = &state.persist {
        if let Some(verdict) = persist.lookup(key) {
            oracle.inject_verdict(key, verdict);
            return Response::json(
                200,
                format!("{{\"verdict\":{verdict},\"source\":\"disk\"}}"),
            );
        }
    }
    Response::error(404, "unknown fingerprint")
}

/// `PUT /verdict/<fp>` with the compact body `"1"`/`"0"`: write-through
/// from a peer that just solved the key this shard owns. Stored in the memo
/// (never overwriting an existing entry) and the local log only — no
/// forwarding, for the same no-recursion reason as the probe.
fn verdict_put(state: &Arc<ServerState>, hex: &str, body: &str) -> Response {
    let Some(key) = parse_fingerprint(hex) else {
        return Response::error(400, "malformed fingerprint (want 32 hex digits)");
    };
    let verdict = match body.trim() {
        "1" | "true" => true,
        "0" | "false" => false,
        _ => return Response::error(400, "verdict body must be 0 or 1"),
    };
    state
        .service
        .oracle()
        .service()
        .inject_verdict(key, verdict);
    if let Some(persist) = &state.persist {
        persist.record(key, verdict);
    }
    Response::json(200, "{\"stored\":true}")
}

/// The `cluster` section of `/metrics`: the shard's remote-tier view in
/// shard mode, `Off` otherwise.
fn cluster_section(state: &ServerState) -> ClusterSection {
    match (&state.remote, &state.shard) {
        (Some(remote), Some(shard)) => ClusterSection::Shard(remote.stats().cluster_section(
            shard.shard_id,
            remote.ring().len(),
            remote.open_breakers(),
        )),
        _ => ClusterSection::Off,
    }
}

/// Assembles the daemon's full typed metrics snapshot — the single source
/// behind `/metrics`, `/metrics/prom`, the history sampler and the
/// router's fleet scrape.
fn full_snapshot(state: &ServerState) -> Snapshot {
    let oracle = state.service.oracle();
    let persist = state.persist.as_ref().map(|p| p.stats());
    state.metrics.snapshot(
        &oracle.stats(),
        oracle.service().memoized_specs(),
        &oracle.dedup_stats(),
        &oracle.incremental_stats(),
        state.service.transport_stats(),
        persist.as_ref(),
        cluster_section(state),
    )
}

/// Routes one request to its endpoint and records it in the metrics.
fn route(state: &Arc<ServerState>, request: &Request) -> Response {
    let (endpoint, response) = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let status = if state.admission.is_draining() {
                "draining"
            } else {
                "ok"
            };
            (
                "healthz",
                Response::json(200, format!("{{\"status\":\"{status}\"}}")),
            )
        }
        ("GET", "/techniques") => (
            "techniques",
            Response::json(200, RepairService::techniques_document()),
        ),
        ("GET", "/metrics") => (
            "metrics",
            Response::json(200, full_snapshot(state).to_json()),
        ),
        ("GET", "/metrics/prom") => (
            "metrics",
            Response::text(
                200,
                specrepair_telemetry::prom::render(&full_snapshot(state)),
            ),
        ),
        ("GET", "/metrics/history") => {
            let body = match &state.history {
                Some(history) => history.to_json(),
                None => "{\n  \"enabled\": false\n}".to_string(),
            };
            ("metrics", Response::json(200, body))
        }
        ("GET", "/trace/summary") => (
            "trace",
            Response::json(200, state.trace.render(state.trace_enabled)),
        ),
        ("POST", "/repair") => {
            let handled = state.service.handle_repair(&request.body_text());
            if state.trace_enabled {
                // Fold whatever this (and any concurrently finished)
                // request traced into the since-boot phase totals.
                state.trace.absorb(&specrepair_trace::take_spans());
            }
            if let (Some(technique), Some(latency)) = (&handled.technique, handled.latency) {
                state
                    .metrics
                    .record_latency(technique, latency.as_micros() as u64);
            }
            // A portfolio race also reports each entrant's own latency
            // under "<portfolio>/<member>" histogram rows.
            for (label, micros) in &handled.entrant_latency {
                state.metrics.record_latency(label, *micros);
            }
            if handled.timed_out {
                state.metrics.record_deadline_exceeded();
            }
            ("repair", handled.response)
        }
        ("GET", path) if path.starts_with("/verdict/") => {
            ("verdict", verdict_get(state, &path["/verdict/".len()..]))
        }
        ("PUT", path) if path.starts_with("/verdict/") => (
            "verdict",
            verdict_put(state, &path["/verdict/".len()..], &request.body_text()),
        ),
        ("POST", "/shutdown") => {
            state.admission.begin_drain();
            ("shutdown", Response::json(200, "{\"status\":\"draining\"}"))
        }
        (
            _,
            "/healthz" | "/techniques" | "/metrics" | "/metrics/prom" | "/metrics/history"
            | "/trace/summary" | "/repair" | "/shutdown",
        ) => (
            "http",
            Response::error(405, &format!("{} not allowed here", request.method)),
        ),
        (_, path) if path.starts_with("/verdict/") => (
            "http",
            Response::error(405, &format!("{} not allowed here", request.method)),
        ),
        (_, path) => (
            "http",
            Response::error(404, &format!("no route for {path}")),
        ),
    };
    state.metrics.record_request(endpoint, response.status);
    response
}
