//! The persistent verdict tier's seam.
//!
//! The [`Oracle`](crate::Oracle) memoizes in process memory; a restart loses
//! everything. A [`VerdictStore`] is the disk tier behind it: a durable map
//! from canonical spec fingerprint to boolean oracle verdict, probed after
//! an in-memory miss and fed every freshly computed verdict. The trait lives
//! here (not in the cache crate) so the analyzer has no dependency on any
//! storage implementation — `specrepair-cache` implements it over a
//! crash-safe log-structured file, tests implement it over a `HashMap`.
//!
//! Only the boolean verdict is persisted: it is the query the corpus
//! workloads repeat (thousands of near-identical buggy candidate specs, the
//! Alloy4Fun scenario), it is tiny and checksummable in a fixed frame, and
//! it is exactly reconstructible from the fingerprint alone — unlike full
//! command outcomes or instance enumerations, which stay memory-only.
//!
//! Implementations must be infallible at this interface: a store that hits
//! disk trouble degrades internally (memory-only mode, breaker-style) and
//! simply answers `None` / ignores records. The oracle never sees an error
//! from its persistent tier.

use std::sync::Arc;

use mualloy_syntax::Fingerprint;

/// A durable fingerprint → verdict map (the persistent oracle cache tier).
pub trait VerdictStore: Send + Sync {
    /// The persisted verdict for `key`, if any.
    fn lookup(&self, key: Fingerprint) -> Option<bool>;

    /// Durably records a freshly computed verdict. Best-effort: errors are
    /// absorbed by the implementation (degradation, not propagation).
    fn record(&self, key: Fingerprint, verdict: bool);
}

/// An ordered composition of verdict tiers behind one `VerdictStore`
/// handle: cheapest first (the local persistent log), most expensive last
/// (a remote shard). This is how cluster mode layers the probe order
/// *memo → local log → remote peer* — the oracle probes its in-memory memo
/// itself, then hands the miss to this stack.
///
/// A hit at tier *i* is filled back into every cheaper tier (read repair),
/// so a verdict fetched from a peer shard lands in the local log and the
/// next process life answers it without the network. A record is written
/// through to every tier, which is what pools freshly solved verdicts
/// cluster-wide.
///
/// Because every tier only ever returns verdicts that a deterministic
/// local solve would also compute, the composition preserves the
/// byte-identity invariant: outputs match a tier-less run exactly.
pub struct TieredStore {
    tiers: Vec<Arc<dyn VerdictStore>>,
}

impl TieredStore {
    /// A stack of tiers, probed in order.
    pub fn new(tiers: Vec<Arc<dyn VerdictStore>>) -> TieredStore {
        TieredStore { tiers }
    }

    /// Number of composed tiers.
    pub fn depth(&self) -> usize {
        self.tiers.len()
    }
}

impl std::fmt::Debug for TieredStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredStore")
            .field("depth", &self.depth())
            .finish()
    }
}

impl VerdictStore for TieredStore {
    fn lookup(&self, key: Fingerprint) -> Option<bool> {
        for (depth, tier) in self.tiers.iter().enumerate() {
            if let Some(verdict) = tier.lookup(key) {
                // Read repair: fill the cheaper tiers that missed.
                for shallower in &self.tiers[..depth] {
                    shallower.record(key, verdict);
                }
                return Some(verdict);
            }
        }
        None
    }

    fn record(&self, key: Fingerprint, verdict: bool) {
        for tier in &self.tiers {
            tier.record(key, verdict);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Mutex;

    #[derive(Default)]
    struct MapStore {
        map: Mutex<HashMap<u128, bool>>,
        lookups: Mutex<u64>,
    }

    impl VerdictStore for MapStore {
        fn lookup(&self, key: Fingerprint) -> Option<bool> {
            *self.lookups.lock().unwrap() += 1;
            self.map.lock().unwrap().get(&key.0).copied()
        }
        fn record(&self, key: Fingerprint, verdict: bool) {
            self.map.lock().unwrap().insert(key.0, verdict);
        }
    }

    #[test]
    fn probes_in_order_and_read_repairs_cheaper_tiers() {
        let near = Arc::new(MapStore::default());
        let far = Arc::new(MapStore::default());
        far.record(Fingerprint(7), true);
        let stack = TieredStore::new(vec![near.clone(), far.clone()]);
        assert_eq!(stack.depth(), 2);
        assert_eq!(stack.lookup(Fingerprint(7)), Some(true));
        // The far hit was filled into the near tier …
        assert_eq!(near.lookup(Fingerprint(7)), Some(true));
        // … so the next stack lookup stops at the near tier.
        let far_lookups = *far.lookups.lock().unwrap();
        assert_eq!(stack.lookup(Fingerprint(7)), Some(true));
        assert_eq!(*far.lookups.lock().unwrap(), far_lookups);
        // A full miss probes every tier and answers None.
        assert_eq!(stack.lookup(Fingerprint(8)), None);
    }

    #[test]
    fn record_writes_through_every_tier() {
        let near = Arc::new(MapStore::default());
        let far = Arc::new(MapStore::default());
        let stack = TieredStore::new(vec![near.clone(), far.clone()]);
        stack.record(Fingerprint(3), false);
        assert_eq!(near.lookup(Fingerprint(3)), Some(false));
        assert_eq!(far.lookup(Fingerprint(3)), Some(false));
        // An empty stack is inert but well-formed.
        let empty = TieredStore::new(Vec::new());
        empty.record(Fingerprint(1), true);
        assert_eq!(empty.lookup(Fingerprint(1)), None);
    }
}
