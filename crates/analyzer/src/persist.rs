//! The persistent verdict tier's seam.
//!
//! The [`Oracle`](crate::Oracle) memoizes in process memory; a restart loses
//! everything. A [`VerdictStore`] is the disk tier behind it: a durable map
//! from canonical spec fingerprint to boolean oracle verdict, probed after
//! an in-memory miss and fed every freshly computed verdict. The trait lives
//! here (not in the cache crate) so the analyzer has no dependency on any
//! storage implementation — `specrepair-cache` implements it over a
//! crash-safe log-structured file, tests implement it over a `HashMap`.
//!
//! Only the boolean verdict is persisted: it is the query the corpus
//! workloads repeat (thousands of near-identical buggy candidate specs, the
//! Alloy4Fun scenario), it is tiny and checksummable in a fixed frame, and
//! it is exactly reconstructible from the fingerprint alone — unlike full
//! command outcomes or instance enumerations, which stay memory-only.
//!
//! Implementations must be infallible at this interface: a store that hits
//! disk trouble degrades internally (memory-only mode, breaker-style) and
//! simply answers `None` / ignores records. The oracle never sees an error
//! from its persistent tier.

use mualloy_syntax::Fingerprint;

/// A durable fingerprint → verdict map (the persistent oracle cache tier).
pub trait VerdictStore: Send + Sync {
    /// The persisted verdict for `key`, if any.
    fn lookup(&self, key: Fingerprint) -> Option<bool>;

    /// Durably records a freshly computed verdict. Best-effort: errors are
    /// absorbed by the implementation (degradation, not propagation).
    fn record(&self, key: Fingerprint, verdict: bool);
}
