//! The μAlloy analyzer: bounded execution of `run` and `check` commands.
//!
//! Plays the role of the Alloy Analyzer in the study: every repair oracle
//! (assertion validity, predicate satisfiability, counterexample generation,
//! instance enumeration) goes through this type.

use mualloy_relational::{
    assert_body, elaborate_formula, pred_as_existential, Evaluator, Instance, Translator,
};
use mualloy_sat::{SolveResult, Solver};
use mualloy_syntax::ast::*;

use crate::error::AnalyzerError;

/// The outcome of executing one command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandOutcome {
    /// The executed command.
    pub command: Command,
    /// Whether the solved formula was satisfiable. For `run` this means an
    /// instance exists; for `check` it means a **counterexample** exists
    /// (the assertion does not hold in scope).
    pub sat: bool,
    /// The witness: an instance for `run`, a counterexample for `check`.
    pub instance: Option<Instance>,
}

impl CommandOutcome {
    /// Whether the outcome matches the command's `expect` annotation (true
    /// when no annotation is present).
    pub fn matches_expectation(&self) -> bool {
        self.command.expect.is_none_or(|e| e == self.sat)
    }
}

/// Bounded analyzer over a parsed specification.
///
/// # Example
///
/// ```
/// use mualloy_analyzer::Analyzer;
/// use mualloy_syntax::parse_spec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = parse_spec(
///     "sig N { next: lone N } \
///      fact { no n: N | n in n.^next } \
///      assert NoSelf { all n: N | n != n.next } \
///      check NoSelf for 3 expect 0",
/// )?;
/// let analyzer = Analyzer::new(spec);
/// let outcomes = analyzer.execute_all()?;
/// assert!(outcomes[0].matches_expectation()); // acyclicity implies no self-loop
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Analyzer {
    spec: Spec,
}

impl Analyzer {
    /// Creates an analyzer for the given specification.
    pub fn new(spec: Spec) -> Analyzer {
        Analyzer { spec }
    }

    /// Parses source text and creates an analyzer.
    ///
    /// # Errors
    ///
    /// Fails on syntax or static-check errors.
    pub fn from_source(source: &str) -> Result<Analyzer, AnalyzerError> {
        let spec = mualloy_syntax::parse_spec(source)?;
        mualloy_syntax::ensure_well_formed(&spec)?;
        Ok(Analyzer::new(spec))
    }

    /// The underlying specification.
    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// Solves `facts && declarations && formula` at the given scope.
    ///
    /// Returns a satisfying instance, or `None` when unsatisfiable.
    ///
    /// # Errors
    ///
    /// Fails on elaboration or translation errors.
    pub fn solve_formula(
        &self,
        formula: &Formula,
        scope: u32,
    ) -> Result<Option<Instance>, AnalyzerError> {
        Ok(self.enumerate(formula, scope, 1)?.into_iter().next())
    }

    /// Enumerates up to `limit` distinct instances of
    /// `facts && declarations && formula`.
    ///
    /// Instances differ in at least one signature membership or field tuple.
    ///
    /// # Errors
    ///
    /// Fails on elaboration or translation errors.
    pub fn enumerate(
        &self,
        formula: &Formula,
        scope: u32,
        limit: usize,
    ) -> Result<Vec<Instance>, AnalyzerError> {
        // Translation + encoding + the solve loop all count as SAT time in
        // the phase breakdown; the per-solve `sat.solve` child spans nest
        // inside with their counter deltas.
        let span = specrepair_trace::span("analyzer.enumerate", specrepair_trace::Phase::Sat);
        let mut tr = Translator::new(&self.spec, scope)?;
        let f = elaborate_formula(tr.spec(), formula)?;
        let fv = tr.compile_formula(&f)?;
        let root = tr.circuit.and(tr.base_constraint(), fv);
        let mut solver = Solver::new();
        let inputs = tr.circuit.encode(root, &mut solver);
        if span.is_active() {
            span.attr_u64("scope", scope as u64);
            span.attr_u64("limit", limit as u64);
            span.attr_u64("vars", solver.num_vars() as u64);
        }
        let mut out = Vec::new();
        while out.len() < limit {
            match solver.solve() {
                SolveResult::Sat(m) => {
                    let vals: Vec<bool> = inputs
                        .iter()
                        .map(|l| m[l.var().index()] == l.is_positive())
                        .collect();
                    out.push(tr.decode(&vals));
                    // Block this assignment of the relational inputs.
                    let block: Vec<_> = inputs
                        .iter()
                        .zip(&vals)
                        .map(|(&l, &v)| if v { !l } else { l })
                        .collect();
                    if block.is_empty() || !solver.add_clause(block) {
                        break;
                    }
                }
                SolveResult::Unsat => break,
            }
        }
        Ok(out)
    }

    /// Runs a predicate: searches for an instance where the predicate holds
    /// (parameters are existentially quantified).
    ///
    /// # Errors
    ///
    /// Fails when the predicate is unknown or translation fails.
    pub fn run_pred(&self, name: &str, scope: u32) -> Result<CommandOutcome, AnalyzerError> {
        let formula = pred_as_existential(&self.spec, name)
            .map_err(|_| AnalyzerError::UnknownTarget(name.to_string()))?;
        let instance = self.solve_formula(&formula, scope)?;
        Ok(CommandOutcome {
            command: Command {
                kind: CommandKind::Run(name.to_string()),
                scope,
                expect: None,
                span: Span::synthetic(),
            },
            sat: instance.is_some(),
            instance,
        })
    }

    /// Checks an assertion: searches for a counterexample (an instance of
    /// the facts violating the assertion body).
    ///
    /// # Errors
    ///
    /// Fails when the assertion is unknown or translation fails.
    pub fn check_assert(&self, name: &str, scope: u32) -> Result<CommandOutcome, AnalyzerError> {
        let body = assert_body(&self.spec, name)
            .map_err(|_| AnalyzerError::UnknownTarget(name.to_string()))?;
        let negated = Formula::not(body);
        let instance = self.solve_formula(&negated, scope)?;
        Ok(CommandOutcome {
            command: Command {
                kind: CommandKind::Check(name.to_string()),
                scope,
                expect: None,
                span: Span::synthetic(),
            },
            sat: instance.is_some(),
            instance,
        })
    }

    /// Enumerates up to `limit` counterexamples to the named assertion.
    ///
    /// # Errors
    ///
    /// Fails when the assertion is unknown or translation fails.
    pub fn counterexamples(
        &self,
        name: &str,
        scope: u32,
        limit: usize,
    ) -> Result<Vec<Instance>, AnalyzerError> {
        let body = assert_body(&self.spec, name)
            .map_err(|_| AnalyzerError::UnknownTarget(name.to_string()))?;
        self.enumerate(&Formula::not(body), scope, limit)
    }

    /// Executes a single command.
    ///
    /// # Errors
    ///
    /// Fails on unknown targets or translation errors.
    pub fn run_command(&self, cmd: &Command) -> Result<CommandOutcome, AnalyzerError> {
        let mut outcome = match &cmd.kind {
            CommandKind::Run(name) => self.run_pred(name, cmd.scope)?,
            CommandKind::Check(name) => self.check_assert(name, cmd.scope)?,
        };
        outcome.command = cmd.clone();
        Ok(outcome)
    }

    /// Executes every command in the specification, in order.
    ///
    /// # Errors
    ///
    /// Fails on the first command that cannot be executed.
    pub fn execute_all(&self) -> Result<Vec<CommandOutcome>, AnalyzerError> {
        self.spec
            .commands
            .iter()
            .map(|c| self.run_command(c))
            .collect()
    }

    /// Whether every command's outcome matches its `expect` annotation.
    ///
    /// This is the *property oracle* the traditional repair tools validate
    /// candidates against.
    ///
    /// # Errors
    ///
    /// Fails if any command cannot be executed.
    pub fn satisfies_oracle(&self) -> Result<bool, AnalyzerError> {
        Ok(self
            .execute_all()?
            .iter()
            .all(CommandOutcome::matches_expectation))
    }

    /// The commands whose outcomes contradict their `expect` annotations.
    ///
    /// # Errors
    ///
    /// Fails if any command cannot be executed.
    pub fn failing_commands(&self) -> Result<Vec<CommandOutcome>, AnalyzerError> {
        Ok(self
            .execute_all()?
            .into_iter()
            .filter(|o| !o.matches_expectation())
            .collect())
    }

    /// Evaluates an (unelaborated) formula against a concrete instance,
    /// inlining predicate/function calls against this spec first.
    ///
    /// # Errors
    ///
    /// Fails on elaboration or evaluation errors.
    pub fn evaluate(&self, instance: &Instance, formula: &Formula) -> Result<bool, AnalyzerError> {
        let f = elaborate_formula(&self.spec, formula)?;
        Ok(Evaluator::new(instance).formula(&f)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_syntax::{parse_formula, parse_spec};

    const LIST: &str = "sig N { next: lone N } \
        fact Acyclic { no n: N | n in n.^next } \
        pred somePath { some n: N | some n.next } \
        assert NoSelfLoop { all n: N | n not in n.next } \
        run somePath for 3 expect 1 \
        check NoSelfLoop for 3 expect 0";

    fn analyzer() -> Analyzer {
        Analyzer::new(parse_spec(LIST).unwrap())
    }

    #[test]
    fn run_finds_instance() {
        let out = analyzer().run_pred("somePath", 3).unwrap();
        assert!(out.sat);
        let inst = out.instance.unwrap();
        assert!(!inst.field_set("next").is_empty());
    }

    #[test]
    fn check_valid_assertion_has_no_counterexample() {
        let out = analyzer().check_assert("NoSelfLoop", 3).unwrap();
        assert!(!out.sat, "acyclicity implies no self loops");
        assert!(out.instance.is_none());
    }

    #[test]
    fn check_invalid_assertion_yields_counterexample() {
        let spec =
            parse_spec("sig N { next: lone N } assert Emptyish { no next } check Emptyish for 3")
                .unwrap();
        let out = Analyzer::new(spec).check_assert("Emptyish", 3).unwrap();
        assert!(out.sat);
        let cex = out.instance.unwrap();
        assert!(!cex.field_set("next").is_empty());
    }

    #[test]
    fn execute_all_and_oracle() {
        let a = analyzer();
        let outcomes = a.execute_all().unwrap();
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|o| o.matches_expectation()));
        assert!(a.satisfies_oracle().unwrap());
        assert!(a.failing_commands().unwrap().is_empty());
    }

    #[test]
    fn oracle_detects_faults() {
        // Break the fact: cycles allowed -> NoSelfLoop gets a counterexample.
        let faulty = LIST.replace("no n: N | n in n.^next", "some N || no N");
        let a = Analyzer::new(parse_spec(&faulty).unwrap());
        assert!(!a.satisfies_oracle().unwrap());
        let failing = a.failing_commands().unwrap();
        assert_eq!(failing.len(), 1);
        assert!(failing[0].command.is_check());
    }

    #[test]
    fn unknown_targets_error() {
        let a = analyzer();
        assert!(matches!(
            a.run_pred("ghost", 3),
            Err(AnalyzerError::UnknownTarget(_))
        ));
        assert!(matches!(
            a.check_assert("ghost", 3),
            Err(AnalyzerError::UnknownTarget(_))
        ));
    }

    #[test]
    fn enumerate_yields_distinct_instances() {
        let a = analyzer();
        let f = parse_formula("some N").unwrap();
        let instances = a.enumerate(&f, 2, 10).unwrap();
        assert!(instances.len() > 1);
        for i in 0..instances.len() {
            for j in (i + 1)..instances.len() {
                assert_ne!(instances[i], instances[j]);
            }
        }
    }

    #[test]
    fn counterexamples_enumeration() {
        let spec =
            parse_spec("sig N { next: lone N } assert NoNext { no next } check NoNext for 2")
                .unwrap();
        let a = Analyzer::new(spec);
        let cexs = a.counterexamples("NoNext", 2, 5).unwrap();
        assert!(!cexs.is_empty());
        for c in &cexs {
            assert!(!c.field_set("next").is_empty());
        }
    }

    #[test]
    fn evaluate_against_instance() {
        let a = analyzer();
        let inst = a.run_pred("somePath", 3).unwrap().instance.unwrap();
        assert!(a
            .evaluate(&inst, &parse_formula("some n: N | some n.next").unwrap())
            .unwrap());
        assert!(a
            .evaluate(&inst, &parse_formula("no n: N | n in n.^next").unwrap())
            .unwrap());
    }

    #[test]
    fn from_source_validates() {
        assert!(Analyzer::from_source("sig A { f: set Ghost }").is_err());
        assert!(Analyzer::from_source("sig A {").is_err());
        assert!(Analyzer::from_source("sig A {}").is_ok());
    }
}
