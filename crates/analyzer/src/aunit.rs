//! AUnit-style unit tests for μAlloy specifications.
//!
//! An [`AUnitTest`] pairs a concrete valuation (an [`Instance`]) with a
//! formula and an expected result, mirroring the AUnit framework ARepair
//! consumes: a test passes against a candidate specification when the
//! formula *and the candidate's facts* evaluate on the valuation to the
//! expected boolean.

use mualloy_relational::{elaborate_formula, Evaluator, Instance};
use mualloy_syntax::ast::{Formula, Spec};

use crate::error::AnalyzerError;

/// A concrete-valuation unit test.
#[derive(Debug, Clone, PartialEq)]
pub struct AUnitTest {
    /// Test name (for reporting).
    pub name: String,
    /// The concrete valuation the test runs against.
    pub valuation: Instance,
    /// The formula under test.
    pub formula: Formula,
    /// The expected evaluation result of `facts && formula`.
    pub expect: bool,
}

impl AUnitTest {
    /// Creates a test.
    pub fn new(
        name: impl Into<String>,
        valuation: Instance,
        formula: Formula,
        expect: bool,
    ) -> AUnitTest {
        AUnitTest {
            name: name.into(),
            valuation,
            formula,
            expect,
        }
    }

    /// Evaluates the test against a candidate specification.
    ///
    /// The candidate's facts are conjoined with the test formula before
    /// evaluation, so repairs that weaken or strengthen facts are observable.
    ///
    /// # Errors
    ///
    /// Fails when elaboration or evaluation fails (e.g. the candidate
    /// renamed a referenced field).
    pub fn run(&self, candidate: &Spec) -> Result<bool, AnalyzerError> {
        let ev = Evaluator::new(&self.valuation);
        let mut value = true;
        for fact in &candidate.facts {
            for f in &fact.body {
                let elaborated = elaborate_formula(candidate, f)?;
                if !ev.formula(&elaborated)? {
                    value = false;
                }
            }
        }
        if value {
            let elaborated = elaborate_formula(candidate, &self.formula)?;
            value = ev.formula(&elaborated)?;
        }
        Ok(value == self.expect)
    }
}

/// A suite of AUnit tests with pass/fail accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TestSuite {
    tests: Vec<AUnitTest>,
}

impl TestSuite {
    /// Creates an empty suite.
    pub fn new() -> TestSuite {
        TestSuite::default()
    }

    /// Adds a test to the suite.
    pub fn push(&mut self, test: AUnitTest) {
        self.tests.push(test);
    }

    /// The tests in the suite.
    pub fn tests(&self) -> &[AUnitTest] {
        &self.tests
    }

    /// Number of tests.
    pub fn len(&self) -> usize {
        self.tests.len()
    }

    /// Whether the suite has no tests.
    pub fn is_empty(&self) -> bool {
        self.tests.is_empty()
    }

    /// Runs the whole suite; a test that errors counts as failing.
    ///
    /// Returns `(passed, failed)`.
    pub fn run(&self, candidate: &Spec) -> (usize, usize) {
        let mut passed = 0;
        let mut failed = 0;
        for t in &self.tests {
            match t.run(candidate) {
                Ok(true) => passed += 1,
                _ => failed += 1,
            }
        }
        (passed, failed)
    }

    /// Whether every test passes against the candidate.
    pub fn all_pass(&self, candidate: &Spec) -> bool {
        self.run(candidate).1 == 0
    }
}

impl Extend<AUnitTest> for TestSuite {
    fn extend<T: IntoIterator<Item = AUnitTest>>(&mut self, iter: T) {
        self.tests.extend(iter);
    }
}

impl FromIterator<AUnitTest> for TestSuite {
    fn from_iter<T: IntoIterator<Item = AUnitTest>>(iter: T) -> Self {
        TestSuite {
            tests: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_syntax::{parse_formula, parse_spec};
    use std::collections::BTreeSet;

    fn chain_instance() -> Instance {
        let mut inst = Instance::new((0..3).map(|i| format!("N${i}")).collect());
        inst.set_sig("N", [0u32, 1, 2].into_iter().collect());
        inst.set_field("next", [vec![0u32, 1], vec![1, 2]].into_iter().collect());
        inst
    }

    fn spec() -> Spec {
        parse_spec("sig N { next: lone N } fact { no n: N | n in n.^next }").unwrap()
    }

    #[test]
    fn passing_test() {
        let t = AUnitTest::new(
            "chain ok",
            chain_instance(),
            parse_formula("some n: N | no n.next").unwrap(),
            true,
        );
        assert!(t.run(&spec()).unwrap());
    }

    #[test]
    fn failing_expectation() {
        let t = AUnitTest::new(
            "wrong expectation",
            chain_instance(),
            parse_formula("no next").unwrap(),
            true,
        );
        assert!(!t.run(&spec()).unwrap());
    }

    #[test]
    fn facts_participate_in_evaluation() {
        // A valuation with a cycle violates the acyclicity fact, so the
        // conjunction is false regardless of the formula.
        let mut inst = chain_instance();
        let mut next: BTreeSet<Vec<u32>> = inst.field_set("next");
        next.insert(vec![2, 0]);
        inst.set_field("next", next);
        let t = AUnitTest::new(
            "cycle violates facts",
            inst,
            parse_formula("some N").unwrap(),
            false, // expected false because facts fail
        );
        assert!(t.run(&spec()).unwrap());
    }

    #[test]
    fn suite_accounting() {
        let mut suite = TestSuite::new();
        suite.push(AUnitTest::new(
            "t1",
            chain_instance(),
            parse_formula("some N").unwrap(),
            true,
        ));
        suite.push(AUnitTest::new(
            "t2",
            chain_instance(),
            parse_formula("no N").unwrap(),
            true, // wrong: fails
        ));
        let (p, f) = suite.run(&spec());
        assert_eq!((p, f), (1, 1));
        assert!(!suite.all_pass(&spec()));
        assert_eq!(suite.len(), 2);
    }

    #[test]
    fn erroring_test_counts_as_failure() {
        let mut suite = TestSuite::new();
        suite.push(AUnitTest::new(
            "bad name",
            chain_instance(),
            parse_formula("some Ghost").unwrap(),
            true,
        ));
        let (p, f) = suite.run(&spec());
        assert_eq!((p, f), (0, 1));
    }

    #[test]
    fn collect_from_iterator() {
        let suite: TestSuite = vec![AUnitTest::new(
            "t",
            chain_instance(),
            parse_formula("some N").unwrap(),
            true,
        )]
        .into_iter()
        .collect();
        assert_eq!(suite.len(), 1);
    }
}
