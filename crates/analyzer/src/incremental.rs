//! The incremental oracle engine: persistent solver sessions shared across
//! repair candidates.
//!
//! Repair searches validate hundreds of candidate specifications that are
//! tiny mutations of one faulty spec: they share their signature skeleton
//! (and therefore their universe, relation matrices and declaration
//! constraints) and almost all of their fact bodies. The cold oracle path
//! rebuilds a [`Translator`] and a fresh SAT solver per candidate; this
//! engine instead keeps one [`Translator`] plus one
//! [`IncrementalSession`] alive per *(skeleton fingerprint, scope)* pair:
//!
//! - the universe, matrices and declaration constraint are built once from
//!   the first candidate and reused verbatim (candidates share sigs by
//!   construction of the session key);
//! - each candidate's fact bodies and command formula are elaborated
//!   against the *candidate* and compiled into the session's hash-consed
//!   circuit, so unchanged subformulas resolve to already-encoded gates —
//!   only the mutated predicate contributes new clauses;
//! - the per-candidate root is activation-guarded and solved under
//!   assumptions by the session, retaining learnt clauses over the shared
//!   skeleton across candidates (see [`mualloy_sat::incremental`]).
//!
//! The engine only answers the boolean verdict question ("does this
//! candidate satisfy its command oracle?"). Any elaboration or translation
//! trouble makes it return `None`, and the caller falls back to the cold
//! path — so error answers, instances and enumerations are byte-identical
//! with incremental mode on or off.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mualloy_relational::{
    assert_body, elaborate_formula, elaborate_spec, pred_as_existential, Translator,
};
use mualloy_sat::{BoolRef, IncrementalSession};
use mualloy_syntax::ast::{CommandKind, Formula, Spec};
use mualloy_syntax::{formula_hash, skeleton_fingerprint, Fingerprint};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Maximum live sessions; the oldest is evicted FIFO beyond this. Stats are
/// accumulated per check, so eviction loses no counters — only the evicted
/// session's encoded clauses.
const MAX_SESSIONS: usize = 16;

/// A point-in-time snapshot of the engine's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct IncrementalStats {
    /// Persistent sessions created (one per skeleton × scope).
    pub sessions: u64,
    /// Candidate command checks answered incrementally.
    pub checks: u64,
    /// Verdict queries the engine declined (elaboration or translation
    /// trouble), answered by the cold path instead.
    pub fallbacks: u64,
    /// Activation literals allocated (one per incremental check).
    pub activation_vars: u64,
    /// Solver clauses already present at the start of each check, summed
    /// over checks — the work retained from earlier candidates.
    pub clauses_reused: u64,
    /// Solver clauses present after each check's encoding, summed over
    /// checks.
    pub clauses_total: u64,
    /// Learnt clauses carried into each check from earlier ones, summed
    /// over checks.
    pub learned_clauses_retained: u64,
}

impl IncrementalStats {
    /// Fraction of per-check clauses retained from earlier candidates
    /// rather than re-encoded (0.0 before the first check).
    pub fn clause_reuse_rate(&self) -> f64 {
        if self.clauses_total == 0 {
            0.0
        } else {
            self.clauses_reused as f64 / self.clauses_total as f64
        }
    }

    /// Accumulates another snapshot into this one.
    pub fn absorb(&mut self, other: &IncrementalStats) {
        self.sessions += other.sessions;
        self.checks += other.checks;
        self.fallbacks += other.fallbacks;
        self.activation_vars += other.activation_vars;
        self.clauses_reused += other.clauses_reused;
        self.clauses_total += other.clauses_total;
        self.learned_clauses_retained += other.learned_clauses_retained;
    }

    /// The telemetry `incremental` section for this snapshot.
    pub fn section(&self) -> specrepair_telemetry::IncrementalSection {
        specrepair_telemetry::IncrementalSection {
            sessions: self.sessions,
            checks: self.checks,
            fallbacks: self.fallbacks,
            activation_vars: self.activation_vars,
            clause_reuse_rate: self.clause_reuse_rate(),
            learned_clauses_retained: self.learned_clauses_retained,
        }
    }
}

/// One persistent translation + solver session for a (skeleton, scope)
/// pair.
struct ScopeSession {
    /// Translator built from the first candidate seen with this skeleton;
    /// its universe, matrices and declaration constraint are shared by
    /// every candidate of the session. Its circuit grows monotonically.
    tr: Translator,
    session: IncrementalSession,
    /// Compiled top-level formula roots keyed by structural (span-blind)
    /// formula hash — the delta-re-elaboration cache. Candidates are tiny
    /// mutations, so across a whole search only the mutated bodies (and
    /// each distinct command formula, once) pay the universe-expansion
    /// compile walk; everything unchanged is a map lookup. Sound because
    /// every formula compiled here is closed: its gates depend only on the
    /// session's shared universe and matrices.
    compiled: HashMap<u128, BoolRef>,
}

impl ScopeSession {
    /// Compiles and checks one candidate command root: declaration
    /// constraint ∧ the candidate's fact bodies ∧ the (elaborated) command
    /// formula. Returns `None` on any translation trouble.
    fn check(&mut self, elab: &Spec, command_formula: &Formula) -> Option<bool> {
        let mut parts = vec![self.tr.decl_constraint()];
        for fact in &elab.facts {
            for f in &fact.body {
                parts.push(self.compile_cached(f)?);
            }
        }
        parts.push(self.compile_cached(command_formula)?);
        let root = self.tr.circuit.and_many(parts);
        Some(self.session.check(&self.tr.circuit, root).is_sat())
    }

    /// Compiles one closed top-level formula, reusing the session's cached
    /// root when a structurally identical formula was compiled before.
    fn compile_cached(&mut self, f: &Formula) -> Option<BoolRef> {
        let key = formula_hash(f);
        if let Some(gate) = self.compiled.get(&key) {
            return Some(*gate);
        }
        let gate = self.tr.compile_formula(f).ok()?;
        self.compiled.insert(key, gate);
        Some(gate)
    }
}

/// The sessions keyed by (skeleton fingerprint, scope), plus FIFO
/// insertion order for eviction.
#[derive(Default)]
struct SessionTable {
    map: HashMap<(Fingerprint, u32), Arc<Mutex<ScopeSession>>>,
    order: VecDeque<(Fingerprint, u32)>,
}

/// The incremental oracle engine: thread-safe, cheap to share, and safe to
/// call from rayon workers (checks on distinct sessions run concurrently).
#[derive(Default)]
pub struct IncrementalEngine {
    sessions: Mutex<SessionTable>,
    sessions_created: AtomicU64,
    checks: AtomicU64,
    fallbacks: AtomicU64,
    activation_vars: AtomicU64,
    clauses_reused: AtomicU64,
    clauses_total: AtomicU64,
    learned_retained: AtomicU64,
}

impl std::fmt::Debug for IncrementalEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncrementalEngine")
            .field("stats", &self.stats())
            .finish()
    }
}

impl IncrementalEngine {
    /// A fresh engine with no sessions.
    pub fn new() -> IncrementalEngine {
        IncrementalEngine::default()
    }

    /// Snapshot of the engine's counters.
    pub fn stats(&self) -> IncrementalStats {
        IncrementalStats {
            sessions: self.sessions_created.load(Ordering::Relaxed),
            checks: self.checks.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            activation_vars: self.activation_vars.load(Ordering::Relaxed),
            clauses_reused: self.clauses_reused.load(Ordering::Relaxed),
            clauses_total: self.clauses_total.load(Ordering::Relaxed),
            learned_clauses_retained: self.learned_retained.load(Ordering::Relaxed),
        }
    }

    /// Whether every command of `spec` matches its `expect` annotation,
    /// answered through persistent incremental sessions.
    ///
    /// Returns `None` (after counting a fallback) whenever the candidate
    /// cannot be checked incrementally — elaboration failure, unknown
    /// command target, translation error — in which case the caller must
    /// answer via the cold path so error semantics stay identical.
    pub fn satisfies_oracle(&self, spec: &Spec) -> Option<bool> {
        let verdict = self.try_satisfies(spec);
        if verdict.is_none() {
            self.fallbacks.fetch_add(1, Ordering::Relaxed);
        }
        verdict
    }

    fn try_satisfies(&self, spec: &Spec) -> Option<bool> {
        let elab = elaborate_spec(spec).ok()?;
        let skeleton = skeleton_fingerprint(&elab);
        let mut all_match = true;
        // Every command is evaluated even after a mismatch: a later command
        // whose cold execution would error must force the fallback, not be
        // short-circuited into a confident `false`.
        for cmd in &spec.commands {
            let formula = match &cmd.kind {
                CommandKind::Run(name) => pred_as_existential(spec, name).ok()?,
                CommandKind::Check(name) => Formula::not(assert_body(spec, name).ok()?),
            };
            let f = elaborate_formula(&elab, &formula).ok()?;
            let slot = self.session_for(skeleton, cmd.scope, spec)?;
            let mut session = slot.lock();
            let before = *session.session.stats();
            let sat = session.check(&elab, &f)?;
            self.accumulate(session.session.stats(), &before);
            if cmd.expect.is_some_and(|e| e != sat) {
                all_match = false;
            }
        }
        Some(all_match)
    }

    /// Fetches (or creates) the session for one (skeleton, scope) pair.
    fn session_for(
        &self,
        skeleton: Fingerprint,
        scope: u32,
        spec: &Spec,
    ) -> Option<Arc<Mutex<ScopeSession>>> {
        let key = (skeleton, scope);
        let mut table = self.sessions.lock();
        if let Some(slot) = table.map.get(&key) {
            return Some(Arc::clone(slot));
        }
        let tr = Translator::new(spec, scope).ok()?;
        let slot = Arc::new(Mutex::new(ScopeSession {
            tr,
            session: IncrementalSession::new(),
            compiled: HashMap::new(),
        }));
        table.map.insert(key, Arc::clone(&slot));
        table.order.push_back(key);
        while table.map.len() > MAX_SESSIONS {
            let Some(oldest) = table.order.pop_front() else {
                break;
            };
            table.map.remove(&oldest);
        }
        self.sessions_created.fetch_add(1, Ordering::Relaxed);
        Some(slot)
    }

    /// Folds one check's session-stat delta into the engine counters.
    fn accumulate(&self, after: &mualloy_sat::SessionStats, before: &mualloy_sat::SessionStats) {
        self.checks
            .fetch_add(after.checks - before.checks, Ordering::Relaxed);
        self.activation_vars.fetch_add(
            after.activation_vars - before.activation_vars,
            Ordering::Relaxed,
        );
        self.clauses_reused.fetch_add(
            after.clauses_reused - before.clauses_reused,
            Ordering::Relaxed,
        );
        self.clauses_total.fetch_add(
            after.clauses_total - before.clauses_total,
            Ordering::Relaxed,
        );
        self.learned_retained.fetch_add(
            after.learned_retained - before.learned_retained,
            Ordering::Relaxed,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::Analyzer;
    use mualloy_syntax::parse_spec;

    const GOOD: &str = "sig N { next: lone N } \
        fact Acyclic { no n: N | n in n.^next } \
        pred somePath { some n: N | some n.next } \
        assert NoSelfLoop { all n: N | n not in n.next } \
        run somePath for 3 expect 1 \
        check NoSelfLoop for 3 expect 0";

    #[test]
    fn agrees_with_cold_analyzer_across_candidates() {
        let engine = IncrementalEngine::new();
        // Candidate mutations of the same spec: fixed, broken, and weird.
        let variants = [
            GOOD.to_string(),
            GOOD.replace("no n: N | n in n.^next", "some N || no N"),
            GOOD.replace("all n: N | n not in n.next", "no N"),
            GOOD.replace("some n: N | some n.next", "no next"),
        ];
        for src in &variants {
            let spec = parse_spec(src).unwrap();
            let cold = Analyzer::new(spec.clone()).satisfies_oracle().unwrap();
            assert_eq!(
                engine.satisfies_oracle(&spec),
                Some(cold),
                "incremental and cold verdicts must agree on `{src}`"
            );
        }
        let stats = engine.stats();
        assert_eq!(stats.fallbacks, 0);
        // 4 candidates × 2 commands, all sharing one skeleton at scope 3.
        assert_eq!(stats.checks, 8);
        assert_eq!(stats.sessions, 1);
        assert!(
            stats.clause_reuse_rate() > 0.0,
            "later candidates must reuse earlier clauses: {stats:?}"
        );
    }

    #[test]
    fn unknown_targets_fall_back() {
        let engine = IncrementalEngine::new();
        let Ok(spec) = parse_spec("sig A {} run ghost for 3 expect 1") else {
            return; // parser rejects unknown targets up front: nothing to do
        };
        assert_eq!(engine.satisfies_oracle(&spec), None);
        assert_eq!(engine.stats().fallbacks, 1);
    }

    #[test]
    fn distinct_scopes_get_distinct_sessions() {
        let engine = IncrementalEngine::new();
        let spec = parse_spec(
            "sig N { next: lone N } \
             assert NoSelf { all n: N | n not in n.next } \
             check NoSelf for 2 expect 1 \
             check NoSelf for 4 expect 1",
        )
        .unwrap();
        let cold = Analyzer::new(spec.clone()).satisfies_oracle().unwrap();
        assert_eq!(engine.satisfies_oracle(&spec), Some(cold));
        assert_eq!(engine.stats().sessions, 2);
    }
}
