//! Witness minimization — the analog of Alloy's minimal-instance display.
//!
//! Counterexamples handed to users (and to the Multi-Round feedback
//! templates) are easier to act on when they contain no irrelevant tuples.
//! [`minimize_witness`] greedily removes field tuples and signature atoms
//! while the instance still witnesses the given formula under the
//! specification's facts, re-checking with the ground evaluator each step
//! (no solver calls).

use mualloy_relational::{elaborate_formula, Evaluator, Instance};
use mualloy_syntax::ast::{Formula, Spec};
use std::collections::BTreeSet;

use crate::error::AnalyzerError;

/// Whether the instance satisfies `facts && formula` per the ground
/// evaluator.
fn still_witnesses(spec: &Spec, formula: &Formula, inst: &Instance) -> bool {
    let ev = Evaluator::new(inst);
    let facts_ok = spec.facts.iter().all(|f| {
        f.body.iter().all(|g| {
            elaborate_formula(spec, g)
                .ok()
                .and_then(|e| ev.formula(&e).ok())
                .unwrap_or(false)
        })
    });
    if !facts_ok {
        return false;
    }
    elaborate_formula(spec, formula)
        .ok()
        .and_then(|e| ev.formula(&e).ok())
        .unwrap_or(false)
}

/// Greedily minimizes a witness instance of `facts && formula`.
///
/// Tuples are removed field by field, then atoms signature by signature
/// (an atom removal also deletes every tuple mentioning it); each removal
/// is kept only if the instance still witnesses the formula. The result is
/// locally minimal: removing any single remaining tuple or atom breaks the
/// witness property.
///
/// # Errors
///
/// Fails when the input instance is not a witness in the first place.
pub fn minimize_witness(
    spec: &Spec,
    formula: &Formula,
    witness: &Instance,
) -> Result<Instance, AnalyzerError> {
    if !still_witnesses(spec, formula, witness) {
        return Err(AnalyzerError::Translate(
            mualloy_relational::TranslateError::new(
                "instance does not witness the formula; nothing to minimize",
            ),
        ));
    }
    let mut current = witness.clone();

    // Phase 1: drop field tuples.
    let field_names: Vec<String> = current.field_names().map(String::from).collect();
    for field in &field_names {
        let tuples: Vec<Vec<u32>> = current.field_set(field).into_iter().collect();
        for t in tuples {
            let mut trial = current.clone();
            let mut set = trial.field_set(field);
            set.remove(&t);
            trial.set_field(field.clone(), set);
            if still_witnesses(spec, formula, &trial) {
                current = trial;
            }
        }
    }

    // Phase 2: drop atoms (cascading into remaining tuples).
    let sig_names: Vec<String> = current.sig_names().map(String::from).collect();
    for sig in &sig_names {
        let atoms: Vec<u32> = current.sig_set(sig).into_iter().collect();
        for atom in atoms {
            let mut trial = current.clone();
            for s in &sig_names {
                let set: BTreeSet<u32> = trial
                    .sig_set(s)
                    .into_iter()
                    .filter(|&a| a != atom)
                    .collect();
                trial.set_sig(s.clone(), set);
            }
            for f in &field_names {
                let set: BTreeSet<Vec<u32>> = trial
                    .field_set(f)
                    .into_iter()
                    .filter(|t| !t.contains(&atom))
                    .collect();
                trial.set_field(f.clone(), set);
            }
            if still_witnesses(spec, formula, &trial) {
                current = trial;
            }
        }
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::Analyzer;
    use mualloy_syntax::{parse_formula, parse_spec};

    fn setup() -> (Spec, Formula, Instance) {
        let spec = parse_spec("sig N { next: lone N } fact { no n: N | n in n.^next }").unwrap();
        let formula = parse_formula("some n: N | some n.next").unwrap();
        let analyzer = Analyzer::new(spec.clone());
        // Ask for a *large* witness by enumerating a few and taking the
        // biggest.
        let witness = analyzer
            .enumerate(&formula, 3, 8)
            .unwrap()
            .into_iter()
            .max_by_key(Instance::size)
            .unwrap();
        (spec, formula, witness)
    }

    #[test]
    fn minimization_shrinks_and_preserves_witnesshood() {
        let (spec, formula, witness) = setup();
        let minimal = minimize_witness(&spec, &formula, &witness).unwrap();
        assert!(minimal.size() <= witness.size());
        assert!(still_witnesses(&spec, &formula, &minimal));
        // `some n | some n.next` needs exactly two atoms and one edge.
        assert_eq!(minimal.field_set("next").len(), 1);
        assert_eq!(minimal.sig_set("N").len(), 2);
    }

    #[test]
    fn result_is_locally_minimal() {
        let (spec, formula, witness) = setup();
        let minimal = minimize_witness(&spec, &formula, &witness).unwrap();
        // Removing the remaining edge must break the witness.
        let mut broken = minimal.clone();
        broken.set_field("next", BTreeSet::new());
        assert!(!still_witnesses(&spec, &formula, &broken));
    }

    #[test]
    fn non_witness_input_is_rejected() {
        let (spec, formula, _) = setup();
        let empty = Instance::new(vec![]);
        assert!(minimize_witness(&spec, &formula, &empty).is_err());
    }

    #[test]
    fn counterexample_minimization_end_to_end() {
        let spec = parse_spec(
            "sig N { next: lone N } \
             assert NoEdge { no next } check NoEdge for 3",
        )
        .unwrap();
        let analyzer = Analyzer::new(spec.clone());
        let out = analyzer.check_assert("NoEdge", 3).unwrap();
        let cex = out.instance.unwrap();
        // Counterexamples witness the negated assertion body.
        let negated = Formula::not(Formula::conjoin(
            spec.assert("NoEdge").unwrap().body.clone(),
        ));
        let minimal = minimize_witness(&spec, &negated, &cex).unwrap();
        assert!(minimal.size() <= cex.size());
        assert_eq!(minimal.field_set("next").len(), 1);
    }
}
