//! Structured analyzer reports.
//!
//! These are the artifacts the Multi-Round LLM pipeline feeds back to its
//! repair agent (the paper's *Generic-feedback* renders them with a fixed
//! template; *Auto-feedback* post-processes them into targeted guidance).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::analyzer::Analyzer;

/// Status of one command execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommandStatus {
    /// Outcome agreed with the command's `expect` annotation (or there was
    /// no annotation).
    Ok,
    /// A `check` produced a counterexample although `expect 0` was declared.
    UnexpectedCounterexample,
    /// A `run` found no instance although `expect 1` was declared.
    UnexpectedUnsat,
    /// A `run` found an instance although `expect 0` was declared, or a
    /// `check` found none although `expect 1` was declared.
    UnexpectedResult,
    /// The command could not be executed at all.
    Error(String),
}

/// Report for one command.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandReport {
    /// Rendered command, e.g. `check Safe for 3`.
    pub command: String,
    /// Execution status.
    pub status: CommandStatus,
    /// Rendering of the witness instance/counterexample, if any.
    pub witness: Option<String>,
}

/// A full analyzer report over a specification (or candidate text).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalyzerReport {
    /// Whether the text parsed and passed static checks.
    pub well_formed: bool,
    /// Parse/check error message when not well-formed.
    pub error: Option<String>,
    /// Per-command reports (empty when not well-formed).
    pub commands: Vec<CommandReport>,
}

impl AnalyzerReport {
    /// Builds a report by executing every command of the given source text.
    pub fn for_source(source: &str) -> AnalyzerReport {
        match Analyzer::from_source(source) {
            Err(e) => AnalyzerReport {
                well_formed: false,
                error: Some(e.to_string()),
                commands: Vec::new(),
            },
            Ok(analyzer) => Self::for_analyzer(&analyzer),
        }
    }

    /// Builds a report by executing every command through the analyzer.
    pub fn for_analyzer(analyzer: &Analyzer) -> AnalyzerReport {
        let mut commands = Vec::new();
        for cmd in &analyzer.spec().commands {
            let verb = if cmd.is_check() { "check" } else { "run" };
            let rendered = format!("{verb} {} for {}", cmd.target(), cmd.scope);
            match analyzer.run_command(cmd) {
                Err(e) => commands.push(CommandReport {
                    command: rendered,
                    status: CommandStatus::Error(e.to_string()),
                    witness: None,
                }),
                Ok(out) => {
                    let status = if out.matches_expectation() {
                        CommandStatus::Ok
                    } else if cmd.is_check() && out.sat {
                        CommandStatus::UnexpectedCounterexample
                    } else if !cmd.is_check() && !out.sat {
                        CommandStatus::UnexpectedUnsat
                    } else {
                        CommandStatus::UnexpectedResult
                    };
                    commands.push(CommandReport {
                        command: rendered,
                        status,
                        witness: out.instance.map(|i| i.to_string()),
                    });
                }
            }
        }
        AnalyzerReport {
            well_formed: true,
            error: None,
            commands,
        }
    }

    /// Whether every command succeeded with the expected outcome.
    pub fn all_ok(&self) -> bool {
        self.well_formed && self.commands.iter().all(|c| c.status == CommandStatus::Ok)
    }

    /// Number of commands whose outcome contradicted expectations or errored.
    pub fn num_failing(&self) -> usize {
        self.commands
            .iter()
            .filter(|c| c.status != CommandStatus::Ok)
            .count()
    }
}

impl fmt::Display for AnalyzerReport {
    /// Renders the report with the fixed template used as
    /// *Generic-feedback* in the Multi-Round pipeline.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.well_formed {
            writeln!(
                f,
                "The Alloy Analyzer could not parse the specification: {}",
                self.error.as_deref().unwrap_or("unknown error")
            )?;
            return Ok(());
        }
        for c in &self.commands {
            match &c.status {
                CommandStatus::Ok => writeln!(f, "[PASS] {}", c.command)?,
                CommandStatus::UnexpectedCounterexample => {
                    writeln!(f, "[FAIL] {}: a counterexample was found:", c.command)?;
                    if let Some(w) = &c.witness {
                        for line in w.lines() {
                            writeln!(f, "    {line}")?;
                        }
                    }
                }
                CommandStatus::UnexpectedUnsat => writeln!(
                    f,
                    "[FAIL] {}: no satisfying instance exists within scope",
                    c.command
                )?,
                CommandStatus::UnexpectedResult => {
                    writeln!(f, "[FAIL] {}: unexpected result", c.command)?
                }
                CommandStatus::Error(e) => writeln!(f, "[ERROR] {}: {e}", c.command)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "sig N { next: lone N } \
        fact { no n: N | n in n.^next } \
        assert NoSelf { all n: N | n not in n.next } \
        check NoSelf for 3 expect 0";

    #[test]
    fn passing_spec_reports_ok() {
        let r = AnalyzerReport::for_source(GOOD);
        assert!(r.well_formed);
        assert!(r.all_ok());
        assert_eq!(r.num_failing(), 0);
        assert!(r.to_string().contains("[PASS]"));
    }

    #[test]
    fn failing_check_includes_counterexample() {
        let bad = GOOD.replace("no n: N | n in n.^next", "some univ || no univ");
        let r = AnalyzerReport::for_source(&bad);
        assert!(!r.all_ok());
        assert_eq!(r.num_failing(), 1);
        let rendered = r.to_string();
        assert!(rendered.contains("[FAIL]"));
        assert!(rendered.contains("counterexample"));
        assert!(
            rendered.contains("next ="),
            "witness should be rendered: {rendered}"
        );
    }

    #[test]
    fn unparsable_source_reports_parse_error() {
        let r = AnalyzerReport::for_source("sig {");
        assert!(!r.well_formed);
        assert!(!r.all_ok());
        assert!(r.to_string().contains("could not parse"));
    }

    #[test]
    fn run_expect_one_that_is_unsat_reports_failure() {
        let src = "sig A {} fact { no A } pred p { some A } run p for 3 expect 1";
        let r = AnalyzerReport::for_source(src);
        assert_eq!(r.num_failing(), 1);
        assert_eq!(r.commands[0].status, CommandStatus::UnexpectedUnsat);
    }

    #[test]
    fn serde_roundtrip() {
        let r = AnalyzerReport::for_source(GOOD);
        let json = serde_json::to_string(&r).unwrap();
        let back: AnalyzerReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
