//! The shared memoizing oracle service.
//!
//! Every repair technique in the study asks the same questions — "does this
//! candidate satisfy its command oracle?", "which commands fail?", "give me
//! counterexamples" — and candidate populations overlap heavily: mutation
//! engines regenerate the same mutants across techniques and rounds, and
//! ICEBAR/Multi-Round revisit earlier candidates. The [`Oracle`] memoizes
//! every [`Analyzer`] query behind a thread-safe sharded table keyed by the
//! *content fingerprint* of the specification — the 128-bit canonical
//! Merkle hash of [`mualloy_syntax::hash`], which is span-insensitive and
//! agrees with print-equality — (plus the command / assertion / formula and
//! scope for the per-command queries), so a question is solved at most once
//! per process. Callers that already know a candidate's fingerprint (e.g.
//! from an incremental [`mualloy_syntax::SpecHasher`] rehash) pass it to
//! the `*_keyed` variants and skip the hash walk entirely.
//!
//! Results are cached including errors: an `Err` answer is as deterministic
//! as an `Ok` one. Ground evaluations ([`Oracle::evaluate`]) are pass-through
//! — they never touch the solver and are cheaper than a table probe.
//!
//! A disabled oracle ([`Oracle::disabled`]) answers every query by solving
//! afresh; the study's correctness gate asserts that cache-enabled and
//! cache-disabled runs produce byte-identical results.
//!
//! Two further layers sit on the memo table:
//!
//! - **Singleflight.** Concurrent identical queries (daemon worker threads,
//!   portfolio entrants racing the same candidate) collapse onto one
//!   in-flight solve: the first caller becomes the leader, everyone else
//!   blocks until the leader memoizes, then re-probes the table and hits.
//!   Duplicate-while-in-flight callers are counted in
//!   [`OracleCacheStats::collapsed`].
//! - **Persistent tier.** An attached [`VerdictStore`]
//!   ([`Oracle::attach_persist`]) is probed on an in-memory verdict miss
//!   and fed every freshly computed verdict, so a restarted process boots
//!   warm. Persist hits count as cache hits (plus
//!   [`OracleCacheStats::persist_hits`]) and are memoized back into the
//!   table with zeroed solver counters — the solve happened in a previous
//!   process life.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

use mualloy_relational::Instance;
use mualloy_sat::{stats as sat_stats, SolverStats};
use mualloy_syntax::ast::{Command, Formula, Spec};
use mualloy_syntax::{spec_fingerprint, Fingerprint};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use specrepair_trace::{Phase, SpanGuard};

use crate::analyzer::{Analyzer, CommandOutcome};
use crate::error::AnalyzerError;
use crate::incremental::{IncrementalEngine, IncrementalStats};
use crate::persist::VerdictStore;

/// Number of independently-locked shards; a power of two so the fingerprint
/// maps to a shard with a mask.
const SHARDS: usize = 16;

/// A memoized answer together with the SAT solver statistics of the solve
/// that originally computed it, so a cache hit can report the same
/// counters the miss did (the answer *is* that solve's answer).
#[derive(Debug, Clone)]
struct Memo<T> {
    value: T,
    solver: SolverStats,
}

/// A memoized instance enumeration (counterexamples or satisfying
/// instances), as stored in a [`SpecEntry`].
type InstancesMemo = Memo<Result<Vec<Instance>, AnalyzerError>>;

/// Memoized answers for one canonical specification.
#[derive(Debug, Default)]
struct SpecEntry {
    /// Outcome of [`Analyzer::execute_all`] — `satisfies_oracle` and
    /// `failing_commands` are derived views of this single answer.
    execute_all: Option<Memo<Result<Vec<CommandOutcome>, AnalyzerError>>>,
    /// Boolean oracle verdict computed by the incremental engine. Only
    /// populated on the incremental path; the cold path derives the verdict
    /// from `execute_all` (which is probed first and is never shadowed).
    verdict: Option<Memo<bool>>,
    /// Per-command outcomes, for commands not covered by `execute_all`
    /// (e.g. localization re-running one command on a relaxed spec).
    commands: HashMap<Command, Memo<Result<CommandOutcome, AnalyzerError>>>,
    /// `check_assert` outcomes keyed by (assertion, scope).
    asserts: HashMap<(String, u32), Memo<Result<CommandOutcome, AnalyzerError>>>,
    /// Counterexample enumerations keyed by (assertion, scope, limit).
    counterexamples: HashMap<(String, u32, usize), InstancesMemo>,
    /// Instance enumerations keyed by (formula, scope, limit).
    enumerations: HashMap<(Formula, u32, usize), InstancesMemo>,
}

/// Tags an `oracle.*` query span with its cache verdict and the solver
/// counters of the (original) solve — identical on hit and miss.
fn tag_query(span: &SpanGuard, hit: bool, solver: &SolverStats) {
    if !span.is_active() {
        return;
    }
    span.attr_bool("hit", hit);
    span.attr_u64("solves", solver.solves);
    span.attr_u64("conflicts", solver.conflicts);
    span.attr_u64("decisions", solver.decisions);
    span.attr_u64("propagations", solver.propagations);
    span.attr_u64("restarts", solver.restarts);
    span.attr_u64("learned_clauses", solver.learned_clauses);
}

/// One independently-locked shard of the memo table: the entries plus the
/// FIFO insertion order used for eviction when a capacity is configured.
#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<Fingerprint, SpecEntry>,
    /// Spec keys in insertion order; oldest specs are evicted first. Only
    /// maintained when the table is bounded.
    order: VecDeque<Fingerprint>,
}

/// A point-in-time snapshot of the oracle's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OracleCacheStats {
    /// Queries answered from the memo table.
    pub hits: u64,
    /// Queries that had to solve (or re-solve, when disabled).
    pub misses: u64,
    /// Underlying analyzer invocations actually executed.
    pub solver_invocations: u64,
    /// Queries whose answer was an analyzer error (counted once per
    /// *computed* error; cached error replays count as hits).
    pub errors: u64,
    /// Memoized spec entries dropped to honor the per-shard capacity
    /// (always 0 for the default unbounded table).
    pub evictions: u64,
    /// Verdict queries answered by the persistent disk tier (a subset of
    /// `hits`: the solve happened in a previous process life).
    pub persist_hits: u64,
    /// Queries that arrived while an identical solve was already in flight
    /// and blocked on its leader instead of re-solving (singleflight).
    pub collapsed: u64,
}

impl OracleCacheStats {
    /// Fraction of queries answered from the cache (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates another snapshot into this one.
    pub fn absorb(&mut self, other: &OracleCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.solver_invocations += other.solver_invocations;
        self.errors += other.errors;
        self.evictions += other.evictions;
        self.persist_hits += other.persist_hits;
        self.collapsed += other.collapsed;
    }

    /// The telemetry `oracle_cache` section for this snapshot.
    pub fn section(&self, memoized_specs: usize) -> specrepair_telemetry::OracleCacheSection {
        specrepair_telemetry::OracleCacheSection {
            hits: self.hits,
            misses: self.misses,
            solver_invocations: self.solver_invocations,
            errors: self.errors,
            evictions: self.evictions,
            hit_rate: self.hit_rate(),
            memoized_specs: memoized_specs as u64,
            persist_hits: self.persist_hits,
            collapsed: self.collapsed,
        }
    }
}

/// A query kind discriminant for singleflight keys: `execute_all` and the
/// boolean verdict are distinct solves and must not block one another.
const FLIGHT_EXECUTE_ALL: u8 = 0;
const FLIGHT_VERDICT: u8 = 1;

/// The in-flight solve registry behind singleflight collapsing. `std::sync`
/// because waiting needs a [`Condvar`] (the vendored `parking_lot` has
/// none); poisoning is absorbed — a leader that panicked mid-solve just
/// releases its slot.
#[derive(Default)]
struct Inflight {
    set: StdMutex<HashSet<(u128, u8)>>,
    cond: Condvar,
}

/// RAII leadership of one in-flight solve: dropping (normally or by panic
/// unwind) releases the slot and wakes every waiter.
struct FlightGuard<'a> {
    oracle: &'a Oracle,
    key: (u128, u8),
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        let mut set = self
            .oracle
            .inflight
            .set
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        set.remove(&self.key);
        self.oracle.inflight.cond.notify_all();
    }
}

/// The shared memoizing oracle service. Cheap to share behind an `Arc`;
/// all methods take `&self` and are safe to call from rayon workers.
pub struct Oracle {
    enabled: bool,
    /// Per-shard cap on memoized spec entries; `None` = unbounded (the
    /// default, and what one-shot study runs use). Long-running services
    /// bound the table so it cannot grow without limit.
    shard_capacity: Option<usize>,
    shards: Vec<Mutex<Shard>>,
    /// Whether boolean verdict queries route through the incremental
    /// engine (default on; `--no-incremental` flips it off at run start).
    incremental: AtomicBool,
    engine: IncrementalEngine,
    /// The attached persistent verdict tier, if any (`attach_persist`).
    persist: parking_lot::RwLock<Option<Arc<dyn VerdictStore>>>,
    /// In-flight solve registry for singleflight collapsing.
    inflight: Inflight,
    hits: AtomicU64,
    misses: AtomicU64,
    solver_invocations: AtomicU64,
    errors: AtomicU64,
    evictions: AtomicU64,
    persist_hits: AtomicU64,
    collapsed: AtomicU64,
}

impl Default for Oracle {
    fn default() -> Oracle {
        Oracle::new()
    }
}

impl std::fmt::Debug for Oracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("Oracle")
            .field("enabled", &self.enabled)
            .field("stats", &stats)
            .finish()
    }
}

impl Oracle {
    /// A fresh memoizing oracle.
    pub fn new() -> Oracle {
        Oracle::with_enabled(true)
    }

    /// A pass-through oracle: every query solves afresh. Used as the
    /// control arm of the cache-on/cache-off equivalence gate.
    pub fn disabled() -> Oracle {
        Oracle::with_enabled(false)
    }

    /// A memoizing oracle whose table is bounded at `per_shard` spec
    /// entries per shard (clamped to ≥ 1; total capacity ≈ `16 × per_shard`
    /// specs). When a shard fills up, its oldest entries are evicted FIFO
    /// and counted in [`OracleCacheStats::evictions`]. Use this for
    /// long-running processes (the `specrepaird` daemon) where an unbounded
    /// memo table is a slow leak.
    pub fn bounded(per_shard: usize) -> Oracle {
        let mut oracle = Oracle::with_enabled(true);
        oracle.shard_capacity = Some(per_shard.max(1));
        oracle
    }

    fn with_enabled(enabled: bool) -> Oracle {
        Oracle {
            enabled,
            shard_capacity: None,
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            incremental: AtomicBool::new(true),
            engine: IncrementalEngine::new(),
            persist: parking_lot::RwLock::new(None),
            inflight: Inflight::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            solver_invocations: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            persist_hits: AtomicU64::new(0),
            collapsed: AtomicU64::new(0),
        }
    }

    /// Whether memoization is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether boolean verdict queries route through the incremental
    /// engine.
    pub fn incremental_enabled(&self) -> bool {
        self.incremental.load(Ordering::Relaxed)
    }

    /// Turns the incremental engine off: every verdict query solves cold,
    /// exactly as before the engine existed. The `--no-incremental`
    /// escape hatch and the equivalence gate use this.
    pub fn disable_incremental(&self) {
        self.incremental.store(false, Ordering::Relaxed);
    }

    /// Snapshot of the incremental engine's counters.
    pub fn incremental_stats(&self) -> IncrementalStats {
        self.engine.stats()
    }

    /// The configured per-shard entry cap (`None` = unbounded).
    pub fn shard_capacity(&self) -> Option<usize> {
        self.shard_capacity
    }

    /// Snapshot of the hit/miss/solver counters.
    pub fn stats(&self) -> OracleCacheStats {
        OracleCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            solver_invocations: self.solver_invocations.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            persist_hits: self.persist_hits.load(Ordering::Relaxed),
            collapsed: self.collapsed.load(Ordering::Relaxed),
        }
    }

    /// Attaches a persistent verdict tier: probed after an in-memory
    /// verdict miss, fed every freshly computed verdict. Ignored on a
    /// disabled oracle (the cache-off control arm stays pure pass-through).
    pub fn attach_persist(&self, store: Arc<dyn VerdictStore>) {
        if self.enabled {
            *self.persist.write() = Some(store);
        }
    }

    /// Whether a persistent tier is attached.
    pub fn persist_attached(&self) -> bool {
        self.persist.read().is_some()
    }

    /// Number of spec entries currently memoized across all shards.
    pub fn memoized_specs(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// The canonical cache key of a specification: the 128-bit Merkle
    /// fingerprint of [`mualloy_syntax::hash`], which normalizes spans,
    /// node ids and whitespace provenance (hash-equal ⟺ print-equal).
    pub fn fingerprint(spec: &Spec) -> Fingerprint {
        spec_fingerprint(spec)
    }

    fn shard_of(&self, key: Fingerprint) -> &Mutex<Shard> {
        // The fingerprint is already a strong hash; its low bits pick the
        // shard directly.
        &self.shards[(key.0 as usize) & (SHARDS - 1)]
    }

    /// Stores a computed answer under `key`, evicting the shard's oldest
    /// spec entries when a capacity is configured.
    fn memoize(&self, shard: &Mutex<Shard>, key: Fingerprint, store: impl FnOnce(&mut SpecEntry)) {
        let mut guard = shard.lock();
        if self.shard_capacity.is_some() && !guard.entries.contains_key(&key) {
            guard.order.push_back(key);
        }
        store(guard.entries.entry(key).or_default());
        if let Some(cap) = self.shard_capacity {
            while guard.entries.len() > cap {
                let Some(oldest) = guard.order.pop_front() else {
                    break;
                };
                if guard.entries.remove(&oldest).is_some() {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    fn record<T>(&self, computed: Result<T, AnalyzerError>) -> Result<T, AnalyzerError> {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.solver_invocations.fetch_add(1, Ordering::Relaxed);
        if computed.is_err() {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        computed
    }

    fn hit<T>(&self, cached: T) -> T {
        self.hits.fetch_add(1, Ordering::Relaxed);
        cached
    }

    /// Joins the in-flight solve for `(key, kind)`. Returns `Some(guard)`
    /// when this caller is the leader (it must solve and memoize; dropping
    /// the guard wakes the waiters). Returns `None` after having waited for
    /// another leader to finish — the caller re-probes the memo table,
    /// which now holds the leader's answer (or, if the leader's entry was
    /// already evicted, the caller loops and becomes the next leader).
    fn flight_join(&self, key: Fingerprint, kind: u8) -> Option<FlightGuard<'_>> {
        let k = (key.0, kind);
        let mut set = self.inflight.set.lock().unwrap_or_else(|e| e.into_inner());
        if set.insert(k) {
            return Some(FlightGuard {
                oracle: self,
                key: k,
            });
        }
        self.collapsed.fetch_add(1, Ordering::Relaxed);
        while set.contains(&k) {
            set = self
                .inflight
                .cond
                .wait(set)
                .unwrap_or_else(|e| e.into_inner());
        }
        None
    }

    /// Probes the persistent tier for a verdict. On a hit the verdict is
    /// memoized back into the in-memory table (with zeroed solver counters:
    /// the solve happened in a previous process life) and counted as a
    /// cache hit plus a persist hit.
    fn persist_probe(&self, key: Fingerprint, span: &SpanGuard) -> Option<bool> {
        let store = self.persist.read().clone()?;
        let verdict = store.lookup(key)?;
        self.memoize(self.shard_of(key), key, |e| {
            if e.verdict.is_none() {
                e.verdict = Some(Memo {
                    value: verdict,
                    solver: SolverStats::default(),
                });
            }
        });
        self.persist_hits.fetch_add(1, Ordering::Relaxed);
        tag_query(span, true, &SolverStats::default());
        if span.is_active() {
            span.attr_bool("persist", true);
        }
        Some(self.hit(verdict))
    }

    /// Feeds a freshly computed verdict to the persistent tier (no-op when
    /// none is attached; the store absorbs its own I/O trouble).
    fn persist_record(&self, key: Fingerprint, verdict: bool) {
        if let Some(store) = self.persist.read().clone() {
            store.record(key, verdict);
        }
    }

    /// The memoized boolean verdict for `key`, answered from process
    /// memory only — the full `execute_all` answer when present (a cached
    /// error yields `None`: the verdict is genuinely unknown), otherwise
    /// the verdict-only line. Never consults the persistent tier and moves
    /// no counters: this is the read side of the shard `/verdict` API,
    /// where recursing into an attached remote tier would loop the
    /// cluster back onto itself.
    pub fn probe_verdict(&self, key: Fingerprint) -> Option<bool> {
        if !self.enabled {
            return None;
        }
        self.shard_of(key).lock().entries.get(&key).and_then(|e| {
            if let Some(memo) = &e.execute_all {
                return match &memo.value {
                    Ok(outcomes) => Some(outcomes.iter().all(CommandOutcome::matches_expectation)),
                    Err(_) => None,
                };
            }
            e.verdict.as_ref().map(|memo| memo.value)
        })
    }

    /// Memoizes an externally computed verdict for `key` (the write side
    /// of the shard `/verdict` API: a peer solved this fingerprint and is
    /// pooling the answer). Stored with zeroed solver counters, exactly
    /// like a persistent-tier hit; an existing memo is never overwritten —
    /// verdicts are deterministic, so first-writer-wins is also
    /// every-writer-agrees. No-op on a disabled oracle.
    pub fn inject_verdict(&self, key: Fingerprint, verdict: bool) {
        if !self.enabled {
            return;
        }
        self.memoize(self.shard_of(key), key, |e| {
            if e.verdict.is_none() {
                e.verdict = Some(Memo {
                    value: verdict,
                    solver: SolverStats::default(),
                });
            }
        });
    }

    /// Memoized [`Analyzer::execute_all`]: every command's outcome, in
    /// specification order.
    ///
    /// # Errors
    ///
    /// Fails (and caches the failure) when any command cannot be executed.
    pub fn execute_all(&self, spec: &Spec) -> Result<Vec<CommandOutcome>, AnalyzerError> {
        self.execute_all_with(spec, None)
    }

    /// [`Oracle::execute_all`] with a precomputed canonical fingerprint,
    /// skipping the hash walk. The caller guarantees
    /// `key == Oracle::fingerprint(spec)`.
    ///
    /// # Errors
    ///
    /// Fails (and caches the failure) when any command cannot be executed.
    pub fn execute_all_keyed(
        &self,
        spec: &Spec,
        key: Fingerprint,
    ) -> Result<Vec<CommandOutcome>, AnalyzerError> {
        self.execute_all_with(spec, Some(key))
    }

    fn execute_all_with(
        &self,
        spec: &Spec,
        key: Option<Fingerprint>,
    ) -> Result<Vec<CommandOutcome>, AnalyzerError> {
        let span = specrepair_trace::span("oracle.execute_all", Phase::OracleCache);
        if !self.enabled {
            let (computed, solver) =
                sat_stats::collect(|| Analyzer::new(spec.clone()).execute_all());
            tag_query(&span, false, &solver);
            return self.record(computed);
        }
        let key = key.unwrap_or_else(|| Oracle::fingerprint(spec));
        let shard = self.shard_of(key);
        // Singleflight: probe, and on a miss either become the leader or
        // wait for the current one and re-probe (the leader memoizes both
        // answers and errors, so waiters hit on the second pass).
        let _flight = loop {
            if let Some(cached) = shard
                .lock()
                .entries
                .get(&key)
                .and_then(|e| e.execute_all.clone())
            {
                tag_query(&span, true, &cached.solver);
                return self.hit(cached.value);
            }
            match self.flight_join(key, FLIGHT_EXECUTE_ALL) {
                Some(guard) => break guard,
                None => continue,
            }
        };
        let (computed, solver) = sat_stats::collect(|| Analyzer::new(spec.clone()).execute_all());
        tag_query(&span, false, &solver);
        let computed = self.record(computed);
        self.memoize(shard, key, |e| {
            e.execute_all = Some(Memo {
                value: computed.clone(),
                solver,
            });
        });
        computed
    }

    /// Memoized [`Analyzer::satisfies_oracle`]: whether every command's
    /// outcome matches its `expect` annotation.
    ///
    /// With the incremental engine on (the default), the verdict is
    /// answered by persistent solve-under-assumptions sessions; the engine
    /// declines any candidate it cannot check (falling back to the cold
    /// [`Oracle::execute_all`] derivation), so verdicts and errors are
    /// identical either way.
    ///
    /// # Errors
    ///
    /// Fails when any command cannot be executed.
    pub fn satisfies_oracle(&self, spec: &Spec) -> Result<bool, AnalyzerError> {
        self.satisfies_oracle_with(spec, None)
    }

    /// [`Oracle::satisfies_oracle`] with a precomputed canonical
    /// fingerprint, skipping the hash walk.
    ///
    /// # Errors
    ///
    /// Fails when any command cannot be executed.
    pub fn satisfies_oracle_keyed(
        &self,
        spec: &Spec,
        key: Fingerprint,
    ) -> Result<bool, AnalyzerError> {
        self.satisfies_oracle_with(spec, Some(key))
    }

    fn satisfies_oracle_with(
        &self,
        spec: &Spec,
        key: Option<Fingerprint>,
    ) -> Result<bool, AnalyzerError> {
        fn all_match(outcomes: &[CommandOutcome]) -> bool {
            outcomes.iter().all(CommandOutcome::matches_expectation)
        }
        if !self.incremental_enabled() {
            if self.enabled {
                let key = key.unwrap_or_else(|| Oracle::fingerprint(spec));
                // A memoized full answer trumps the persisted verdict line
                // (it may be a cached error); only probe disk without one.
                let has_full = self
                    .shard_of(key)
                    .lock()
                    .entries
                    .get(&key)
                    .is_some_and(|e| e.execute_all.is_some());
                if !has_full {
                    let span =
                        specrepair_trace::span("oracle.satisfies_persist", Phase::OracleCache);
                    if let Some(verdict) = self.persist_probe(key, &span) {
                        return Ok(verdict);
                    }
                }
                let verdict = all_match(&self.execute_all_with(spec, Some(key))?);
                self.persist_record(key, verdict);
                return Ok(verdict);
            }
            return Ok(all_match(&self.execute_all_with(spec, key)?));
        }
        let span = specrepair_trace::span("oracle.satisfies_incremental", Phase::OracleCache);
        let key = if self.enabled {
            Some(key.unwrap_or_else(|| Oracle::fingerprint(spec)))
        } else {
            None
        };
        // Probe → persist tier → singleflight: a waiter woken by its leader
        // loops back to the probe and hits the freshly memoized answer.
        let _flight = if let Some(key) = key {
            loop {
                // Probe `execute_all` first: a full answer (including a
                // cached error) always trumps the verdict-only line.
                let cached = self.shard_of(key).lock().entries.get(&key).and_then(|e| {
                    if let Some(m) = &e.execute_all {
                        let verdict = match &m.value {
                            Ok(outcomes) => Ok(all_match(outcomes)),
                            Err(err) => Err(err.clone()),
                        };
                        Some((verdict, m.solver))
                    } else {
                        e.verdict.as_ref().map(|m| (Ok(m.value), m.solver))
                    }
                });
                if let Some((value, solver)) = cached {
                    tag_query(&span, true, &solver);
                    return self.hit(value);
                }
                if let Some(verdict) = self.persist_probe(key, &span) {
                    return Ok(verdict);
                }
                match self.flight_join(key, FLIGHT_VERDICT) {
                    Some(guard) => break Some(guard),
                    None => continue,
                }
            }
        } else {
            None
        };
        let (computed, solver) = sat_stats::collect(|| self.engine.satisfies_oracle(spec));
        let Some(verdict) = computed else {
            // The engine declined; the cold path owns the answer (and the
            // caching, counters and spans that come with it).
            let verdict = all_match(&self.execute_all_with(spec, key)?);
            if let Some(key) = key {
                self.persist_record(key, verdict);
            }
            return Ok(verdict);
        };
        tag_query(&span, false, &solver);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.solver_invocations.fetch_add(1, Ordering::Relaxed);
        if let Some(key) = key {
            self.memoize(self.shard_of(key), key, |e| {
                e.verdict = Some(Memo {
                    value: verdict,
                    solver,
                });
            });
            self.persist_record(key, verdict);
        }
        Ok(verdict)
    }

    /// Memoized [`Analyzer::failing_commands`]: the commands whose outcomes
    /// contradict their annotations. Derived from [`Oracle::execute_all`].
    ///
    /// # Errors
    ///
    /// Fails when any command cannot be executed.
    pub fn failing_commands(&self, spec: &Spec) -> Result<Vec<CommandOutcome>, AnalyzerError> {
        Ok(self
            .execute_all(spec)?
            .into_iter()
            .filter(|o| !o.matches_expectation())
            .collect())
    }

    /// [`Oracle::failing_commands`] with a precomputed canonical
    /// fingerprint, skipping the hash walk.
    ///
    /// # Errors
    ///
    /// Fails when any command cannot be executed.
    pub fn failing_commands_keyed(
        &self,
        spec: &Spec,
        key: Fingerprint,
    ) -> Result<Vec<CommandOutcome>, AnalyzerError> {
        Ok(self
            .execute_all_keyed(spec, key)?
            .into_iter()
            .filter(|o| !o.matches_expectation())
            .collect())
    }

    /// Memoized [`Analyzer::run_command`].
    ///
    /// # Errors
    ///
    /// Fails on unknown targets or translation errors.
    pub fn run_command(&self, spec: &Spec, cmd: &Command) -> Result<CommandOutcome, AnalyzerError> {
        let span = specrepair_trace::span("oracle.run_command", Phase::OracleCache);
        if !self.enabled {
            let (computed, solver) =
                sat_stats::collect(|| Analyzer::new(spec.clone()).run_command(cmd));
            tag_query(&span, false, &solver);
            return self.record(computed);
        }
        let key = Oracle::fingerprint(spec);
        let shard = self.shard_of(key);
        if let Some(cached) = shard
            .lock()
            .entries
            .get(&key)
            .and_then(|e| e.commands.get(cmd).cloned())
        {
            tag_query(&span, true, &cached.solver);
            return self.hit(cached.value);
        }
        let (computed, solver) =
            sat_stats::collect(|| Analyzer::new(spec.clone()).run_command(cmd));
        tag_query(&span, false, &solver);
        let computed = self.record(computed);
        self.memoize(shard, key, |e| {
            e.commands.insert(
                cmd.clone(),
                Memo {
                    value: computed.clone(),
                    solver,
                },
            );
        });
        computed
    }

    /// Memoized [`Analyzer::check_assert`]: searches for a counterexample
    /// to the named assertion at the given scope.
    ///
    /// # Errors
    ///
    /// Fails when the assertion is unknown or translation fails.
    pub fn check_assert(
        &self,
        spec: &Spec,
        name: &str,
        scope: u32,
    ) -> Result<CommandOutcome, AnalyzerError> {
        let span = specrepair_trace::span("oracle.check_assert", Phase::OracleCache);
        if !self.enabled {
            let (computed, solver) =
                sat_stats::collect(|| Analyzer::new(spec.clone()).check_assert(name, scope));
            tag_query(&span, false, &solver);
            return self.record(computed);
        }
        let key = Oracle::fingerprint(spec);
        let subkey = (name.to_string(), scope);
        let shard = self.shard_of(key);
        if let Some(cached) = shard
            .lock()
            .entries
            .get(&key)
            .and_then(|e| e.asserts.get(&subkey).cloned())
        {
            tag_query(&span, true, &cached.solver);
            return self.hit(cached.value);
        }
        let (computed, solver) =
            sat_stats::collect(|| Analyzer::new(spec.clone()).check_assert(name, scope));
        tag_query(&span, false, &solver);
        let computed = self.record(computed);
        self.memoize(shard, key, |e| {
            e.asserts.insert(
                subkey,
                Memo {
                    value: computed.clone(),
                    solver,
                },
            );
        });
        computed
    }

    /// Memoized [`Analyzer::counterexamples`]: up to `limit` distinct
    /// counterexamples to the named assertion.
    ///
    /// # Errors
    ///
    /// Fails when the assertion is unknown or translation fails.
    pub fn counterexamples(
        &self,
        spec: &Spec,
        name: &str,
        scope: u32,
        limit: usize,
    ) -> Result<Vec<Instance>, AnalyzerError> {
        let span = specrepair_trace::span("oracle.counterexamples", Phase::OracleCache);
        if !self.enabled {
            let (computed, solver) = sat_stats::collect(|| {
                Analyzer::new(spec.clone()).counterexamples(name, scope, limit)
            });
            tag_query(&span, false, &solver);
            return self.record(computed);
        }
        let key = Oracle::fingerprint(spec);
        let subkey = (name.to_string(), scope, limit);
        let shard = self.shard_of(key);
        if let Some(cached) = shard
            .lock()
            .entries
            .get(&key)
            .and_then(|e| e.counterexamples.get(&subkey).cloned())
        {
            tag_query(&span, true, &cached.solver);
            return self.hit(cached.value);
        }
        let (computed, solver) =
            sat_stats::collect(|| Analyzer::new(spec.clone()).counterexamples(name, scope, limit));
        tag_query(&span, false, &solver);
        let computed = self.record(computed);
        self.memoize(shard, key, |e| {
            e.counterexamples.insert(
                subkey,
                Memo {
                    value: computed.clone(),
                    solver,
                },
            );
        });
        computed
    }

    /// Memoized [`Analyzer::enumerate`]: up to `limit` distinct instances
    /// of `facts && declarations && formula` at the given scope.
    ///
    /// # Errors
    ///
    /// Fails on elaboration or translation errors.
    pub fn enumerate(
        &self,
        spec: &Spec,
        formula: &Formula,
        scope: u32,
        limit: usize,
    ) -> Result<Vec<Instance>, AnalyzerError> {
        let span = specrepair_trace::span("oracle.enumerate", Phase::OracleCache);
        if !self.enabled {
            let (computed, solver) =
                sat_stats::collect(|| Analyzer::new(spec.clone()).enumerate(formula, scope, limit));
            tag_query(&span, false, &solver);
            return self.record(computed);
        }
        let key = Oracle::fingerprint(spec);
        let subkey = (formula.clone(), scope, limit);
        let shard = self.shard_of(key);
        if let Some(cached) = shard
            .lock()
            .entries
            .get(&key)
            .and_then(|e| e.enumerations.get(&subkey).cloned())
        {
            tag_query(&span, true, &cached.solver);
            return self.hit(cached.value);
        }
        let (computed, solver) =
            sat_stats::collect(|| Analyzer::new(spec.clone()).enumerate(formula, scope, limit));
        tag_query(&span, false, &solver);
        let computed = self.record(computed);
        self.memoize(shard, key, |e| {
            e.enumerations.insert(
                subkey,
                Memo {
                    value: computed.clone(),
                    solver,
                },
            );
        });
        computed
    }

    /// Ground evaluation of a formula against a concrete instance —
    /// pass-through (no solving happens, so nothing is worth caching).
    ///
    /// # Errors
    ///
    /// Fails on elaboration or evaluation errors.
    pub fn evaluate(
        &self,
        spec: &Spec,
        instance: &Instance,
        formula: &Formula,
    ) -> Result<bool, AnalyzerError> {
        Analyzer::new(spec.clone()).evaluate(instance, formula)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_syntax::{parse_spec, print_spec};

    const GOOD: &str = "sig N { next: lone N } \
        fact Acyclic { no n: N | n in n.^next } \
        pred somePath { some n: N | some n.next } \
        assert NoSelfLoop { all n: N | n not in n.next } \
        run somePath for 3 expect 1 \
        check NoSelfLoop for 3 expect 0";

    const BAD: &str = "sig N { next: lone N } \
        fact Broken { some N || no N } \
        assert NoSelf { all n: N | n not in n.next } \
        check NoSelf for 3 expect 0";

    #[test]
    fn agrees_with_fresh_analyzer() {
        let oracle = Oracle::new();
        for src in [GOOD, BAD] {
            let spec = parse_spec(src).unwrap();
            assert_eq!(
                oracle.satisfies_oracle(&spec).unwrap(),
                Analyzer::new(spec.clone()).satisfies_oracle().unwrap()
            );
            assert_eq!(
                oracle.failing_commands(&spec).unwrap(),
                Analyzer::new(spec.clone()).failing_commands().unwrap()
            );
        }
    }

    #[test]
    fn incremental_and_cold_verdicts_agree() {
        for src in [GOOD, BAD] {
            let spec = parse_spec(src).unwrap();
            let incremental = Oracle::new();
            assert!(incremental.incremental_enabled());
            let cold = Oracle::new();
            cold.disable_incremental();
            assert_eq!(
                incremental.satisfies_oracle(&spec).unwrap(),
                cold.satisfies_oracle(&spec).unwrap()
            );
            assert!(incremental.incremental_stats().checks > 0);
            assert_eq!(cold.incremental_stats().checks, 0);
        }
    }

    #[test]
    fn second_query_is_a_hit() {
        let oracle = Oracle::new();
        let spec = parse_spec(GOOD).unwrap();
        assert!(oracle.satisfies_oracle(&spec).unwrap());
        let before = oracle.stats();
        assert_eq!(before.hits, 0);
        assert_eq!(before.misses, 1);
        assert!(oracle.satisfies_oracle(&spec).unwrap());
        let after = oracle.stats();
        assert_eq!(after.hits, 1);
        assert_eq!(after.misses, 1);
        assert_eq!(after.solver_invocations, 1);
    }

    #[test]
    fn fingerprint_normalizes_spans() {
        // Same text parsed twice (and re-printed) fingerprints identically.
        let a = parse_spec(GOOD).unwrap();
        let b = parse_spec(&print_spec(&a)).unwrap();
        assert_eq!(Oracle::fingerprint(&a), Oracle::fingerprint(&b));
        let oracle = Oracle::new();
        oracle.satisfies_oracle(&a).unwrap();
        oracle.satisfies_oracle(&b).unwrap();
        assert_eq!(oracle.stats().hits, 1);
    }

    #[test]
    fn disabled_oracle_never_hits_but_still_answers() {
        let oracle = Oracle::disabled();
        let spec = parse_spec(BAD).unwrap();
        assert!(!oracle.satisfies_oracle(&spec).unwrap());
        assert!(!oracle.satisfies_oracle(&spec).unwrap());
        let stats = oracle.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.solver_invocations, 2);
    }

    #[test]
    fn errors_are_counted_and_cached() {
        // An unknown run target errors; the error answer is memoized.
        let spec = parse_spec("sig A {} run ghost for 3 expect 1");
        let Ok(spec) = spec else {
            return; // parser rejects unknown targets up front: nothing to do
        };
        let oracle = Oracle::new();
        assert!(oracle.satisfies_oracle(&spec).is_err());
        assert!(oracle.satisfies_oracle(&spec).is_err());
        let stats = oracle.stats();
        assert_eq!(stats.errors, 1, "computed once");
        assert_eq!(stats.hits, 1, "replayed from cache once");
    }

    #[test]
    fn per_command_queries_are_cached() {
        let spec = parse_spec(GOOD).unwrap();
        let oracle = Oracle::new();
        let a = oracle.check_assert(&spec, "NoSelfLoop", 3).unwrap();
        let b = oracle.check_assert(&spec, "NoSelfLoop", 3).unwrap();
        assert_eq!(a, b);
        let c1 = oracle.counterexamples(&spec, "NoSelfLoop", 3, 2).unwrap();
        let c2 = oracle.counterexamples(&spec, "NoSelfLoop", 3, 2).unwrap();
        assert_eq!(c1, c2);
        let e1 = oracle.enumerate(&spec, &Formula::truth(), 3, 2).unwrap();
        let e2 = oracle.enumerate(&spec, &Formula::truth(), 3, 2).unwrap();
        assert_eq!(e1, e2);
        assert_eq!(oracle.stats().hits, 3);
    }

    #[test]
    fn probe_and_inject_verdict_round_the_memo_table() {
        let oracle = Oracle::new();
        let spec = parse_spec(GOOD).unwrap();
        let key = Oracle::fingerprint(&spec);
        // Unknown fingerprints probe to None without touching counters.
        assert_eq!(oracle.probe_verdict(key), None);
        assert_eq!(oracle.stats(), OracleCacheStats::default());
        // A solved verdict probes back out.
        assert!(oracle.satisfies_oracle(&spec).unwrap());
        assert_eq!(oracle.probe_verdict(key), Some(true));
        // An injected (peer-pooled) verdict is served without a solve …
        let peer_key = Oracle::fingerprint(&parse_spec(BAD).unwrap());
        oracle.inject_verdict(peer_key, false);
        assert_eq!(oracle.probe_verdict(peer_key), Some(false));
        let solves = oracle.stats().solver_invocations;
        assert!(!oracle.satisfies_oracle(&parse_spec(BAD).unwrap()).unwrap());
        assert_eq!(oracle.stats().solver_invocations, solves, "memo hit");
        // … and injection never overwrites an existing memo.
        oracle.inject_verdict(key, false);
        assert_eq!(oracle.probe_verdict(key), Some(true));
        // A disabled oracle ignores both sides.
        let disabled = Oracle::disabled();
        disabled.inject_verdict(key, true);
        assert_eq!(disabled.probe_verdict(key), None);
    }

    #[test]
    fn stats_absorb_and_hit_rate() {
        let mut total = OracleCacheStats::default();
        assert_eq!(total.hit_rate(), 0.0);
        total.absorb(&OracleCacheStats {
            hits: 3,
            misses: 1,
            solver_invocations: 1,
            errors: 0,
            evictions: 0,
            persist_hits: 2,
            collapsed: 0,
        });
        total.absorb(&OracleCacheStats {
            hits: 1,
            misses: 3,
            solver_invocations: 3,
            errors: 1,
            evictions: 2,
            persist_hits: 0,
            collapsed: 5,
        });
        assert_eq!(total.hits, 4);
        assert_eq!(total.misses, 4);
        assert_eq!(total.hit_rate(), 0.5);
        assert_eq!(total.errors, 1);
        assert_eq!(total.evictions, 2);
        assert_eq!(total.persist_hits, 2);
        assert_eq!(total.collapsed, 5);
    }

    /// A toy in-memory [`VerdictStore`] for unit tests.
    #[derive(Default)]
    struct MapStore {
        map: Mutex<HashMap<Fingerprint, bool>>,
        lookups: AtomicU64,
        records: AtomicU64,
    }

    impl VerdictStore for MapStore {
        fn lookup(&self, key: Fingerprint) -> Option<bool> {
            self.lookups.fetch_add(1, Ordering::Relaxed);
            self.map.lock().get(&key).copied()
        }

        fn record(&self, key: Fingerprint, verdict: bool) {
            self.records.fetch_add(1, Ordering::Relaxed);
            self.map.lock().insert(key, verdict);
        }
    }

    #[test]
    fn persist_tier_serves_a_warm_boot() {
        let store = Arc::new(MapStore::default());
        // First process life: solve, which feeds the store.
        let first = Oracle::new();
        first.attach_persist(store.clone());
        let spec = parse_spec(GOOD).unwrap();
        assert!(first.satisfies_oracle(&spec).unwrap());
        assert_eq!(store.records.load(Ordering::Relaxed), 1);
        assert_eq!(first.stats().persist_hits, 0, "a fresh solve is no hit");
        // Second process life: empty memo, warm store.
        let second = Oracle::new();
        second.attach_persist(store.clone());
        assert!(second.satisfies_oracle(&spec).unwrap());
        let stats = second.stats();
        assert_eq!(stats.persist_hits, 1);
        assert_eq!(stats.hits, 1, "persist hits count as cache hits");
        assert_eq!(stats.solver_invocations, 0, "no solve on a warm boot");
        // The warm verdict was memoized: the next query never touches disk.
        let lookups = store.lookups.load(Ordering::Relaxed);
        assert!(second.satisfies_oracle(&spec).unwrap());
        assert_eq!(store.lookups.load(Ordering::Relaxed), lookups);
        assert_eq!(second.stats().hits, 2);
    }

    #[test]
    fn persist_tier_ignored_on_disabled_oracle() {
        let store = Arc::new(MapStore::default());
        store.record(Oracle::fingerprint(&parse_spec(GOOD).unwrap()), true);
        let oracle = Oracle::disabled();
        oracle.attach_persist(store.clone());
        assert!(!oracle.persist_attached());
        let spec = parse_spec(GOOD).unwrap();
        assert!(oracle.satisfies_oracle(&spec).unwrap());
        assert_eq!(oracle.stats().persist_hits, 0);
        assert_eq!(oracle.stats().solver_invocations, 1, "solved afresh");
    }

    #[test]
    fn persist_tier_serves_the_cold_path_too() {
        let store = Arc::new(MapStore::default());
        let first = Oracle::new();
        first.disable_incremental();
        first.attach_persist(store.clone());
        let spec = parse_spec(GOOD).unwrap();
        assert!(first.satisfies_oracle(&spec).unwrap());
        assert_eq!(store.records.load(Ordering::Relaxed), 1);
        let second = Oracle::new();
        second.disable_incremental();
        second.attach_persist(store);
        assert!(second.satisfies_oracle(&spec).unwrap());
        let stats = second.stats();
        assert_eq!(stats.persist_hits, 1);
        assert_eq!(stats.solver_invocations, 0);
    }

    #[test]
    fn singleflight_collapses_concurrent_identical_solves() {
        use std::sync::Barrier;
        const THREADS: usize = 8;
        let oracle = Arc::new(Oracle::new());
        let spec = Arc::new(parse_spec(GOOD).unwrap());
        let barrier = Arc::new(Barrier::new(THREADS));
        let verdicts: Vec<bool> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let oracle = oracle.clone();
                    let spec = spec.clone();
                    let barrier = barrier.clone();
                    s.spawn(move || {
                        barrier.wait();
                        oracle.satisfies_oracle(&spec).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(verdicts.iter().all(|&v| v), "identical verdicts");
        let stats = oracle.stats();
        assert_eq!(
            stats.solver_invocations, 1,
            "exactly one solve for {THREADS} concurrent identical queries"
        );
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits as usize, THREADS - 1, "everyone else hit");
        assert!(
            (stats.collapsed as usize) < THREADS,
            "collapsed bounded by the waiter count"
        );
    }

    #[test]
    fn unbounded_oracle_never_evicts() {
        let oracle = Oracle::new();
        assert_eq!(oracle.shard_capacity(), None);
        for src in [GOOD, BAD] {
            oracle.satisfies_oracle(&parse_spec(src).unwrap()).unwrap();
        }
        assert_eq!(oracle.stats().evictions, 0);
        assert_eq!(oracle.memoized_specs(), 2);
    }

    #[test]
    fn bounded_oracle_evicts_oldest_and_counts() {
        // Cap of 1 entry per shard: distinct specs hashing into the same
        // shard displace one another.
        let oracle = Oracle::bounded(1);
        assert_eq!(oracle.shard_capacity(), Some(1));
        // Generate enough distinct specs that at least two land in the same
        // shard (17 specs across 16 shards pigeonhole at least one pair).
        let specs: Vec<Spec> = (0..17)
            .map(|i| {
                parse_spec(&format!(
                    "sig A{i} {{}} pred p {{ some A{i} }} run p for 2 expect 1"
                ))
                .unwrap()
            })
            .collect();
        for spec in &specs {
            oracle.satisfies_oracle(spec).unwrap();
        }
        let stats = oracle.stats();
        assert!(
            stats.evictions > 0,
            "17 specs across 16 single-entry shards must evict"
        );
        assert!(oracle.memoized_specs() <= 16);
        // Evicted answers are recomputed, not wrong: re-asking stays correct.
        for spec in &specs {
            assert!(oracle.satisfies_oracle(spec).unwrap());
        }
    }

    #[test]
    fn cache_hit_span_replays_the_original_solver_stats() {
        // Process-global tracing: serialize against any other test that
        // toggles the collector, and filter drained spans by a cell id
        // nothing else uses.
        static TRACE_LOCK: Mutex<()> = Mutex::new(());
        let _guard = TRACE_LOCK.lock();
        const CELL: u64 = 0x5EED_CAFE_0001;

        let oracle = Oracle::new();
        let spec = parse_spec(GOOD).unwrap();
        specrepair_trace::set_enabled(true);
        {
            let _scope = specrepair_trace::cell_scope(CELL, 0, None);
            assert!(oracle.satisfies_oracle(&spec).unwrap());
            assert!(oracle.satisfies_oracle(&spec).unwrap());
        }
        specrepair_trace::set_enabled(false);
        let spans: Vec<_> = specrepair_trace::take_spans()
            .into_iter()
            .filter(|s| s.cell == CELL && s.name == "oracle.satisfies_incremental")
            .collect();
        assert_eq!(spans.len(), 2, "one miss, one hit");

        let hit_flag = |s: &specrepair_trace::SpanRecord| match s
            .attrs
            .iter()
            .find(|(k, _)| *k == "hit")
            .map(|(_, v)| v)
        {
            Some(specrepair_trace::AttrValue::Bool(b)) => *b,
            other => panic!("missing hit attr: {other:?}"),
        };
        let counter = |s: &specrepair_trace::SpanRecord, key: &str| match s
            .attrs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
        {
            Some(specrepair_trace::AttrValue::U64(n)) => *n,
            other => panic!("missing {key} attr: {other:?}"),
        };
        let miss = spans.iter().find(|s| !hit_flag(s)).expect("miss span");
        let hit = spans.iter().find(|s| hit_flag(s)).expect("hit span");
        assert!(counter(miss, "solves") >= 1, "the miss actually solved");
        for key in [
            "solves",
            "conflicts",
            "decisions",
            "propagations",
            "restarts",
            "learned_clauses",
        ] {
            assert_eq!(
                counter(hit, key),
                counter(miss, key),
                "hit must replay the original solve's {key}"
            );
        }
    }

    #[test]
    fn bounded_capacity_is_clamped_to_one() {
        let oracle = Oracle::bounded(0);
        assert_eq!(oracle.shard_capacity(), Some(1));
        let spec = parse_spec(GOOD).unwrap();
        oracle.satisfies_oracle(&spec).unwrap();
        // The single entry stays cached: the second query is a hit.
        oracle.satisfies_oracle(&spec).unwrap();
        assert_eq!(oracle.stats().hits, 1);
    }
}
