//! Equisatisfiability comparison: the machinery behind the REP metric.
//!
//! Following the paper (§III-D): *"It is computed using the Alloy Analyzer
//! to run each command in both the proposed fix and its corresponding ground
//! truth. For each command in the ground truth specification, results are
//! compared with those from the proposed fix. If any results differ, a REP
//! of 0 is assigned […]; if all results match, a REP of 1 is assigned."*

use mualloy_syntax::ast::{CommandKind, Spec};

use crate::analyzer::Analyzer;
use crate::error::AnalyzerError;

/// Per-command comparison detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandComparison {
    /// Rendering of the command (`check Safe for 3`).
    pub command: String,
    /// Satisfiability under the ground truth.
    pub truth_sat: bool,
    /// Satisfiability under the candidate, or `None` if the candidate could
    /// not execute the command (missing target, translation failure).
    pub candidate_sat: Option<bool>,
}

impl CommandComparison {
    /// Whether the candidate matched the ground truth on this command.
    pub fn matches(&self) -> bool {
        self.candidate_sat == Some(self.truth_sat)
    }
}

/// Result of an equisatisfiability comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquisatReport {
    /// Per-command details, in ground-truth command order.
    pub comparisons: Vec<CommandComparison>,
}

impl EquisatReport {
    /// REP: 1 when every command matches, 0 otherwise.
    pub fn rep(&self) -> u8 {
        u8::from(self.equisatisfiable())
    }

    /// Whether every ground-truth command matched.
    pub fn equisatisfiable(&self) -> bool {
        !self.comparisons.is_empty() && self.comparisons.iter().all(CommandComparison::matches)
    }

    /// The commands that disagreed.
    pub fn mismatches(&self) -> impl Iterator<Item = &CommandComparison> {
        self.comparisons.iter().filter(|c| !c.matches())
    }
}

/// Runs every ground-truth command on both specifications and compares the
/// satisfiability results.
///
/// Commands are matched by kind and target name; the ground truth's scope is
/// used on both sides so that a candidate cannot "win" by shrinking scopes.
///
/// # Errors
///
/// Fails only when the *ground truth* itself cannot execute a command —
/// candidate failures are recorded as mismatches, not errors.
pub fn compare(truth: &Spec, candidate: &Spec) -> Result<EquisatReport, AnalyzerError> {
    let truth_analyzer = Analyzer::new(truth.clone());
    let candidate_analyzer = Analyzer::new(candidate.clone());
    let mut comparisons = Vec::new();
    for cmd in &truth.commands {
        let truth_out = truth_analyzer.run_command(cmd)?;
        let candidate_sat = match &cmd.kind {
            CommandKind::Run(name) => candidate_analyzer
                .run_pred(name, cmd.scope)
                .ok()
                .map(|o| o.sat),
            CommandKind::Check(name) => candidate_analyzer
                .check_assert(name, cmd.scope)
                .ok()
                .map(|o| o.sat),
        };
        let verb = if cmd.is_check() { "check" } else { "run" };
        comparisons.push(CommandComparison {
            command: format!("{verb} {} for {}", cmd.target(), cmd.scope),
            truth_sat: truth_out.sat,
            candidate_sat,
        });
    }
    Ok(EquisatReport { comparisons })
}

/// Convenience wrapper: parses the candidate source and compares. Returns
/// REP 0 for unparsable candidates (as the paper's pipeline does).
///
/// # Errors
///
/// Fails only when the ground truth cannot execute its own commands.
pub fn rep_for_source(truth: &Spec, candidate_source: &str) -> Result<u8, AnalyzerError> {
    match mualloy_syntax::parse_spec(candidate_source) {
        Ok(candidate) => Ok(compare(truth, &candidate)?.rep()),
        Err(_) => Ok(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_syntax::parse_spec;

    const TRUTH: &str = "sig N { next: lone N } \
        fact { no n: N | n in n.^next } \
        pred hasEdge { some next } \
        assert NoSelf { all n: N | n not in n.next } \
        run hasEdge for 3 expect 1 \
        check NoSelf for 3 expect 0";

    #[test]
    fn identical_specs_are_equisatisfiable() {
        let t = parse_spec(TRUTH).unwrap();
        let report = compare(&t, &t).unwrap();
        assert_eq!(report.rep(), 1);
        assert!(report.mismatches().next().is_none());
    }

    #[test]
    fn semantically_equivalent_repair_scores_one() {
        let t = parse_spec(TRUTH).unwrap();
        // Different syntax, same meaning: all n | n !in n.^next.
        let c = parse_spec(&TRUTH.replace("no n: N | n in n.^next", "all n: N | n not in n.^next"))
            .unwrap();
        assert_eq!(compare(&t, &c).unwrap().rep(), 1);
    }

    #[test]
    fn broken_fact_scores_zero() {
        let t = parse_spec(TRUTH).unwrap();
        let c = parse_spec(&TRUTH.replace("no n: N | n in n.^next", "some N || no N")).unwrap();
        let report = compare(&t, &c).unwrap();
        assert_eq!(report.rep(), 0);
        // The check command disagrees: cycles allow self loops.
        assert!(report.mismatches().any(|m| m.command.contains("check")));
    }

    #[test]
    fn candidate_missing_target_scores_zero() {
        let t = parse_spec(TRUTH).unwrap();
        let c = parse_spec("sig N { next: lone N }").unwrap();
        let report = compare(&t, &c).unwrap();
        assert_eq!(report.rep(), 0);
        assert!(report.comparisons.iter().all(|c| c.candidate_sat.is_none()));
    }

    #[test]
    fn truth_without_commands_scores_zero() {
        let t = parse_spec("sig A {}").unwrap();
        let report = compare(&t, &t).unwrap();
        assert_eq!(report.rep(), 0, "no commands means nothing was verified");
    }

    #[test]
    fn unparsable_candidate_scores_zero() {
        let t = parse_spec(TRUTH).unwrap();
        assert_eq!(rep_for_source(&t, "sig {").unwrap(), 0);
        assert_eq!(rep_for_source(&t, TRUTH).unwrap(), 1);
    }
}
