//! Error type for analyses.

use mualloy_relational::TranslateError;
use mualloy_syntax::{CheckError, SyntaxError};
use std::error::Error;
use std::fmt;

/// An error raised while executing an analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzerError {
    /// The specification (or candidate text) failed to parse.
    Syntax(SyntaxError),
    /// The specification failed static checks.
    Check(CheckError),
    /// Translation or evaluation failed.
    Translate(TranslateError),
    /// The named command target does not exist.
    UnknownTarget(String),
}

impl fmt::Display for AnalyzerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzerError::Syntax(e) => write!(f, "{e}"),
            AnalyzerError::Check(e) => write!(f, "{e}"),
            AnalyzerError::Translate(e) => write!(f, "{e}"),
            AnalyzerError::UnknownTarget(n) => write!(f, "unknown command target `{n}`"),
        }
    }
}

impl Error for AnalyzerError {}

impl From<SyntaxError> for AnalyzerError {
    fn from(e: SyntaxError) -> Self {
        AnalyzerError::Syntax(e)
    }
}

impl From<CheckError> for AnalyzerError {
    fn from(e: CheckError) -> Self {
        AnalyzerError::Check(e)
    }
}

impl From<TranslateError> for AnalyzerError {
    fn from(e: TranslateError) -> Self {
        AnalyzerError::Translate(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_wrap_inner_messages() {
        let e: AnalyzerError = TranslateError::new("boom").into();
        assert!(e.to_string().contains("boom"));
        let e = AnalyzerError::UnknownTarget("p".into());
        assert!(e.to_string().contains("`p`"));
    }
}
