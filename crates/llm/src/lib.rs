//! # specrepair-llm
//!
//! The LLM-based repair pipelines of the study, built on a deterministic
//! synthetic language model (the GPT-4 substitute; see DESIGN.md §1):
//!
//! - [`SyntheticLm`]: seeded stochastic repair-proposal model whose
//!   capability knobs (hint fidelity, fix adoption, restyling, glitches)
//!   reproduce the mechanisms the paper attributes to GPT-4;
//! - [`SingleRound`]: the five zero-shot prompt settings
//!   (`Loc+Fix`, `Loc`, `Pass`, `None`, `Loc+Pass`);
//! - [`MultiRound`]: the dual-agent iterative loop with three feedback
//!   settings (`None`, `Generic`, `Auto`);
//! - [`transport`]: the [`LmTransport`] failure surface and the
//!   deterministic fault-injecting [`FaultyLm`] decorator;
//! - [`resilient`]: [`ResilientLm`] — bounded retries with deterministic
//!   backoff jitter, cancellation-aware sleeps and a per-technique circuit
//!   breaker, the stack both pipelines actually call through.
//!
//! Both pipelines implement [`specrepair_core::RepairTechnique`] and
//! [`specrepair_core::HintedRepair`], so the hybrid compositions of RQ3
//! apply unchanged.
//!
//! # Example
//!
//! ```
//! use specrepair_core::{RepairContext, RepairBudget, RepairTechnique};
//! use specrepair_llm::{MultiRound, FeedbackSetting};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ctx = RepairContext::from_source(
//!     "sig N { next: lone N } \
//!      fact Acyclic { some n: N | n in n.^next } \
//!      assert NoSelf { all n: N | n not in n.next } \
//!      check NoSelf for 3 expect 0",
//!     RepairBudget { max_candidates: 60, max_rounds: 4 },
//! )?;
//! let outcome = MultiRound::new(FeedbackSetting::None, 7).repair(&ctx);
//! assert!(outcome.candidate.is_some());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod model;
pub mod multi_round;
pub mod prompt;
pub mod resilient;
pub mod single_round;
pub mod transport;

pub use model::{Guidance, LmConfig, SyntheticLm};
pub use multi_round::MultiRound;
pub use prompt::{invert_fix_description, FeedbackSetting, ProblemHints, Prompt, PromptSetting};
pub use resilient::{BreakerConfig, CircuitBreaker, ResilientLm, RetryPolicy, TransportStats};
pub use single_round::SingleRound;
pub use transport::{FaultyLm, LmTransport, LmTransportError};

/// Builds the resilient transport stack a chaos run wants: the synthetic
/// model behind a [`FaultyLm`] decorator, retried with the near-zero-latency
/// [`RetryPolicy::snappy`] policy sized so that — when the plan's faults are
/// all transient — every scheduled fault burst is absorbed and the run's
/// outcomes are byte-identical to a fault-free run.
pub fn chaos_stack(plan: specrepair_faults::FaultPlan) -> ResilientLm {
    // Size the retry budget to outlast the longest fault burst the plan
    // schedules in a generous call window.
    let worst_burst = plan.max_consecutive_faults(4096);
    ResilientLm::over(FaultyLm::new(SyntheticLm::default(), plan))
        .with_policy(RetryPolicy::snappy().with_max_retries(worst_burst.max(4)))
}

/// Constructs the study's eight LLM-based techniques (five Single-Round
/// settings + three Multi-Round settings) with the given hints and seed.
pub fn default_suite(
    hints: ProblemHints,
    seed: u64,
) -> Vec<Box<dyn specrepair_core::RepairTechnique>> {
    let mut out: Vec<Box<dyn specrepair_core::RepairTechnique>> = Vec::new();
    for s in PromptSetting::ALL {
        out.push(Box::new(
            SingleRound::new(s, seed).with_hints(hints.clone()),
        ));
    }
    for f in FeedbackSetting::ALL {
        out.push(Box::new(MultiRound::new(f, seed)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eight_techniques_in_paper_order() {
        let suite = default_suite(ProblemHints::default(), 0);
        let names: Vec<&str> = suite.iter().map(|t| t.name()).collect();
        assert_eq!(
            names,
            vec![
                "Single-Round_Loc+Fix",
                "Single-Round_Loc",
                "Single-Round_Pass",
                "Single-Round_None",
                "Single-Round_Loc+Pass",
                "Multi-Round_None",
                "Multi-Round_Generic",
                "Multi-Round_Auto",
            ]
        );
    }
}
