//! The Multi-Round LLM repair approach (Alhanahnah et al.).
//!
//! A dual-agent loop: the *repair agent* (the synthetic model) proposes a
//! candidate; the analyzer validates it; on failure the *prompt agent*
//! prepares the next round's prompt at one of three feedback levels:
//!
//! - **No-feedback** — only "not fixed yet": the repair agent re-samples
//!   with full diversity;
//! - **Generic-feedback** — the templated analyzer report; the agent turns
//!   it into soft site weights (vocabulary overlap with the failing
//!   commands, exactly the signal a developer gleans from a Q&A answer);
//! - **Auto-feedback** — the prompt agent (another model call) distills the
//!   report into targeted guidance: sampling is *restricted* to the
//!   top-ranked suspicious sites.

use mualloy_analyzer::{AnalyzerReport, Oracle};
use mualloy_syntax::Span;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use specrepair_core::{
    localization::localize_with, HintedRepair, OutcomeReason, RepairContext, RepairOutcome,
    RepairTechnique,
};
use std::collections::HashSet;

use crate::model::Guidance;
use crate::prompt::{FeedbackSetting, ProblemHints, Prompt};
use crate::resilient::ResilientLm;
use crate::transport::LmTransportError;

/// The Multi-Round technique under one feedback setting.
#[derive(Debug, Clone)]
pub struct MultiRound {
    /// The active feedback setting.
    pub feedback: FeedbackSetting,
    /// Base random seed.
    pub seed: u64,
    /// The underlying model, behind the resilient transport stack.
    pub lm: ResilientLm,
}

impl MultiRound {
    /// Creates the technique.
    pub fn new(feedback: FeedbackSetting, seed: u64) -> MultiRound {
        MultiRound {
            feedback,
            seed,
            lm: ResilientLm::synthetic(),
        }
    }

    /// Replaces the transport stack (fault-injection studies, the daemon's
    /// shared-stats stacks).
    pub fn with_lm(mut self, lm: ResilientLm) -> MultiRound {
        self.lm = lm;
        self
    }

    fn rng_for(&self, ctx: &RepairContext) -> ChaCha8Rng {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        ctx.source.hash(&mut h);
        self.feedback.label().hash(&mut h);
        ChaCha8Rng::seed_from_u64(self.seed ^ h.finish())
    }

    /// Builds the next round's guidance from the last failed candidate.
    fn prompt_agent(
        &self,
        oracle: &Oracle,
        last_candidate: &mualloy_syntax::Spec,
    ) -> Option<Guidance> {
        match self.feedback {
            FeedbackSetting::None => None,
            FeedbackSetting::Generic | FeedbackSetting::Auto => {
                let loc = localize_with(oracle, last_candidate);
                if loc.ranked.is_empty() {
                    return None;
                }
                let site_weights = loc
                    .ranked
                    .iter()
                    .map(|s| (s.id, s.score))
                    .collect::<Vec<_>>();
                Some(Guidance {
                    site_weights,
                    restrict_top: match self.feedback {
                        FeedbackSetting::Auto => Some(3),
                        _ => None,
                    },
                })
            }
        }
    }

    fn run(&self, ctx: &RepairContext, loc_hints: &[Span]) -> RepairOutcome {
        let mut rng = self.rng_for(ctx);
        let rounds = ctx.budget.max_rounds.max(1);
        let per_round = (ctx.budget.max_candidates / rounds).max(1);
        let mut explored = 0usize;
        let mut seen: HashSet<String> = HashSet::new();
        let mut last_parsed: Option<(mualloy_syntax::Spec, String)> = None;
        let mut guidance: Option<Guidance> = None;
        // Round-1 prompt may carry location hints (the LocalizeThenFix
        // hybrid injects them here; plain Multi-Round has none).
        let mut prompt = Prompt {
            source: ctx.source.clone(),
            hints: ProblemHints {
                loc: loc_hints.to_vec(),
                sites: specrepair_core::sites_for_spans(&ctx.faulty, loc_hints),
                ..ProblemHints::default()
            },
            feedback: None,
        };
        // Why the loop stopped early, if it did (distinct outcome reasons:
        // the model running dry is not a transport failure).
        let mut model_done = false;
        let mut transport_dead = false;
        'rounds: for round in 1..=rounds {
            if ctx.cancelled() {
                break; // deadline: emit the best parsed draft so far
            }
            let round_span = specrepair_trace::span("lm.round", specrepair_trace::Phase::Lm);
            if round_span.is_active() {
                round_span.attr_u64("round", round as u64);
            }
            for _ in 0..per_round {
                if explored >= ctx.budget.max_candidates || ctx.cancelled() {
                    break;
                }
                let text = match self
                    .lm
                    .propose(&prompt, guidance.as_ref(), &mut rng, &ctx.cancel)
                {
                    Ok(Some(text)) => text,
                    Ok(None) => {
                        // The model declined (unparsable prompt): retrying
                        // rounds cannot change a pure function of the
                        // prompt.
                        model_done = true;
                        break 'rounds;
                    }
                    Err(LmTransportError::CircuitOpen) => {
                        // The breaker is shedding load: the endpoint is
                        // gone for good as far as this attempt is
                        // concerned.
                        transport_dead = true;
                        break 'rounds;
                    }
                    Err(_) => {
                        // Retries exhausted on this call; end the round
                        // early and let the next round try again. If the
                        // outage persists the breaker will open and abort.
                        transport_dead = true;
                        break;
                    }
                };
                transport_dead = false; // a later call got through
                if !seen.insert(text.clone()) {
                    continue; // duplicate completion: free skip
                }
                let Ok(candidate) = mualloy_syntax::parse_spec(&text) else {
                    continue;
                };
                explored += 1;
                if ctx.repair_is_valid(&candidate) {
                    return RepairOutcome {
                        technique: self.feedback.label().to_string(),
                        success: true,
                        reason: OutcomeReason::Repaired,
                        candidate: Some(candidate),
                        candidate_source: Some(text),
                        candidates_explored: explored,
                        rounds: round,
                    };
                }
                last_parsed = Some((candidate, text));
            }
            // Prepare the next round. When the transport stack has
            // degraded (breaker tripped), the prompt agent's extra model
            // work is no longer affordable: fall back to the no-feedback
            // setting — plain resampling with a minimal status line.
            if let Some((cand, _)) = &last_parsed {
                let feedback_span = specrepair_trace::span(
                    "technique.feedback",
                    specrepair_trace::Phase::Orchestration,
                );
                let degraded = self.lm.degraded();
                if feedback_span.is_active() {
                    feedback_span.attr_u64("round", round as u64);
                    feedback_span.attr_bool("degraded", degraded);
                }
                guidance = if degraded {
                    None
                } else {
                    self.prompt_agent(ctx.oracle.service(), cand)
                };
                prompt.feedback = match self.feedback {
                    _ if degraded => Some("The specification is still faulty.".to_string()),
                    FeedbackSetting::None => Some("The specification is still faulty.".to_string()),
                    FeedbackSetting::Generic | FeedbackSetting::Auto => Some(
                        AnalyzerReport::for_source(&mualloy_syntax::print_spec(cand)).to_string(),
                    ),
                };
            }
        }
        let failure_reason = if ctx.cancelled() {
            OutcomeReason::Cancelled
        } else if transport_dead {
            OutcomeReason::TransportExhausted
        } else if model_done {
            OutcomeReason::ModelExhausted
        } else {
            OutcomeReason::BudgetExhausted
        };
        match last_parsed {
            Some((candidate, text)) => RepairOutcome {
                technique: self.feedback.label().to_string(),
                success: false,
                reason: failure_reason,
                candidate: Some(candidate),
                candidate_source: Some(text),
                candidates_explored: explored,
                rounds,
            },
            None => RepairOutcome::failure(self.feedback.label(), explored, rounds)
                .with_reason(failure_reason),
        }
    }
}

impl RepairTechnique for MultiRound {
    fn name(&self) -> &str {
        self.feedback.label()
    }

    fn repair(&self, ctx: &RepairContext) -> RepairOutcome {
        self.run(ctx, &[])
    }
}

impl HintedRepair for MultiRound {
    fn repair_with_hints(&self, ctx: &RepairContext, hints: &[Span]) -> RepairOutcome {
        self.run(ctx, hints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_analyzer::Analyzer;
    use specrepair_core::RepairBudget;

    const FAULTY: &str = "sig N { next: lone N }\n\
        fact Acyclic { some n: N | n in n.^next }\n\
        pred hasNode { some N }\n\
        assert NoSelf { all n: N | n not in n.next }\n\
        run hasNode for 3 expect 1\n\
        check NoSelf for 3 expect 0\n";

    fn ctx() -> RepairContext {
        RepairContext::from_source(
            FAULTY,
            RepairBudget {
                max_candidates: 60,
                max_rounds: 4,
            },
        )
        .unwrap()
    }

    #[test]
    fn all_settings_repair_the_quantifier_bug() {
        for fb in FeedbackSetting::ALL {
            let t = MultiRound::new(fb, 11);
            let out = t.repair(&ctx());
            assert!(out.success, "{} failed", fb.label());
            let c = out.candidate.unwrap();
            assert!(Analyzer::new(c).satisfies_oracle().unwrap());
        }
    }

    #[test]
    fn iteration_beats_single_shot() {
        // With the same model, 60 guided samples should succeed far more
        // often than 1 (sanity check of the paper's central mechanism).
        let mut multi_wins = 0;
        for seed in 0..6u64 {
            if MultiRound::new(FeedbackSetting::None, seed)
                .repair(&ctx())
                .success
            {
                multi_wins += 1;
            }
        }
        assert!(multi_wins >= 5, "multi-round won only {multi_wins}/6");
    }

    #[test]
    fn respects_budget_and_rounds() {
        let tight = RepairContext::from_source(
            FAULTY,
            RepairBudget {
                max_candidates: 5,
                max_rounds: 2,
            },
        )
        .unwrap();
        let out = MultiRound::new(FeedbackSetting::Generic, 3).repair(&tight);
        assert!(out.candidates_explored <= 5);
        assert!(out.rounds <= 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let t = MultiRound::new(FeedbackSetting::Auto, 9);
        let a = t.repair(&ctx());
        let b = t.repair(&ctx());
        assert_eq!(a.success, b.success);
        assert_eq!(a.candidate_source, b.candidate_source);
    }

    #[test]
    fn hinted_round_one_converges_faster_on_average() {
        let fact_start = FAULTY.find("some n: N").unwrap();
        let hint = [Span::new(fact_start, fact_start + 25)];
        let mut hinted_explored = 0usize;
        let mut blind_explored = 0usize;
        for seed in 0..5u64 {
            let t = MultiRound::new(FeedbackSetting::None, seed);
            let h = t.repair_with_hints(&ctx(), &hint);
            let b = t.repair(&ctx());
            if h.success {
                hinted_explored += h.candidates_explored;
            }
            if b.success {
                blind_explored += b.candidates_explored;
            }
        }
        // Not a strict guarantee, but with fidelity 0.85 the hinted runs
        // should not need more total samples than the blind ones.
        assert!(
            hinted_explored <= blind_explored + 10,
            "hinted {hinted_explored} vs blind {blind_explored}"
        );
    }

    #[test]
    fn unfixable_reports_failure_with_candidate() {
        let src = "sig A {} fact F { no A } \
            assert Tautology { no none } \
            check Tautology for 2 expect 1";
        let ctx = RepairContext::from_source(
            src,
            RepairBudget {
                max_candidates: 10,
                max_rounds: 2,
            },
        )
        .unwrap();
        let out = MultiRound::new(FeedbackSetting::Generic, 0).repair(&ctx);
        assert!(!out.success);
        assert!(out.candidate.is_some(), "best-effort candidate expected");
    }
}
