//! The synthetic language model.
//!
//! This is the reproduction's substitute for GPT-4 (see DESIGN.md §1): a
//! deterministic, seeded stochastic repair-proposal model that reproduces
//! the *mechanisms* the study attributes to LLM-based repair:
//!
//! - proposal quality depends on the information in the prompt — a bug
//!   location hint concentrates edits on the right constraint, a fix
//!   description makes the model likely to apply the exact inverse edit;
//! - feedback-guided rounds re-rank candidate locations (the dual-agent
//!   Multi-Round loop);
//! - the model *re-renders the whole specification* and occasionally
//!   restyles logically-equivalent formulas, which is why LLM repairs
//!   measure lower token/syntax similarity to the ground truth than the
//!   span-splicing traditional tools (Figure 2);
//! - rarely, the output is malformed (the paper needed a "specialized
//!   parser" for exactly this), exercising the pipeline's robustness path.
//!
//! All stochastic choices flow from a caller-provided [`ChaCha8Rng`], so
//! every experiment is reproducible from its seed.

use mualloy_syntax::ast::*;
use mualloy_syntax::walk::{replace_node, NodeId, NodeRepl};
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use specrepair_mutation::{synthesis_mutations, Mutation, MutationEngine, Vocabulary};

use crate::prompt::{invert_fix_description, Prompt};

/// Capability parameters of the synthetic model. The defaults are the
/// calibration used for the study runs (documented in EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LmConfig {
    /// Probability that a location hint is actually honored.
    pub hint_fidelity: f64,
    /// Probability that a matching fix description is applied verbatim.
    pub fix_adoption: f64,
    /// Probability of stacking a second edit into one proposal.
    pub multi_edit_prob: f64,
    /// Probability of restyling an unrelated formula (semantically
    /// equivalent rewrite) in the emitted text.
    pub style_noise_prob: f64,
    /// Probability of emitting a malformed completion.
    pub glitch_prob: f64,
}

impl Default for LmConfig {
    fn default() -> Self {
        LmConfig {
            hint_fidelity: 0.8,
            fix_adoption: 0.7,
            multi_edit_prob: 0.25,
            style_noise_prob: 0.5,
            glitch_prob: 0.02,
        }
    }
}

/// External guidance distilled from analyzer feedback (the Multi-Round
/// prompt agent's output).
#[derive(Debug, Clone, Default)]
pub struct Guidance {
    /// Per-site weights (site node id, weight); unlisted sites get a small
    /// base weight so exploration never collapses entirely.
    pub site_weights: Vec<(NodeId, f64)>,
    /// When set, restrict sampling to the `k` highest-weighted sites.
    pub restrict_top: Option<usize>,
}

/// The synthetic language model.
#[derive(Debug, Clone, Default)]
pub struct SyntheticLm {
    /// Capability parameters.
    pub config: LmConfig,
}

impl SyntheticLm {
    /// Creates a model with the given configuration.
    pub fn new(config: LmConfig) -> SyntheticLm {
        SyntheticLm { config }
    }

    /// Produces one completion for the prompt: the full text of a candidate
    /// specification. Returns `None` when the prompt's specification does
    /// not parse (a real model would hallucinate; the pipelines treat both
    /// identically).
    pub fn propose(
        &self,
        prompt: &Prompt,
        guidance: Option<&Guidance>,
        rng: &mut ChaCha8Rng,
    ) -> Option<String> {
        let spec = mualloy_syntax::parse_spec(&prompt.source).ok()?;
        let engine = MutationEngine::new(&spec);
        let mut mutations = engine.all_mutations();
        // The model can also synthesize fresh constraints (replace or
        // strengthen whole formulas) — the capability the paper credits for
        // LLM success on faults that defeat operator-level search.
        let vocab = Vocabulary::of(&spec);
        let synth_sites: Vec<_> = engine
            .sites()
            .filter(|s| s.is_formula && s.depth <= 1)
            .cloned()
            .collect();
        mutations.extend(synthesis_mutations(&spec, &vocab, &synth_sites, 24));
        if mutations.is_empty() {
            return Some(prompt.source.clone());
        }

        // 1. Choose the edit. A fix description adopted verbatim is applied
        // alone — the model "knows" the answer and does not improvise.
        let from_fix_hint = self.fix_hint_edit(prompt, &mutations, rng);
        let adopted_fix = from_fix_hint.is_some();
        let chosen = from_fix_hint
            .or_else(|| self.location_guided_edit(prompt, &mutations, rng))
            .or_else(|| self.guidance_weighted_edit(guidance, &mutations, rng))
            .or_else(|| mutations.choose(rng).cloned())?;
        let mut candidate = engine.apply(&chosen)?;

        // 2. Possibly stack a second edit.
        if !adopted_fix && rng.gen_bool(self.config.multi_edit_prob) {
            let engine2 = MutationEngine::new(&candidate);
            let more = engine2.all_mutations();
            if let Some(m2) = more.choose(rng) {
                if let Some(c2) = engine2.apply(m2) {
                    candidate = c2;
                }
            }
        }

        // 3. Stylistic noise: the model re-renders everything and sometimes
        // rewrites an equivalent form.
        if rng.gen_bool(self.config.style_noise_prob) {
            candidate = style_noise(&candidate, rng);
        }
        let mut text = mualloy_syntax::print_spec(&candidate);

        // 4. Rare malformed completion (an unterminated trailing paragraph,
        // the way a cut-off chat response looks).
        if rng.gen_bool(self.config.glitch_prob) {
            text.push_str("\nsig {");
        }
        Some(text)
    }

    /// Applies a fix description verbatim when one matches an enumerable
    /// mutation.
    fn fix_hint_edit(
        &self,
        prompt: &Prompt,
        mutations: &[Mutation],
        rng: &mut ChaCha8Rng,
    ) -> Option<Mutation> {
        if prompt.hints.fix.is_empty() || !rng.gen_bool(self.config.fix_adoption) {
            return None;
        }
        for hint in &prompt.hints.fix {
            // Hints arrive already inverted by the prompt builder; accept
            // either orientation to be safe.
            let wanted_a = hint.clone();
            let wanted_b = invert_fix_description(hint);
            let matching: Vec<&Mutation> = mutations
                .iter()
                .filter(|m| m.description == wanted_a || m.description == wanted_b)
                .collect();
            // Prefer matches inside hinted locations.
            let located: Vec<&&Mutation> = matching
                .iter()
                .filter(|m| {
                    prompt
                        .hints
                        .loc
                        .iter()
                        .any(|s| m.span.start < s.end && s.start < m.span.end)
                })
                .collect();
            if let Some(m) = located.choose(rng) {
                return Some((***m).clone());
            }
            if let Some(m) = matching.choose(rng) {
                return Some((**m).clone());
            }
        }
        None
    }

    /// Samples an edit at the hinted sites (persistent node ids first,
    /// byte-span overlap as the fallback anchor).
    fn location_guided_edit(
        &self,
        prompt: &Prompt,
        mutations: &[Mutation],
        rng: &mut ChaCha8Rng,
    ) -> Option<Mutation> {
        if (prompt.hints.loc.is_empty() && prompt.hints.sites.is_empty())
            || !rng.gen_bool(self.config.hint_fidelity)
        {
            return None;
        }
        // A location hint says "the bug is *here*": the model tries local
        // operator-level edits, not wholesale resynthesis. A persistent-id
        // hint addresses the exact node (or one of its descendants) the
        // localizer ranked; span overlap is the legacy anchor for hints
        // that arrived as raw byte ranges.
        let at_site: Vec<&Mutation> = mutations
            .iter()
            .filter(|m| !m.kind.is_synthesis() && prompt.hints.sites.contains(&m.site))
            .collect();
        if let Some(m) = at_site.choose(rng) {
            return Some((*m).clone());
        }
        let inside: Vec<&Mutation> = mutations
            .iter()
            .filter(|m| {
                !m.kind.is_synthesis()
                    && prompt
                        .hints
                        .loc
                        .iter()
                        .any(|s| m.span.start < s.end && s.start < m.span.end)
            })
            .collect();
        inside.choose(rng).map(|m| (*m).clone())
    }

    /// Samples an edit according to feedback-derived site weights.
    fn guidance_weighted_edit(
        &self,
        guidance: Option<&Guidance>,
        mutations: &[Mutation],
        rng: &mut ChaCha8Rng,
    ) -> Option<Mutation> {
        let g = guidance?;
        if g.site_weights.is_empty() {
            return None;
        }
        let mut ranked = g.site_weights.clone();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        if let Some(k) = g.restrict_top {
            ranked.truncate(k);
        }
        // Weighted pick over sites, then a uniform mutation at that site.
        let total: f64 = ranked.iter().map(|(_, w)| w.max(0.01)).sum();
        let mut roll = rng.gen_range(0.0..total.max(0.01));
        for (site, w) in &ranked {
            roll -= w.max(0.01);
            if roll <= 0.0 {
                let at_site: Vec<&Mutation> =
                    mutations.iter().filter(|m| m.site == *site).collect();
                if let Some(m) = at_site.choose(rng) {
                    return Some((*m).clone());
                }
                // The weighted site has no enumerable edits; widen to any
                // mutation *inside* its span.
                return None;
            }
        }
        None
    }
}

/// Applies one random semantics-preserving rewrite somewhere in the spec.
pub(crate) fn style_noise(spec: &Spec, rng: &mut ChaCha8Rng) -> Spec {
    let sites = mualloy_syntax::walk::collect_sites(spec);
    let formula_sites: Vec<_> = sites.iter().filter(|s| s.is_formula).collect();
    let Some(site) = formula_sites.choose(rng) else {
        return spec.clone();
    };
    let Some(NodeRepl::Formula(f)) = mualloy_syntax::walk::node_at(spec, site.id) else {
        return spec.clone();
    };
    let span = f.meta();
    let rewritten = match &f {
        // Commute a conjunction/disjunction.
        Formula::Binary(op @ (BinFormOp::And | BinFormOp::Or), l, r, _) => {
            Formula::Binary(*op, r.clone(), l.clone(), span)
        }
        // `no e` <-> `!(some e)`.
        Formula::Mult(MultOp::No, e, _) => {
            Formula::Not(Box::new(Formula::Mult(MultOp::Some, e.clone(), span)), span)
        }
        Formula::Not(inner, _) => match inner.as_ref() {
            Formula::Mult(MultOp::Some, e, _) => Formula::Mult(MultOp::No, e.clone(), span),
            _ => return spec.clone(),
        },
        // `a != b` <-> `!(a = b)`.
        Formula::Compare(CmpOp::Neq, l, r, _) => Formula::Not(
            Box::new(Formula::Compare(CmpOp::Eq, l.clone(), r.clone(), span)),
            span,
        ),
        _ => return spec.clone(),
    };
    replace_node(spec, site.id, NodeRepl::Formula(rewritten)).unwrap_or_else(|| spec.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::ProblemHints;
    use mualloy_analyzer::Analyzer;
    use rand::SeedableRng;

    const FAULTY: &str = "sig N { next: lone N }\n\
        fact Acyclic { some n: N | n in n.^next }\n\
        pred hasNode { some N }\n\
        assert NoSelf { all n: N | n not in n.next }\n\
        run hasNode for 3 expect 1\n\
        check NoSelf for 3 expect 0\n";

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn proposals_are_usually_parseable_and_differ() {
        let lm = SyntheticLm::default();
        let prompt = Prompt {
            source: FAULTY.to_string(),
            ..Prompt::default()
        };
        let mut parses = 0;
        let mut differs = 0;
        for seed in 0..40u64 {
            let Some(text) = lm.propose(&prompt, None, &mut rng(seed)) else {
                continue;
            };
            if let Ok(spec) = mualloy_syntax::parse_spec(&text) {
                parses += 1;
                if mualloy_syntax::print_spec(&spec)
                    != mualloy_syntax::print_spec(&mualloy_syntax::parse_spec(FAULTY).unwrap())
                {
                    differs += 1;
                }
            }
        }
        assert!(parses >= 35, "only {parses}/40 parse");
        assert!(differs >= 30, "only {differs}/40 differ");
    }

    #[test]
    fn deterministic_per_seed() {
        let lm = SyntheticLm::default();
        let prompt = Prompt {
            source: FAULTY.to_string(),
            ..Prompt::default()
        };
        let a = lm.propose(&prompt, None, &mut rng(7));
        let b = lm.propose(&prompt, None, &mut rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn fix_hint_is_adopted() {
        // The fault is `some` where `no` belongs: the (already inverted)
        // fix hint names the exact repair mutation.
        let lm = SyntheticLm::new(LmConfig {
            fix_adoption: 1.0,
            multi_edit_prob: 0.0,
            style_noise_prob: 0.0,
            glitch_prob: 0.0,
            ..LmConfig::default()
        });
        let fact_start = FAULTY.find("some n: N").unwrap();
        let prompt = Prompt {
            source: FAULTY.to_string(),
            hints: ProblemHints {
                sites: Vec::new(),
                loc: vec![mualloy_syntax::Span::new(fact_start, fact_start + 30)],
                fix: vec!["replace `some` with `no`".to_string()],
                pass: None,
            },
            feedback: None,
        };
        let mut fixed = 0;
        for seed in 0..10u64 {
            let text = lm.propose(&prompt, None, &mut rng(seed)).unwrap();
            if let Ok(spec) = mualloy_syntax::parse_spec(&text) {
                if Analyzer::new(spec).satisfies_oracle().unwrap_or(false) {
                    fixed += 1;
                }
            }
        }
        assert!(fixed >= 8, "fix hint adopted only {fixed}/10 times");
    }

    #[test]
    fn location_hint_concentrates_edits() {
        let lm = SyntheticLm::new(LmConfig {
            hint_fidelity: 1.0,
            multi_edit_prob: 0.0,
            style_noise_prob: 0.0,
            glitch_prob: 0.0,
            ..LmConfig::default()
        });
        let fact_start = FAULTY.find("some n: N").unwrap();
        let hint = mualloy_syntax::Span::new(fact_start, fact_start + 20);
        let prompt = Prompt {
            source: FAULTY.to_string(),
            hints: ProblemHints {
                loc: vec![hint],
                ..ProblemHints::default()
            },
            feedback: None,
        };
        // With edits forced inside the faulty quantifier, proposals repair
        // the spec at least as often as unhinted ones, and not never.
        let blind_prompt = Prompt {
            source: FAULTY.to_string(),
            ..Prompt::default()
        };
        let mut fixed = 0;
        let mut blind_fixed = 0;
        for seed in 0..40u64 {
            let text = lm.propose(&prompt, None, &mut rng(seed)).unwrap();
            if let Ok(spec) = mualloy_syntax::parse_spec(&text) {
                if Analyzer::new(spec).satisfies_oracle().unwrap_or(false) {
                    fixed += 1;
                }
            }
            let text = lm.propose(&blind_prompt, None, &mut rng(seed)).unwrap();
            if let Ok(spec) = mualloy_syntax::parse_spec(&text) {
                if Analyzer::new(spec).satisfies_oracle().unwrap_or(false) {
                    blind_fixed += 1;
                }
            }
        }
        assert!(fixed >= 2, "located proposals fixed only {fixed}/40");
        assert!(
            fixed >= blind_fixed,
            "hints should help: hinted {fixed} vs blind {blind_fixed}"
        );
    }

    #[test]
    fn style_noise_preserves_oracle() {
        let spec = mualloy_syntax::parse_spec(
            "sig N { next: lone N } \
             fact { no n: N | n in n.^next } \
             assert NoSelf { all n: N | n not in n.next } \
             check NoSelf for 3 expect 0",
        )
        .unwrap();
        for seed in 0..10u64 {
            let restyled = style_noise(&spec, &mut rng(seed));
            assert!(
                Analyzer::new(restyled).satisfies_oracle().unwrap(),
                "style noise changed semantics (seed {seed})"
            );
        }
    }

    #[test]
    fn glitchy_model_sometimes_emits_garbage() {
        let lm = SyntheticLm::new(LmConfig {
            glitch_prob: 1.0,
            ..LmConfig::default()
        });
        let prompt = Prompt {
            source: FAULTY.to_string(),
            ..Prompt::default()
        };
        let text = lm.propose(&prompt, None, &mut rng(1)).unwrap();
        assert!(mualloy_syntax::parse_spec(&text).is_err());
    }

    #[test]
    fn unparsable_prompt_yields_none() {
        let lm = SyntheticLm::default();
        let prompt = Prompt {
            source: "sig {".to_string(),
            ..Prompt::default()
        };
        assert!(lm.propose(&prompt, None, &mut rng(0)).is_none());
    }
}
