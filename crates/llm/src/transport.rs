//! The LM transport abstraction and the fault-injecting decorator.
//!
//! A real deployment talks to a hosted model over a network: calls time
//! out, get rate-limited, fail transiently, or return truncated bodies.
//! [`LmTransport`] makes that failure surface explicit —
//! `Result<Option<String>, LmTransportError>` separates *the model declined
//! to propose* (`Ok(None)`) from *the transport failed* (`Err`) — and
//! [`FaultyLm`] injects exactly reproducible failures from a
//! [`FaultPlan`](specrepair_faults::FaultPlan) schedule so the study can
//! measure resilience without any nondeterminism.
//!
//! # Determinism contract
//!
//! No injected fault may advance the caller's [`ChaCha8Rng`]. Pure
//! transport faults (timeout / rate limit / transient) never reach the
//! inner model at all; a [`Truncated`](LmTransportError::Truncated) fault
//! produces its partial payload on a **clone** of the rng. A retried call
//! therefore replays exactly the completion stream a fault-free run would
//! have seen — which is what makes the resilience proptest's
//! byte-identity invariant (same seed, faults on vs. off) hold.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand_chacha::ChaCha8Rng;
use specrepair_faults::{FaultKind, FaultPlan, FaultStats};

use crate::model::{Guidance, SyntheticLm};
use crate::prompt::Prompt;

/// The ways an LM transport call can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LmTransportError {
    /// The call exceeded its deadline with no response.
    Timeout,
    /// The endpoint rejected the call for quota reasons.
    RateLimited,
    /// A transient endpoint error (connection reset, 5xx, ...).
    Transient,
    /// The completion arrived cut off mid-body; the partial payload is
    /// attached (it is almost never parseable, which is the point).
    Truncated(String),
    /// The resilience layer refused the call: its circuit breaker is open.
    CircuitOpen,
}

impl LmTransportError {
    /// Stable snake_case label for metrics and logs.
    pub fn label(&self) -> &'static str {
        match self {
            LmTransportError::Timeout => "timeout",
            LmTransportError::RateLimited => "rate_limited",
            LmTransportError::Transient => "transient",
            LmTransportError::Truncated(_) => "truncated",
            LmTransportError::CircuitOpen => "circuit_open",
        }
    }

    /// Whether a retry can plausibly succeed. Breaker rejections are not
    /// retryable at this level — the breaker already decided to shed load.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, LmTransportError::CircuitOpen)
    }
}

impl std::fmt::Display for LmTransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LmTransportError::Truncated(body) => {
                write!(f, "truncated completion ({} bytes)", body.len())
            }
            other => f.write_str(other.label()),
        }
    }
}

impl std::error::Error for LmTransportError {}

/// A transport capable of producing LM completions.
///
/// `Ok(None)` means the model itself had nothing to propose (e.g. the
/// prompt's specification does not parse) — a *model* outcome, not a
/// transport failure. Implementations must be usable from multiple threads
/// (the study runner shards problems across a rayon pool).
pub trait LmTransport: Send + Sync + std::fmt::Debug {
    /// Produces one completion for the prompt.
    fn call(
        &self,
        prompt: &Prompt,
        guidance: Option<&Guidance>,
        rng: &mut ChaCha8Rng,
    ) -> Result<Option<String>, LmTransportError>;
}

impl LmTransport for SyntheticLm {
    /// The in-process model is a perfect network: it never fails.
    fn call(
        &self,
        prompt: &Prompt,
        guidance: Option<&Guidance>,
        rng: &mut ChaCha8Rng,
    ) -> Result<Option<String>, LmTransportError> {
        Ok(self.propose(prompt, guidance, rng))
    }
}

/// A fault-injecting decorator around any transport.
///
/// Each call consumes one index of the shared [`FaultPlan`] schedule (a
/// fresh index per *attempt*, so a retried call re-rolls rather than
/// hitting the same scheduled fault forever). Injected faults are counted
/// in a [`FaultStats`] that outlives the decorator, so a server can report
/// totals across many per-request decorators.
#[derive(Debug)]
pub struct FaultyLm<T> {
    inner: T,
    plan: FaultPlan,
    calls: AtomicU64,
    stats: Arc<FaultStats>,
}

impl<T> FaultyLm<T> {
    /// Wraps `inner` with the given fault schedule.
    pub fn new(inner: T, plan: FaultPlan) -> FaultyLm<T> {
        FaultyLm {
            inner,
            plan,
            calls: AtomicU64::new(0),
            stats: Arc::new(FaultStats::new()),
        }
    }

    /// Shares an externally owned fault counter (e.g. the daemon's
    /// server-wide one).
    pub fn with_stats(mut self, stats: Arc<FaultStats>) -> FaultyLm<T> {
        self.stats = stats;
        self
    }

    /// The injected-fault counters.
    pub fn stats(&self) -> &Arc<FaultStats> {
        &self.stats
    }

    /// How many transport attempts this decorator has seen.
    pub fn calls_made(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl<T: LmTransport> LmTransport for FaultyLm<T> {
    fn call(
        &self,
        prompt: &Prompt,
        guidance: Option<&Guidance>,
        rng: &mut ChaCha8Rng,
    ) -> Result<Option<String>, LmTransportError> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        let Some(kind) = self.plan.fault_at(call) else {
            return self.inner.call(prompt, guidance, rng);
        };
        self.stats.record(kind);
        Err(match kind {
            FaultKind::Timeout => LmTransportError::Timeout,
            FaultKind::RateLimit => LmTransportError::RateLimited,
            FaultKind::Transient => LmTransportError::Transient,
            FaultKind::Truncated => {
                // Produce the payload on a clone: the caller's rng must not
                // advance, so the retry replays the fault-free stream.
                let mut probe = rng.clone();
                let body = self
                    .inner
                    .call(prompt, guidance, &mut probe)
                    .ok()
                    .flatten()
                    .unwrap_or_default();
                let cut = body.len() / 2;
                // Cut on a char boundary at roughly the halfway point.
                let cut = (0..=cut).rev().find(|i| body.is_char_boundary(*i));
                LmTransportError::Truncated(body[..cut.unwrap_or(0)].to_string())
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    const FAULTY: &str = "sig N { next: lone N }\n\
        fact Acyclic { some n: N | n in n.^next }\n\
        assert NoSelf { all n: N | n not in n.next }\n\
        check NoSelf for 3 expect 0\n";

    fn prompt() -> Prompt {
        Prompt {
            source: FAULTY.to_string(),
            ..Prompt::default()
        }
    }

    #[test]
    fn synthetic_transport_never_fails() {
        let lm = SyntheticLm::default();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let out = lm.call(&prompt(), None, &mut rng).unwrap();
        assert!(out.is_some());
    }

    #[test]
    fn pure_faults_do_not_advance_the_rng() {
        let plan = FaultPlan::new(7, 1.0); // every call faults
        let faulty = FaultyLm::new(SyntheticLm::default(), plan);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let pristine = rng.clone();
        for _ in 0..8 {
            assert!(faulty.call(&prompt(), None, &mut rng).is_err());
        }
        // Byte-compare the stream positions via the next completion.
        let mut a = rng;
        let mut b = pristine;
        let clean = SyntheticLm::default();
        assert_eq!(
            clean.call(&prompt(), None, &mut a).unwrap(),
            clean.call(&prompt(), None, &mut b).unwrap(),
        );
    }

    #[test]
    fn truncated_fault_attaches_partial_payload() {
        let plan = FaultPlan::new(11, 1.0).with_kinds(&[FaultKind::Truncated]);
        let faulty = FaultyLm::new(SyntheticLm::default(), plan);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let full_len = SyntheticLm::default()
            .call(&prompt(), None, &mut rng.clone())
            .unwrap()
            .unwrap()
            .len();
        match faulty.call(&prompt(), None, &mut rng) {
            Err(LmTransportError::Truncated(body)) => {
                assert!(!body.is_empty());
                assert!(body.len() < full_len, "payload must be cut off");
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn fault_stats_count_injections() {
        let plan = FaultPlan::new(5, 0.5);
        let faulty = FaultyLm::new(SyntheticLm::default(), plan);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut errs = 0u64;
        for _ in 0..50 {
            if faulty.call(&prompt(), None, &mut rng).is_err() {
                errs += 1;
            }
        }
        assert_eq!(faulty.stats().total(), errs);
        assert!(errs > 5, "rate 0.5 over 50 calls injected only {errs}");
        assert_eq!(faulty.calls_made(), 50);
    }

    #[test]
    fn same_plan_same_schedule() {
        let mk = || FaultyLm::new(SyntheticLm::default(), FaultPlan::new(21, 0.3));
        let (a, b) = (mk(), mk());
        for _ in 0..40 {
            let mut ra = ChaCha8Rng::seed_from_u64(2);
            let mut rb = ChaCha8Rng::seed_from_u64(2);
            let x = a.call(&prompt(), None, &mut ra);
            let y = b.call(&prompt(), None, &mut rb);
            assert_eq!(x, y);
        }
    }

    #[test]
    fn error_labels_are_stable() {
        assert_eq!(LmTransportError::Timeout.label(), "timeout");
        assert_eq!(LmTransportError::CircuitOpen.label(), "circuit_open");
        assert!(!LmTransportError::CircuitOpen.is_retryable());
        assert!(LmTransportError::Truncated(String::new()).is_retryable());
    }
}
