//! The resilience layer: bounded retries, deterministic backoff and a
//! per-technique circuit breaker over any [`LmTransport`].
//!
//! [`ResilientLm`] is what the repair pipelines actually hold. Around every
//! transport call it provides:
//!
//! - **bounded retries** with exponential backoff and *deterministic*
//!   jitter (a hash of the policy seed and a per-instance sleep counter —
//!   no wall clock, no global RNG, so two identical runs back off
//!   identically);
//! - **cancellation-aware sleeps**: every backoff wait goes through
//!   [`CancelToken::sleep`], so a deadline or explicit cancel cuts the wait
//!   short instead of blocking the worker;
//! - **a circuit breaker** whose cooldown is counted in *rejected calls*
//!   rather than wall-clock time, keeping the whole state machine a pure
//!   function of the call sequence (and therefore reproducible).
//!
//! The breaker state machine:
//!
//! ```text
//!          trip_after consecutive exhausted calls
//! Closed ────────────────────────────────────────► Open
//!   ▲                                               │ cooldown rejected calls
//!   │ probe succeeds                                ▼
//!   └──────────────────────────────────────────── HalfOpen
//!                     probe fails: back to Open
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rand_chacha::ChaCha8Rng;
use specrepair_core::CancelToken;
use specrepair_faults::FaultStats;
use specrepair_telemetry::Counter;

use crate::model::{Guidance, SyntheticLm};
use crate::prompt::Prompt;
use crate::transport::{LmTransport, LmTransportError};

/// Retry/backoff policy for [`ResilientLm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed after the first attempt.
    pub max_retries: usize,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff wait (before jitter).
    pub max_backoff: Duration,
    /// Extra multiplier applied when the error was a rate limit — quota
    /// pressure wants longer waits than a connection blip.
    pub rate_limit_factor: u32,
    /// Seed for the deterministic jitter sequence.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(200),
            rate_limit_factor: 4,
            jitter_seed: 0x5eed_b0ff,
        }
    }
}

impl RetryPolicy {
    /// A near-zero-latency policy for studies and tests: full retry
    /// semantics, microscopic waits.
    pub fn snappy() -> RetryPolicy {
        RetryPolicy {
            max_retries: 6,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_micros(400),
            rate_limit_factor: 2,
            jitter_seed: 0x5eed_b0ff,
        }
    }

    /// Sets the retry bound.
    pub fn with_max_retries(mut self, n: usize) -> RetryPolicy {
        self.max_retries = n;
        self
    }

    /// The wait before retry number `attempt` (0-based) of a call that
    /// failed with `err`, jittered deterministically by `sleep_index`.
    fn backoff(&self, attempt: usize, err: &LmTransportError, sleep_index: u64) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16) as u32)
            .min(self.max_backoff);
        let exp = if matches!(err, LmTransportError::RateLimited) {
            exp.saturating_mul(self.rate_limit_factor.max(1))
        } else {
            exp
        };
        // Deterministic jitter in [50%, 150%): SplitMix64 of (seed, index).
        let mut z = self
            .jitter_seed
            .wrapping_add(sleep_index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let jitter_pct = 50 + (z % 100); // 50..149
        exp.saturating_mul(jitter_pct as u32) / 100
    }
}

/// Circuit-breaker thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive exhausted calls (retries included) before the breaker
    /// opens.
    pub trip_after: usize,
    /// Rejected calls the breaker absorbs while open before allowing a
    /// half-open probe. Counted in calls, not seconds, for determinism.
    pub cooldown_calls: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            trip_after: 5,
            cooldown_calls: 8,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed { consecutive_failures: usize },
    Open { rejections_left: usize },
    HalfOpen,
}

/// A deterministic circuit breaker. See the module docs for the state
/// machine.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: Mutex<BreakerState>,
    ever_tripped: AtomicBool,
}

impl CircuitBreaker {
    /// Creates a breaker in the closed state.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: Mutex::new(BreakerState::Closed {
                consecutive_failures: 0,
            }),
            ever_tripped: AtomicBool::new(false),
        }
    }

    /// Whether a call may proceed. A `false` counts toward the open
    /// state's cooldown.
    fn admit(&self) -> bool {
        let mut state = self.state.lock().unwrap();
        match *state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen => true,
            BreakerState::Open { rejections_left } => {
                if rejections_left <= 1 {
                    *state = BreakerState::HalfOpen;
                } else {
                    *state = BreakerState::Open {
                        rejections_left: rejections_left - 1,
                    };
                }
                false
            }
        }
    }

    /// Records a successful call.
    fn on_success(&self) {
        *self.state.lock().unwrap() = BreakerState::Closed {
            consecutive_failures: 0,
        };
    }

    /// Records a call whose retries were exhausted. Returns `true` when
    /// this failure tripped the breaker open.
    fn on_failure(&self) -> bool {
        let mut state = self.state.lock().unwrap();
        match *state {
            BreakerState::Closed {
                consecutive_failures,
            } => {
                let n = consecutive_failures + 1;
                if n >= self.config.trip_after {
                    *state = BreakerState::Open {
                        rejections_left: self.config.cooldown_calls,
                    };
                    self.ever_tripped.store(true, Ordering::Relaxed);
                    true
                } else {
                    *state = BreakerState::Closed {
                        consecutive_failures: n,
                    };
                    false
                }
            }
            BreakerState::HalfOpen => {
                // Failed probe: straight back to open.
                *state = BreakerState::Open {
                    rejections_left: self.config.cooldown_calls,
                };
                self.ever_tripped.store(true, Ordering::Relaxed);
                true
            }
            BreakerState::Open { .. } => false,
        }
    }

    /// Whether the breaker is currently open (rejecting calls).
    pub fn is_open(&self) -> bool {
        matches!(*self.state.lock().unwrap(), BreakerState::Open { .. })
    }

    /// Whether the breaker has ever tripped — the signal the Multi-Round
    /// pipeline uses to degrade to its no-feedback setting.
    pub fn ever_tripped(&self) -> bool {
        self.ever_tripped.load(Ordering::Relaxed)
    }
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new(BreakerConfig::default())
    }
}

/// Monotone counters describing the resilience layer's work, carried as
/// lock-free telemetry [`Counter`] handles so the same cells can be
/// registered in a metric registry. Shared via `Arc` between the layer
/// and whoever reports metrics.
#[derive(Debug, Default)]
pub struct TransportStats {
    /// Retried attempts (each retry counts once).
    pub retries: Counter,
    /// Calls whose retry budget was exhausted.
    pub giveups: Counter,
    /// Times a circuit breaker tripped open.
    pub breaker_trips: Counter,
    /// Calls rejected by an open breaker.
    pub breaker_rejections: Counter,
    /// Backoff waits cut short by cancellation.
    pub cancelled_backoffs: Counter,
    /// Injected-fault counters (shared with any [`FaultyLm`] decorators).
    ///
    /// [`FaultyLm`]: crate::transport::FaultyLm
    pub faults: Arc<FaultStats>,
}

impl TransportStats {
    /// Fresh zeroed stats.
    pub fn new() -> TransportStats {
        TransportStats::default()
    }

    /// Snapshot as `(name, value)` pairs, stable order, for metrics.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("retries", self.retries.get()),
            ("giveups", self.giveups.get()),
            ("breaker_trips", self.breaker_trips.get()),
            ("breaker_rejections", self.breaker_rejections.get()),
            ("cancelled_backoffs", self.cancelled_backoffs.get()),
        ]
    }

    /// The telemetry `transport` section for this snapshot.
    pub fn section(&self) -> specrepair_telemetry::TransportSection {
        specrepair_telemetry::TransportSection {
            retries: self.retries.get(),
            giveups: self.giveups.get(),
            breaker_trips: self.breaker_trips.get(),
            breaker_rejections: self.breaker_rejections.get(),
            cancelled_backoffs: self.cancelled_backoffs.get(),
            injected_faults: self.faults.pairs(),
        }
    }
}

/// The resilient LM client the repair pipelines hold: retries, backoff and
/// circuit breaking over an arbitrary transport.
///
/// Cloning shares the transport, breaker and stats — a clone is another
/// handle onto the same resilience state, which is what a technique's
/// `Clone` derive wants.
#[derive(Clone)]
pub struct ResilientLm {
    inner: Arc<dyn LmTransport>,
    policy: RetryPolicy,
    breaker: Arc<CircuitBreaker>,
    stats: Arc<TransportStats>,
    sleeps: Arc<AtomicU64>,
}

impl std::fmt::Debug for ResilientLm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientLm")
            .field("inner", &self.inner)
            .field("policy", &self.policy)
            .field("breaker_open", &self.breaker.is_open())
            .finish()
    }
}

impl Default for ResilientLm {
    fn default() -> Self {
        ResilientLm::synthetic()
    }
}

impl ResilientLm {
    /// The default stack: a perfect in-process [`SyntheticLm`], no faults.
    /// Behaves call-for-call identically to the bare model.
    pub fn synthetic() -> ResilientLm {
        ResilientLm::over(SyntheticLm::default())
    }

    /// Wraps an arbitrary transport with the default policy and breaker.
    pub fn over(transport: impl LmTransport + 'static) -> ResilientLm {
        ResilientLm {
            inner: Arc::new(transport),
            policy: RetryPolicy::default(),
            breaker: Arc::new(CircuitBreaker::default()),
            stats: Arc::new(TransportStats::new()),
            sleeps: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Replaces the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> ResilientLm {
        self.policy = policy;
        self
    }

    /// Replaces the breaker configuration.
    pub fn with_breaker(mut self, config: BreakerConfig) -> ResilientLm {
        self.breaker = Arc::new(CircuitBreaker::new(config));
        self
    }

    /// Shares an externally owned stats block (e.g. the daemon's).
    pub fn with_stats(mut self, stats: Arc<TransportStats>) -> ResilientLm {
        self.stats = stats;
        self
    }

    /// The stats block, for metrics reporting.
    pub fn stats(&self) -> &Arc<TransportStats> {
        &self.stats
    }

    /// Whether the stack is degraded: the breaker tripped at least once.
    /// Multi-Round uses this to fall back to its no-feedback setting.
    pub fn degraded(&self) -> bool {
        self.breaker.ever_tripped()
    }

    /// One logical completion: up to `1 + max_retries` transport attempts
    /// with cancellable exponential backoff between them.
    pub fn propose(
        &self,
        prompt: &Prompt,
        guidance: Option<&Guidance>,
        rng: &mut ChaCha8Rng,
        cancel: &CancelToken,
    ) -> Result<Option<String>, LmTransportError> {
        if !self.breaker.admit() {
            self.stats.breaker_rejections.inc();
            return Err(LmTransportError::CircuitOpen);
        }
        let mut attempt = 0usize;
        loop {
            match self.inner.call(prompt, guidance, rng) {
                Ok(out) => {
                    self.breaker.on_success();
                    return Ok(out);
                }
                Err(err) => {
                    let out_of_budget = attempt >= self.policy.max_retries || !err.is_retryable();
                    if out_of_budget || cancel.is_cancelled() {
                        if self.breaker.on_failure() {
                            self.stats.breaker_trips.inc();
                        }
                        self.stats.giveups.inc();
                        return Err(err);
                    }
                    self.stats.retries.inc();
                    let sleep_index = self.sleeps.fetch_add(1, Ordering::Relaxed);
                    let wait = self.policy.backoff(attempt, &err, sleep_index);
                    if !cancel.sleep(wait) {
                        // Deadline fired mid-backoff: give up with the
                        // original error; the caller maps cancellation.
                        self.stats.cancelled_backoffs.inc();
                        self.stats.giveups.inc();
                        return Err(err);
                    }
                    attempt += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::FaultyLm;
    use rand::SeedableRng;
    use specrepair_faults::FaultPlan;

    const FAULTY: &str = "sig N { next: lone N }\n\
        fact Acyclic { some n: N | n in n.^next }\n\
        assert NoSelf { all n: N | n not in n.next }\n\
        check NoSelf for 3 expect 0\n";

    fn prompt() -> Prompt {
        Prompt {
            source: FAULTY.to_string(),
            ..Prompt::default()
        }
    }

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn retries_absorb_transient_faults() {
        // Rate 0.4, retries 6: essentially every logical call succeeds and
        // matches the fault-free stream byte for byte.
        let plan = FaultPlan::new(13, 0.4);
        let resilient = ResilientLm::over(FaultyLm::new(SyntheticLm::default(), plan))
            .with_policy(RetryPolicy::snappy());
        let clean = SyntheticLm::default();
        let cancel = CancelToken::none();
        let mut ra = rng(4);
        let mut rb = rng(4);
        for _ in 0..20 {
            let a = resilient
                .propose(&prompt(), None, &mut ra, &cancel)
                .unwrap();
            let b = clean.propose(&prompt(), None, &mut rb);
            assert_eq!(a, b);
        }
        assert!(
            resilient.stats().retries.get() > 0,
            "rate 0.4 must have forced retries"
        );
        assert_eq!(resilient.stats().giveups.get(), 0);
    }

    #[test]
    fn exhausted_retries_surface_the_error() {
        let plan = FaultPlan::new(1, 1.0); // every attempt faults
        let resilient = ResilientLm::over(FaultyLm::new(SyntheticLm::default(), plan))
            .with_policy(RetryPolicy::snappy().with_max_retries(2));
        let cancel = CancelToken::none();
        let err = resilient
            .propose(&prompt(), None, &mut rng(0), &cancel)
            .unwrap_err();
        assert_ne!(err, LmTransportError::CircuitOpen);
        assert_eq!(resilient.stats().giveups.get(), 1);
        assert_eq!(resilient.stats().retries.get(), 2);
    }

    #[test]
    fn breaker_opens_then_recovers_through_half_open() {
        let plan = FaultPlan::new(2, 1.0);
        let faulty = FaultyLm::new(SyntheticLm::default(), plan);
        let resilient = ResilientLm::over(faulty)
            .with_policy(RetryPolicy::snappy().with_max_retries(0))
            .with_breaker(BreakerConfig {
                trip_after: 3,
                cooldown_calls: 2,
            });
        let cancel = CancelToken::none();
        let mut r = rng(0);
        // 3 failures trip the breaker...
        for _ in 0..3 {
            let e = resilient
                .propose(&prompt(), None, &mut r, &cancel)
                .unwrap_err();
            assert_ne!(e, LmTransportError::CircuitOpen);
        }
        assert!(resilient.degraded());
        // ...the next 2 calls are shed...
        for _ in 0..2 {
            assert_eq!(
                resilient
                    .propose(&prompt(), None, &mut r, &cancel)
                    .unwrap_err(),
                LmTransportError::CircuitOpen
            );
        }
        assert_eq!(resilient.stats().breaker_rejections.get(), 2);
        // ...and the half-open probe runs against the (still faulty)
        // transport, failing back to open.
        let e = resilient
            .propose(&prompt(), None, &mut r, &cancel)
            .unwrap_err();
        assert_ne!(e, LmTransportError::CircuitOpen);
        assert_eq!(
            resilient.stats().breaker_trips.get(),
            2,
            "probe failure must re-trip"
        );
    }

    #[test]
    fn breaker_closes_after_successful_probe() {
        // Faults only early in the schedule: manufacture one by picking a
        // plan whose first calls fault. Use rate 1.0 but swap the transport
        // after tripping — simplest: trip via a dedicated stack, then
        // verify a fresh success closes the breaker.
        let breaker = CircuitBreaker::new(BreakerConfig {
            trip_after: 1,
            cooldown_calls: 1,
        });
        assert!(breaker.admit());
        assert!(breaker.on_failure());
        assert!(breaker.is_open());
        assert!(!breaker.admit()); // consumes the cooldown
        assert!(breaker.admit()); // half-open probe allowed
        breaker.on_success();
        assert!(!breaker.is_open());
        assert!(breaker.ever_tripped(), "history is sticky");
    }

    #[test]
    fn backoff_grows_and_respects_cap() {
        let p = RetryPolicy {
            max_retries: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(80),
            rate_limit_factor: 4,
            jitter_seed: 1,
        };
        let early = p.backoff(0, &LmTransportError::Transient, 0);
        let late = p.backoff(6, &LmTransportError::Transient, 0);
        // Same jitter index: growth is visible despite jitter.
        assert!(late > early);
        // Cap: 80ms * 150% jitter max = 120ms.
        assert!(late <= Duration::from_millis(120));
        // Rate-limit factor stretches the wait.
        let rl = p.backoff(0, &LmTransportError::RateLimited, 0);
        assert!(rl >= early.saturating_mul(2));
    }

    #[test]
    fn jitter_is_deterministic() {
        let p = RetryPolicy::default();
        for i in 0..10u64 {
            assert_eq!(
                p.backoff(1, &LmTransportError::Transient, i),
                p.backoff(1, &LmTransportError::Transient, i)
            );
        }
        // ...and actually varies across indices.
        let distinct: std::collections::HashSet<_> = (0..10u64)
            .map(|i| p.backoff(1, &LmTransportError::Transient, i))
            .collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn cancelled_backoff_aborts_promptly() {
        let plan = FaultPlan::new(3, 1.0);
        let resilient = ResilientLm::over(FaultyLm::new(SyntheticLm::default(), plan)).with_policy(
            RetryPolicy {
                max_retries: 50,
                base_backoff: Duration::from_millis(50),
                max_backoff: Duration::from_secs(5),
                rate_limit_factor: 1,
                jitter_seed: 0,
            },
        );
        let cancel = CancelToken::with_deadline(Duration::from_millis(20));
        let start = std::time::Instant::now();
        let err = resilient
            .propose(&prompt(), None, &mut rng(0), &cancel)
            .unwrap_err();
        assert!(
            err.is_retryable(),
            "original error surfaces, not CircuitOpen"
        );
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "cancellation must cut the 50-retry backoff chain short"
        );
        assert!(resilient.stats().cancelled_backoffs.get() >= 1);
    }

    #[test]
    fn synthetic_stack_matches_bare_model() {
        let resilient = ResilientLm::synthetic();
        let clean = SyntheticLm::default();
        let cancel = CancelToken::none();
        let mut ra = rng(17);
        let mut rb = rng(17);
        for _ in 0..5 {
            assert_eq!(
                resilient
                    .propose(&prompt(), None, &mut ra, &cancel)
                    .unwrap(),
                clean.propose(&prompt(), None, &mut rb)
            );
        }
    }
}
