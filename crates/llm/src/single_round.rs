//! The Single-Round LLM repair approach (Hasan et al.).
//!
//! One zero-shot prompt, one completion — no iteration. The five prompt
//! settings control which hint channels (bug location, fix description,
//! passing-assertion requirement) the prompt carries. The *Pass* channel is
//! modeled as self-conditioning: the model internally drafts a handful of
//! completions and emits the first whose named assertion verifies, which is
//! how a requirement stated in the prompt manifests in a single visible
//! answer.

use mualloy_syntax::Span;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use specrepair_core::{HintedRepair, OutcomeReason, RepairContext, RepairOutcome, RepairTechnique};

use crate::prompt::{ProblemHints, Prompt, PromptSetting};
use crate::resilient::ResilientLm;

/// Per-setting completion policy: how many internal drafts the model
/// considers before committing to its single visible answer, and whether it
/// self-verifies drafts against the whole specification (`full`) or only
/// against the named *Pass* assertion.
///
/// The policy encodes the paper's observed ordering: a bare location hint
/// makes the model deliberate (it "knows where to look" and double-checks);
/// a fix description makes it apply the described change once, confidently
/// — which is why `Loc` outperforms `Loc+Fix` on Alloy4Fun despite carrying
/// less information.
fn draft_policy(setting: PromptSetting) -> (usize, bool) {
    match setting {
        PromptSetting::LocFix => (1, true),
        PromptSetting::Loc => (3, true),
        PromptSetting::Pass => (6, false),
        PromptSetting::None => (2, true),
        PromptSetting::LocPass => (3, false),
    }
}

/// The Single-Round technique under one prompt setting.
#[derive(Debug, Clone)]
pub struct SingleRound {
    /// The active prompt setting.
    pub setting: PromptSetting,
    /// Hints available for this problem (filtered by the setting).
    pub hints: ProblemHints,
    /// Base random seed.
    pub seed: u64,
    /// The underlying model, behind the resilient transport stack.
    pub lm: ResilientLm,
}

impl SingleRound {
    /// Creates the technique with no hints (useful for the `None` setting
    /// and for tests).
    pub fn new(setting: PromptSetting, seed: u64) -> SingleRound {
        SingleRound {
            setting,
            hints: ProblemHints::default(),
            seed,
            lm: ResilientLm::synthetic(),
        }
    }

    /// Sets the problem hints (the benchmark's known bug location / fix).
    pub fn with_hints(mut self, hints: ProblemHints) -> SingleRound {
        self.hints = hints;
        self
    }

    /// Replaces the transport stack (fault-injection studies, the daemon's
    /// shared-stats stacks).
    pub fn with_lm(mut self, lm: ResilientLm) -> SingleRound {
        self.lm = lm;
        self
    }

    fn rng_for(&self, ctx: &RepairContext) -> ChaCha8Rng {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        ctx.source.hash(&mut h);
        self.setting.label().hash(&mut h);
        ChaCha8Rng::seed_from_u64(self.seed ^ h.finish())
    }

    fn run(&self, ctx: &RepairContext, mut hints: ProblemHints) -> RepairOutcome {
        // Re-anchor byte-span location hints to persistent node ids so the
        // model targets the same sites the localizer/mutation layers rank.
        if hints.sites.is_empty() && !hints.loc.is_empty() {
            hints.sites = specrepair_core::sites_for_spans(&ctx.faulty, &hints.loc);
        }
        let prompt = Prompt {
            source: ctx.source.clone(),
            hints: hints.clone(),
            feedback: None,
        };
        let mut rng = self.rng_for(ctx);
        let (drafts, full_check) = draft_policy(self.setting);
        let mut last_text: Option<String> = None;
        let mut explored = 0usize;
        // Why the model stopped producing drafts, when it did: the model
        // itself ran out of proposals vs. the transport gave up. These map
        // to distinct outcome reasons (`ModelExhausted` / the partial
        // `TransportExhausted` outcome), not a conflated generic failure.
        let mut model_done = false;
        let mut transport_dead = false;
        for draft in 0..drafts {
            if ctx.cancelled() {
                break; // deadline: fall through to the last-draft fallback
            }
            let round_span = specrepair_trace::span("lm.round", specrepair_trace::Phase::Lm);
            if round_span.is_active() {
                round_span.attr_u64("draft", draft as u64);
            }
            let text = match self.lm.propose(&prompt, None, &mut rng, &ctx.cancel) {
                Ok(Some(text)) => text,
                Ok(None) => {
                    model_done = true;
                    break;
                }
                Err(_) => {
                    transport_dead = true;
                    break;
                }
            };
            last_text = Some(text.clone());
            let Ok(candidate) = mualloy_syntax::parse_spec(&text) else {
                continue;
            };
            explored += 1;
            let emit = if full_check {
                // The model mentally verifies the whole specification.
                ctx.repair_is_valid(&candidate)
            } else if let Some(assert_name) = &hints.pass {
                // The model only verifies the assertion named in the prompt.
                ctx.oracle
                    .service()
                    .check_assert(&candidate, assert_name, default_scope(&candidate))
                    .map(|o| !o.sat)
                    .unwrap_or(false)
            } else {
                // Pass-style setting without a usable pass hint: first draft.
                true
            };
            if emit {
                let success = ctx.repair_is_valid(&candidate);
                let reason = if success {
                    OutcomeReason::Repaired
                } else {
                    RepairOutcome::failure_reason_for(ctx, OutcomeReason::BudgetExhausted)
                };
                return RepairOutcome {
                    technique: self.setting.label().to_string(),
                    success,
                    reason,
                    candidate: Some(candidate),
                    candidate_source: Some(text),
                    candidates_explored: explored,
                    rounds: 1,
                };
            }
        }
        let failure_reason = if ctx.cancelled() {
            OutcomeReason::Cancelled
        } else if transport_dead {
            OutcomeReason::TransportExhausted
        } else if model_done {
            OutcomeReason::ModelExhausted
        } else {
            OutcomeReason::BudgetExhausted
        };
        // No draft survived self-verification (or the model glitched or the
        // transport died): emit the last draft anyway — a partial outcome,
        // as a real model client would.
        match last_text {
            Some(text) => {
                let candidate = mualloy_syntax::parse_spec(&text).ok();
                let success = candidate
                    .as_ref()
                    .map(|c| ctx.repair_is_valid(c))
                    .unwrap_or(false);
                RepairOutcome {
                    technique: self.setting.label().to_string(),
                    success,
                    reason: if success {
                        OutcomeReason::Repaired
                    } else {
                        failure_reason
                    },
                    candidate,
                    candidate_source: Some(text),
                    candidates_explored: explored.max(1),
                    rounds: 1,
                }
            }
            None => RepairOutcome::failure(self.setting.label(), 0, 1).with_reason(failure_reason),
        }
    }
}

/// The scope used to verify a *Pass* requirement: the max command scope in
/// the candidate, defaulting to 3.
fn default_scope(spec: &mualloy_syntax::Spec) -> u32 {
    spec.commands.iter().map(|c| c.scope).max().unwrap_or(3)
}

impl RepairTechnique for SingleRound {
    fn name(&self) -> &str {
        self.setting.label()
    }

    fn repair(&self, ctx: &RepairContext) -> RepairOutcome {
        self.run(ctx, self.hints.filtered(self.setting))
    }
}

impl HintedRepair for SingleRound {
    fn repair_with_hints(&self, ctx: &RepairContext, hints: &[Span]) -> RepairOutcome {
        let mut merged = self.hints.filtered(self.setting);
        merged.loc = hints.to_vec();
        self.run(ctx, merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specrepair_core::RepairBudget;

    const FAULTY: &str = "sig N { next: lone N }\n\
        fact Acyclic { some n: N | n in n.^next }\n\
        pred hasNode { some N }\n\
        assert NoSelf { all n: N | n not in n.next }\n\
        run hasNode for 3 expect 1\n\
        check NoSelf for 3 expect 0\n";

    fn ctx() -> RepairContext {
        RepairContext::from_source(FAULTY, RepairBudget::default()).unwrap()
    }

    fn full_hints() -> ProblemHints {
        let fact_start = FAULTY.find("some n: N").unwrap();
        ProblemHints {
            sites: Vec::new(),
            loc: vec![Span::new(fact_start, fact_start + 25)],
            fix: vec!["replace `some` with `no`".to_string()],
            pass: Some("NoSelf".to_string()),
        }
    }

    #[test]
    fn names_follow_settings() {
        for s in PromptSetting::ALL {
            assert_eq!(SingleRound::new(s, 0).name(), s.label());
        }
    }

    #[test]
    fn always_produces_an_outcome() {
        for s in PromptSetting::ALL {
            let t = SingleRound::new(s, 1).with_hints(full_hints());
            let out = t.repair(&ctx());
            assert_eq!(out.technique, s.label());
            assert_eq!(out.rounds, 1);
        }
    }

    #[test]
    fn loc_fix_outperforms_none_in_aggregate() {
        let mut locfix_wins = 0;
        let mut none_wins = 0;
        for seed in 0..20u64 {
            let hinted = SingleRound::new(PromptSetting::LocFix, seed).with_hints(full_hints());
            if hinted.repair(&ctx()).success {
                locfix_wins += 1;
            }
            let blind = SingleRound::new(PromptSetting::None, seed).with_hints(full_hints());
            if blind.repair(&ctx()).success {
                none_wins += 1;
            }
        }
        assert!(
            locfix_wins > none_wins,
            "Loc+Fix ({locfix_wins}/20) should beat None ({none_wins}/20)"
        );
        assert!(locfix_wins >= 10, "Loc+Fix won only {locfix_wins}/20");
    }

    #[test]
    fn none_setting_ignores_hints() {
        // The `None` prompt filters all hints out, so hinted and unhinted
        // instances behave identically given the same seed.
        let a = SingleRound::new(PromptSetting::None, 3)
            .with_hints(full_hints())
            .repair(&ctx());
        let b = SingleRound::new(PromptSetting::None, 3).repair(&ctx());
        assert_eq!(a.candidate_source, b.candidate_source);
    }

    #[test]
    fn deterministic_per_seed() {
        let t = SingleRound::new(PromptSetting::Loc, 5).with_hints(full_hints());
        let a = t.repair(&ctx());
        let b = t.repair(&ctx());
        assert_eq!(a.candidate_source, b.candidate_source);
        assert_eq!(a.success, b.success);
    }

    #[test]
    fn hinted_repair_overrides_locations() {
        let t = SingleRound::new(PromptSetting::Loc, 2);
        let fact_start = FAULTY.find("some n: N").unwrap();
        let out = t.repair_with_hints(&ctx(), &[Span::new(fact_start, fact_start + 25)]);
        assert_eq!(out.rounds, 1);
        assert!(out.candidate_source.is_some());
    }
}
