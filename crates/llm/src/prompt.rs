//! Prompt construction for the LLM-based repair pipelines.
//!
//! Mirrors the information channels of the two studied approaches:
//!
//! - **Single-Round** (Hasan et al.): a zero-shot prompt optionally carrying
//!   the bug location (*Loc*), a fix description (*Fix*) and/or an assertion
//!   the fix must satisfy (*Pass*) — five settings in total;
//! - **Multi-Round** (Alhanahnah et al.): a dual-agent loop whose prompts
//!   carry analyzer feedback at one of three levels (*No-feedback*,
//!   *Generic-feedback*, *Auto-feedback*).

use mualloy_syntax::walk::NodeId;
use mualloy_syntax::Span;
use std::fmt;

/// The five Single-Round prompt settings of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PromptSetting {
    /// Bug location + fix description.
    LocFix,
    /// Bug location only.
    Loc,
    /// Passing-assertion requirement only.
    Pass,
    /// No additional hints.
    None,
    /// Bug location + passing-assertion requirement.
    LocPass,
}

impl PromptSetting {
    /// All settings in the paper's column order.
    pub const ALL: [PromptSetting; 5] = [
        PromptSetting::LocFix,
        PromptSetting::Loc,
        PromptSetting::Pass,
        PromptSetting::None,
        PromptSetting::LocPass,
    ];

    /// The table label (`Single-Round_Loc+Fix`, …).
    pub fn label(&self) -> &'static str {
        match self {
            PromptSetting::LocFix => "Single-Round_Loc+Fix",
            PromptSetting::Loc => "Single-Round_Loc",
            PromptSetting::Pass => "Single-Round_Pass",
            PromptSetting::None => "Single-Round_None",
            PromptSetting::LocPass => "Single-Round_Loc+Pass",
        }
    }

    /// Whether the setting carries the bug location.
    pub fn has_loc(&self) -> bool {
        matches!(
            self,
            PromptSetting::LocFix | PromptSetting::Loc | PromptSetting::LocPass
        )
    }

    /// Whether the setting carries the fix description.
    pub fn has_fix(&self) -> bool {
        matches!(self, PromptSetting::LocFix)
    }

    /// Whether the setting carries the passing-assertion requirement.
    pub fn has_pass(&self) -> bool {
        matches!(self, PromptSetting::Pass | PromptSetting::LocPass)
    }
}

impl fmt::Display for PromptSetting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The three Multi-Round feedback settings of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FeedbackSetting {
    /// Binary fixed/not-fixed only.
    None,
    /// Templated analyzer report (counterexamples, instance summaries).
    Generic,
    /// A prompt agent converts the report into targeted guidance.
    Auto,
}

impl FeedbackSetting {
    /// All settings in the paper's column order.
    pub const ALL: [FeedbackSetting; 3] = [
        FeedbackSetting::None,
        FeedbackSetting::Generic,
        FeedbackSetting::Auto,
    ];

    /// The table label (`Multi-Round_None`, …).
    pub fn label(&self) -> &'static str {
        match self {
            FeedbackSetting::None => "Multi-Round_None",
            FeedbackSetting::Generic => "Multi-Round_Generic",
            FeedbackSetting::Auto => "Multi-Round_Auto",
        }
    }
}

impl fmt::Display for FeedbackSetting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Ground-truth-derived hints available to the Single-Round prompts (the
/// studied benchmark entries came with known bug locations and fixes).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProblemHints {
    /// Suspected bug locations (byte spans into the faulty source).
    pub loc: Vec<Span>,
    /// Suspected bug locations as persistent AST node ids — the same ids
    /// the localizer ranks and the mutation engines target, so every layer
    /// addresses one site vocabulary. Resolved from `loc` via
    /// `specrepair_core::sites_for_spans` by the pipelines.
    pub sites: Vec<NodeId>,
    /// Textual fix descriptions (e.g. `` replace `some` with `all` ``).
    pub fix: Vec<String>,
    /// Name of an assertion the fix must make pass.
    pub pass: Option<String>,
}

impl ProblemHints {
    /// Restricts the hints to what a given prompt setting may see.
    pub fn filtered(&self, setting: PromptSetting) -> ProblemHints {
        ProblemHints {
            loc: if setting.has_loc() {
                self.loc.clone()
            } else {
                Vec::new()
            },
            sites: if setting.has_loc() {
                self.sites.clone()
            } else {
                Vec::new()
            },
            fix: if setting.has_fix() {
                self.fix.clone()
            } else {
                Vec::new()
            },
            pass: if setting.has_pass() {
                self.pass.clone()
            } else {
                None
            },
        }
    }
}

/// A rendered prompt: what the (synthetic) model conditions on.
#[derive(Debug, Clone, Default)]
pub struct Prompt {
    /// The faulty specification's source text.
    pub source: String,
    /// Hints visible under the active setting.
    pub hints: ProblemHints,
    /// Analyzer feedback carried over from the previous round, if any.
    pub feedback: Option<String>,
}

impl Prompt {
    /// Renders the prompt as the text a real LLM API would receive (used in
    /// reports and tests; the synthetic model consumes the structured form).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "You are an expert in the Alloy specification language. \
             The following specification is faulty; produce a corrected \
             version of the complete specification.\n\n",
        );
        out.push_str("```alloy\n");
        out.push_str(&self.source);
        out.push_str("\n```\n");
        if !self.hints.loc.is_empty() {
            out.push_str(&format!(
                "\nThe bug is located at byte span(s): {}.\n",
                self.hints
                    .loc
                    .iter()
                    .map(|s| format!("{s}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        if !self.hints.sites.is_empty() {
            out.push_str(&format!(
                "\nThe suspected constraint node(s): {}.\n",
                self.hints
                    .sites
                    .iter()
                    .map(|id| format!("{id}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        for fix in &self.hints.fix {
            out.push_str(&format!("\nA possible fix: {fix}.\n"));
        }
        if let Some(p) = &self.hints.pass {
            out.push_str(&format!("\nThe fix must make assertion `{p}` pass.\n"));
        }
        if let Some(fb) = &self.feedback {
            out.push_str("\nAnalyzer feedback on your previous attempt:\n");
            out.push_str(fb);
        }
        out
    }
}

/// Inverts a mutation description so it can serve as a *fix* description:
/// the benchmark's edit script records truth→fault, the repair needs
/// fault→truth.
pub fn invert_fix_description(desc: &str) -> String {
    if let Some(rest) = desc.strip_prefix("replace ") {
        if let Some((from, to)) = rest.split_once(" with ") {
            return format!("replace {to} with {from}");
        }
    }
    match desc {
        "negate formula" => "remove negation".to_string(),
        "remove negation" => "negate formula".to_string(),
        "swap implication direction" => "swap implication direction".to_string(),
        // Junction drops and other destructive edits have no mechanical
        // inverse; the fix hint degrades to a vague nudge.
        other => format!("revisit the constraint ({other})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setting_flags() {
        assert!(PromptSetting::LocFix.has_loc() && PromptSetting::LocFix.has_fix());
        assert!(!PromptSetting::LocFix.has_pass());
        assert!(PromptSetting::Pass.has_pass() && !PromptSetting::Pass.has_loc());
        assert!(PromptSetting::LocPass.has_loc() && PromptSetting::LocPass.has_pass());
        assert!(!PromptSetting::None.has_loc());
        assert_eq!(PromptSetting::ALL.len(), 5);
        assert_eq!(FeedbackSetting::ALL.len(), 3);
    }

    #[test]
    fn labels_match_paper_columns() {
        assert_eq!(PromptSetting::LocFix.label(), "Single-Round_Loc+Fix");
        assert_eq!(PromptSetting::LocPass.to_string(), "Single-Round_Loc+Pass");
        assert_eq!(FeedbackSetting::Generic.label(), "Multi-Round_Generic");
    }

    #[test]
    fn hints_filtering() {
        let hints = ProblemHints {
            sites: Vec::new(),
            loc: vec![Span::new(1, 2)],
            fix: vec!["replace `a` with `b`".into()],
            pass: Some("Safe".into()),
        };
        let f = hints.filtered(PromptSetting::Loc);
        assert!(!f.loc.is_empty() && f.fix.is_empty() && f.pass.is_none());
        let f = hints.filtered(PromptSetting::None);
        assert_eq!(f, ProblemHints::default());
        let f = hints.filtered(PromptSetting::LocFix);
        assert!(!f.loc.is_empty() && !f.fix.is_empty());
    }

    #[test]
    fn render_includes_channels() {
        let p = Prompt {
            source: "sig A {}".into(),
            hints: ProblemHints {
                sites: Vec::new(),
                loc: vec![Span::new(0, 3)],
                fix: vec!["replace `no` with `some`".into()],
                pass: Some("Safe".into()),
            },
            feedback: Some("[FAIL] check Safe".into()),
        };
        let text = p.render();
        assert!(text.contains("sig A {}"));
        assert!(text.contains("byte span"));
        assert!(text.contains("possible fix"));
        assert!(text.contains("`Safe`"));
        assert!(text.contains("previous attempt"));
    }

    #[test]
    fn fix_inversion() {
        assert_eq!(
            invert_fix_description("replace `all` with `some`"),
            "replace `some` with `all`"
        );
        assert_eq!(invert_fix_description("negate formula"), "remove negation");
        assert_eq!(invert_fix_description("remove negation"), "negate formula");
        assert!(invert_fix_description("drop right operand").contains("revisit"));
    }
}
