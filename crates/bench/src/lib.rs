//! # specrepair-bench
//!
//! Criterion benchmarks regenerating the study's artifacts at bench scale.
//! One bench target per paper artifact (`table1_rep`, `fig2_similarity`,
//! `fig3_correlation`, `table2_hybrid`, `ablation_hybrid`) plus
//! `micro_substrates` for the underlying machinery (parser, SAT solver,
//! translation, mutation, metrics), `oracle_cache` for the shared
//! memoizing oracle (cached vs uncached repair), and `portfolio_speedup`
//! for the racing portfolio (one worker vs eight on the same roster).
//!
//! Shared fixtures live here so every bench measures the same workload.

use specrepair_benchmarks::RepairProblem;

/// A small, deterministic benchmark workload: a handful of faulty specs
/// drawn from both corpora.
pub fn bench_problems() -> Vec<RepairProblem> {
    let mut problems = specrepair_benchmarks::alloy4fun(0.002);
    problems.extend(specrepair_benchmarks::arepair(0.1));
    problems.truncate(8);
    problems
}

/// The study configuration used by all benches.
pub fn bench_config() -> specrepair_study::StudyConfig {
    specrepair_study::StudyConfig {
        scale: 0.002,
        seed: 42,
        ..specrepair_study::StudyConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_nonempty_and_deterministic() {
        let a = bench_problems();
        let b = bench_problems();
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].faulty_source, b[0].faulty_source);
    }
}
