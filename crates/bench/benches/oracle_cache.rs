//! Bench for the shared memoizing oracle service: the same repair workload
//! with the memo table enabled vs disabled, plus the raw cost of a warm
//! cache replay vs a fresh solve.

use criterion::{criterion_group, criterion_main, Criterion};
use mualloy_analyzer::{Analyzer, Oracle};
use specrepair_bench::{bench_config, bench_problems};
use specrepair_core::OracleHandle;
use specrepair_study::runner::repair_with_oracle;
use specrepair_study::TechniqueId;

fn bench_oracle_cache(c: &mut Criterion) {
    let problems = bench_problems();
    let p = &problems[0];
    let config = bench_config();
    let mut group = c.benchmark_group("oracle_cache");
    group.sample_size(10);

    // The study's hot path: all twelve techniques attack one problem. With
    // the cache they share one memo table; without it every validation
    // re-solves from scratch.
    group.bench_function("twelve_techniques_cached", |b| {
        b.iter(|| {
            let oracle = OracleHandle::fresh();
            TechniqueId::all()
                .iter()
                .filter(|id| repair_with_oracle(&oracle, **id, p, &config).success)
                .count()
        })
    });
    group.bench_function("twelve_techniques_uncached", |b| {
        b.iter(|| {
            let oracle = OracleHandle::disabled();
            TechniqueId::all()
                .iter()
                .filter(|id| repair_with_oracle(&oracle, **id, p, &config).success)
                .count()
        })
    });

    // Raw replay cost: a warm memo lookup vs a full analyzer solve.
    group.bench_function("warm_cache_replay", |b| {
        let oracle = Oracle::new();
        let _ = oracle.satisfies_oracle(&p.faulty);
        b.iter(|| oracle.satisfies_oracle(&p.faulty).unwrap_or(false))
    });
    group.bench_function("fresh_analyzer_solve", |b| {
        b.iter(|| {
            Analyzer::new(p.faulty.clone())
                .satisfies_oracle()
                .unwrap_or(false)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_oracle_cache);
criterion_main!(benches);
