//! Bench for Experiment E4 (Table II / Figure 4): hybrid repair and overlap
//! statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use specrepair_bench::bench_problems;
use specrepair_core::{
    overlap_stats, CancelToken, OracleHandle, RepairBudget, RepairContext, RepairTechnique,
    UnionHybrid,
};
use specrepair_llm::{FeedbackSetting, MultiRound};
use specrepair_traditional::Atr;

fn bench_table2(c: &mut Criterion) {
    let problems = bench_problems();
    let budget = RepairBudget {
        max_candidates: 30,
        max_rounds: 3,
    };
    let mut group = c.benchmark_group("table2_hybrid");
    group.sample_size(10);

    group.bench_function("union_hybrid_atr_plus_mr_one_spec", |b| {
        let p = &problems[0];
        let ctx = RepairContext::new(p.faulty.clone(), budget)
            .with_source(&p.faulty_source)
            .with_oracle(OracleHandle::fresh())
            .with_cancel(CancelToken::none());
        let hybrid = UnionHybrid::new(Atr::default(), MultiRound::new(FeedbackSetting::None, 42));
        b.iter(|| hybrid.repair(&ctx).success)
    });

    group.bench_function("overlap_stats_1974_specs", |b| {
        let x: Vec<bool> = (0..1974).map(|i| i % 3 != 0).collect();
        let y: Vec<bool> = (0..1974).map(|i| i % 2 == 0).collect();
        b.iter(|| overlap_stats(&x, &y))
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
