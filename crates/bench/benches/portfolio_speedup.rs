//! Bench for the racing portfolio scheduler: the same roster raced at one
//! worker (the sequential fallback chain) vs an eight-worker pool. The
//! merged outcome is byte-identical by construction, so the wall-clock gap
//! between the two rows is exactly the speedup the study reports.

use criterion::{criterion_group, criterion_main, Criterion};
use specrepair_bench::{bench_config, bench_problems};
use specrepair_core::OracleHandle;
use specrepair_study::{portfolio, RosterId};

fn bench_portfolio_speedup(c: &mut Criterion) {
    let problems = bench_problems();
    let p = &problems[0];
    let config = bench_config();
    let mut group = c.benchmark_group("portfolio_speedup");
    group.sample_size(10);

    for roster in [RosterId::Traditional, RosterId::All] {
        for (suffix, workers) in [("sequential", 1usize), ("racing", 8)] {
            let name = format!("{}_{suffix}", roster.label());
            group.bench_function(&name, |b| {
                b.iter(|| {
                    portfolio::race(&OracleHandle::fresh(), roster, p, &config, Some(workers))
                        .outcome
                        .success
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_portfolio_speedup);
criterion_main!(benches);
