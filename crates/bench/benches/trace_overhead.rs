//! Guard bench: the always-compiled span instrumentation must cost
//! (nearly) nothing when tracing is off.
//!
//! The instrumentation is baked into the oracle path, so an A/B of
//! "with spans" vs "without spans" is not runnable. Instead this
//! measures the two factors directly and bounds their product:
//!
//!   1. the per-guard cost of a *disabled* span (one relaxed atomic
//!      load, an inert guard, no-op attribute setters), and
//!   2. how many spans one warm oracle query actually opens (counted
//!      with the collector briefly enabled),
//!
//! then asserts `spans_per_query × guard_ns` stays under 2% of the
//! measured warm-query time. Exits nonzero on violation, so CI can run
//! it as a regression gate.

use std::hint::black_box;
use std::time::Instant;

use mualloy_analyzer::Oracle;
use specrepair_bench::bench_problems;
use specrepair_trace::{self as trace, Phase};

/// Median of per-iteration nanosecond estimates over several batches —
/// robust to one batch landing on a scheduler hiccup.
fn median_ns(mut batches: Vec<f64>) -> f64 {
    batches.sort_by(|a, b| a.partial_cmp(b).unwrap());
    batches[batches.len() / 2]
}

fn main() {
    trace::set_enabled(false);
    let problems = bench_problems();
    let p = &problems[0];
    let oracle = Oracle::new();
    // Warm the memo table: the guarded path is the cache *hit*, the one
    // hot enough for span overhead to matter.
    let _ = oracle.satisfies_oracle(&p.faulty);
    let _ = trace::take_spans();

    // Factor 2 first: spans one warm query opens, counted live.
    trace::set_enabled(true);
    let _ = oracle.satisfies_oracle(&p.faulty);
    trace::set_enabled(false);
    let spans_per_query = trace::take_spans().len().max(1);

    // Factor 1: cost of a disabled guard, attribute setters included.
    const SPAN_ITERS: u64 = 1_000_000;
    let mut guard_batches = Vec::new();
    for _ in 0..7 {
        let t0 = Instant::now();
        for i in 0..SPAN_ITERS {
            let span = trace::span("bench.noop", Phase::Orchestration);
            span.attr_u64("i", black_box(i));
            black_box(&span);
        }
        guard_batches.push(t0.elapsed().as_nanos() as f64 / SPAN_ITERS as f64);
    }
    let guard_ns = median_ns(guard_batches);

    // The denominator: the instrumented warm query itself (tracing off).
    const QUERY_ITERS: u64 = 2_000;
    let mut query_batches = Vec::new();
    for _ in 0..7 {
        let t0 = Instant::now();
        for _ in 0..QUERY_ITERS {
            black_box(
                oracle
                    .satisfies_oracle(black_box(&p.faulty))
                    .unwrap_or(false),
            );
        }
        query_batches.push(t0.elapsed().as_nanos() as f64 / QUERY_ITERS as f64);
    }
    let query_ns = median_ns(query_batches);

    let overhead_pct = 100.0 * (spans_per_query as f64 * guard_ns) / query_ns;
    println!("trace_overhead: disabled span guard   {guard_ns:.1} ns");
    println!("trace_overhead: spans per warm query  {spans_per_query}");
    println!("trace_overhead: warm oracle query     {query_ns:.1} ns");
    println!("trace_overhead: disabled-tracing share {overhead_pct:.3}% (limit 2%)");
    assert!(
        trace::take_spans().is_empty(),
        "disabled tracing must record nothing"
    );
    if overhead_pct >= 2.0 {
        eprintln!("error: disabled-tracing overhead {overhead_pct:.3}% breaches the 2% budget");
        std::process::exit(1);
    }
}
