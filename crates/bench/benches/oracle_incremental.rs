//! Microbench for the incremental oracle subsystem: validating a family of
//! candidate mutations of one faulty spec through a persistent
//! [`IncrementalEngine`] (one translator + one solver per skeleton,
//! activation-guarded checks, learnt clauses retained) vs the cold path (a
//! fresh [`Analyzer`] — translator, encoding and solver — per candidate).
//!
//! Prints the measured cold-vs-incremental speedup before the criterion
//! groups run; the CI microbench step greps for that line as the
//! acceptance check (the incremental path must be >= 3x faster across a
//! candidate batch). Also writes `BENCH_incremental.json` at the repo root
//! with the same measurements.

use criterion::{criterion_group, criterion_main, Criterion};
use mualloy_analyzer::{Analyzer, IncrementalEngine};
use mualloy_syntax::Spec;
use specrepair_mutation::{inject_fault, InjectorConfig};
use std::time::Instant;

/// How many study problems the batch spans, and how many candidate
/// mutations each problem's repair search validates.
const PROBLEMS: usize = 8;
const CANDIDATES_PER_PROBLEM: usize = 8;

/// The fixture: several study specs, each with a batch of single-fault
/// mutants — exactly the workload a study run hands the oracle (per
/// problem: a shared signature skeleton, one mutated formula per
/// candidate).
fn fixture() -> Vec<Spec> {
    let bases: Vec<Spec> = specrepair_benchmarks::full_study(0.05)
        .into_iter()
        .map(|p| p.faulty)
        .filter(|s| !s.commands.is_empty())
        .take(PROBLEMS)
        .collect();
    assert_eq!(
        bases.len(),
        PROBLEMS,
        "the study corpus is never this small"
    );
    let mut candidates = Vec::new();
    for base in &bases {
        candidates.push(base.clone());
        let mut seed = 0u64;
        let mut produced = 1;
        while produced < CANDIDATES_PER_PROBLEM {
            seed += 1;
            assert!(seed < 10_000, "the injector must keep producing mutants");
            let Some(fault) = inject_fault(base, seed, InjectorConfig::default()) else {
                continue;
            };
            candidates.push(fault.faulty);
            produced += 1;
        }
    }
    candidates
}

/// Validates every candidate cold: a fresh analyzer (translator + solver)
/// per candidate, the path `--no-incremental` takes.
fn run_cold(candidates: &[Spec]) -> Vec<bool> {
    candidates
        .iter()
        .map(|c| {
            Analyzer::new(c.clone())
                .satisfies_oracle()
                .expect("bench candidates execute cleanly")
        })
        .collect()
}

/// Validates every candidate through one persistent incremental engine.
fn run_incremental(engine: &IncrementalEngine, candidates: &[Spec]) -> Vec<bool> {
    candidates
        .iter()
        .map(|c| {
            engine
                .satisfies_oracle(c)
                .expect("bench candidates check incrementally")
        })
        .collect()
}

fn bench_oracle_incremental(c: &mut Criterion) {
    let candidates = fixture();

    // Correctness first: the engine must agree with the cold path on every
    // candidate, with zero fallbacks.
    let cold_verdicts = run_cold(&candidates);
    let engine = IncrementalEngine::new();
    let incremental_verdicts = run_incremental(&engine, &candidates);
    assert_eq!(cold_verdicts, incremental_verdicts);
    let stats = engine.stats();
    assert_eq!(stats.fallbacks, 0, "no bench candidate may fall back");
    assert!(stats.clause_reuse_rate() > 0.0, "{stats:?}");

    // The acceptance measurement, printed for the CI step to grep: time
    // both paths over the whole batch so the ratio lands on one line. A
    // fresh engine per iteration charges the incremental path its session
    // set-up honestly.
    const ITERS: u32 = 10;
    let t0 = Instant::now();
    for _ in 0..ITERS {
        std::hint::black_box(run_cold(&candidates));
    }
    let cold_ns = t0.elapsed().as_nanos() / ITERS as u128;
    let t0 = Instant::now();
    for _ in 0..ITERS {
        let engine = IncrementalEngine::new();
        std::hint::black_box(run_incremental(&engine, &candidates));
    }
    let inc_ns = t0.elapsed().as_nanos() / ITERS as u128;
    let speedup = cold_ns as f64 / inc_ns.max(1) as f64;
    println!(
        "oracle_incremental speedup: cold {} ns vs incremental {} ns = {:.1}x ({} checks)",
        cold_ns, inc_ns, speedup, stats.checks,
    );

    let json = format!(
        "{{\n  \"bench\": \"oracle_incremental\",\n  \"problems\": {},\n  \
         \"candidates\": {},\n  \
         \"checks\": {},\n  \"cold_ns\": {},\n  \"incremental_ns\": {},\n  \
         \"speedup\": {:.2},\n  \"clause_reuse_rate\": {:.4},\n  \
         \"learned_clauses_retained\": {}\n}}\n",
        PROBLEMS,
        candidates.len(),
        stats.checks,
        cold_ns,
        inc_ns,
        speedup,
        stats.clause_reuse_rate(),
        stats.learned_clauses_retained,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_incremental.json");
    std::fs::write(path, json).expect("can write BENCH_incremental.json");

    let mut group = c.benchmark_group("oracle_incremental");
    group.sample_size(10);
    group.bench_function("cold_batch", |b| b.iter(|| run_cold(&candidates)));
    group.bench_function("incremental_batch", |b| {
        b.iter(|| {
            let engine = IncrementalEngine::new();
            run_incremental(&engine, &candidates)
        })
    });
    group.bench_function("incremental_batch_warm", |b| {
        b.iter(|| run_incremental(&engine, &candidates))
    });
    group.finish();
}

criterion_group!(benches, bench_oracle_incremental);
criterion_main!(benches);
