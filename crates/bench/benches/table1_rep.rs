//! Bench for Experiment E1 (Table I): REP evaluation of each technique
//! class over the bench workload.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use specrepair_bench::{bench_config, bench_problems};
use specrepair_llm::{FeedbackSetting, PromptSetting};
use specrepair_study::runner::evaluate;
use specrepair_study::TechniqueId;

fn bench_table1(c: &mut Criterion) {
    let problems = bench_problems();
    let config = bench_config();
    let mut group = c.benchmark_group("table1_rep");
    group.sample_size(10);

    for (name, id) in [
        ("ARepair", TechniqueId::ARepair),
        ("ICEBAR", TechniqueId::Icebar),
        ("BeAFix", TechniqueId::BeAFix),
        ("ATR", TechniqueId::Atr),
        ("SingleRound_Loc", TechniqueId::Single(PromptSetting::Loc)),
        ("MultiRound_None", TechniqueId::Multi(FeedbackSetting::None)),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || problems[0].clone(),
                |p| evaluate(id, &p, &config),
                BatchSize::SmallInput,
            )
        });
    }
    // One full row: every technique on one spec (the Table I unit of work).
    group.bench_function("all_techniques_one_spec", |b| {
        b.iter(|| {
            TechniqueId::all()
                .into_iter()
                .map(|id| evaluate(id, &problems[1], &config).rep as usize)
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
