//! Microbenchmarks for the substrates: parser, printer, static checks,
//! SAT solving, relational translation, analysis, mutation enumeration and
//! fault injection.

use criterion::{criterion_group, criterion_main, Criterion};
use mualloy_analyzer::Analyzer;
use mualloy_relational::Translator;
use mualloy_sat::{SolveResult, Solver, Var};
use specrepair_mutation::{inject_fault, InjectorConfig, MutationEngine};

const SPEC: &str = "\
abstract sig Person { tutors: set Person }
sig Teacher extends Person {}
sig Student extends Person {}
fact Tutoring {
  all p: Person | p.tutors in Student
  all s: Student | no s.tutors
  no p: Person | p in p.^tutors
}
pred hasTutoring { some tutors }
assert OnlyTeachersTutor { all p: Person | some p.tutors => p in Teacher }
run hasTutoring for 3 expect 1
check OnlyTeachersTutor for 3 expect 0
";

fn bench_micro(c: &mut Criterion) {
    let spec = mualloy_syntax::parse_spec(SPEC).unwrap();
    let mut group = c.benchmark_group("micro_substrates");

    group.bench_function("parse_spec", |b| {
        b.iter(|| mualloy_syntax::parse_spec(SPEC).unwrap())
    });
    group.bench_function("print_spec", |b| {
        b.iter(|| mualloy_syntax::print_spec(&spec))
    });
    group.bench_function("check_spec", |b| {
        b.iter(|| mualloy_syntax::check_spec(&spec))
    });
    group.bench_function("translate_scope3", |b| {
        b.iter(|| Translator::new(&spec, 3).unwrap().base_constraint())
    });
    group.bench_function("analyzer_oracle", |b| {
        let analyzer = Analyzer::new(spec.clone());
        b.iter(|| analyzer.satisfies_oracle().unwrap())
    });
    group.bench_function("mutation_enumeration", |b| {
        b.iter(|| MutationEngine::new(&spec).all_mutations().len())
    });
    group.bench_function("fault_injection", |b| {
        b.iter(|| inject_fault(&spec, 7, InjectorConfig::default()).is_some())
    });
    group.bench_function("cdcl_pigeonhole_6_5", |b| {
        b.iter(|| {
            let mut s = Solver::new();
            let vars: Vec<Vec<Var>> = (0..6)
                .map(|_| (0..5).map(|_| s.new_var()).collect())
                .collect();
            for row in &vars {
                s.add_clause(row.iter().map(|v| v.positive()));
            }
            for (i1, row1) in vars.iter().enumerate() {
                for row2 in &vars[i1 + 1..] {
                    for (a, b) in row1.iter().zip(row2) {
                        s.add_clause([a.negative(), b.negative()]);
                    }
                }
            }
            assert_eq!(s.solve(), SolveResult::Unsat);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
