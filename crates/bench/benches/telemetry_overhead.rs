//! Guard bench: the registry-backed telemetry rebased under every daemon
//! counter must cost (nearly) nothing on the request hot path.
//!
//! Each served request records exactly one `requests_total` increment and
//! one latency-histogram observation through the shared registry (a mutex
//! guarded series lookup plus relaxed-atomic updates). This measures that
//! per-request recording cost directly, then bounds it against the warm
//! `POST /repair` handling time — the cheapest request the daemon serves
//! at steady state, i.e. the one where the telemetry share is largest.
//! Exits nonzero when the share reaches 2%, so CI runs it as a gate, and
//! writes `BENCH_telemetry.json` at the repo root with the numbers.

use std::hint::black_box;
use std::time::Instant;

use specrepair_bench::bench_problems;
use specrepair_core::OracleHandle;
use specrepair_server::service::{push_json_string, RepairService, ServiceConfig};
use specrepair_server::ServerMetrics;

/// Median of per-iteration nanosecond estimates over several batches —
/// robust to one batch landing on a scheduler hiccup.
fn median_ns(mut batches: Vec<f64>) -> f64 {
    batches.sort_by(|a, b| a.partial_cmp(b).unwrap());
    batches[batches.len() / 2]
}

fn main() {
    let problems = bench_problems();
    let mut spec = String::new();
    push_json_string(&problems[0].faulty_source, &mut spec);
    let body = format!(
        "{{\"spec\":{spec},\"technique\":\"ATR\",\"deadline_ms\":5000,\
         \"budget\":{{\"max_candidates\":8,\"max_rounds\":1}}}}"
    );

    // The numerator: what the engine records per served request — one
    // endpoint/status counter bump and one latency observation, both
    // through the registry's series lookup.
    let metrics = ServerMetrics::new();
    const RECORD_ITERS: u64 = 200_000;
    let mut record_batches = Vec::new();
    for _ in 0..7 {
        let t0 = Instant::now();
        for i in 0..RECORD_ITERS {
            metrics.record_request(black_box("repair"), black_box(200));
            metrics.record_latency(black_box("ATR"), black_box(i % 10_000 + 1));
        }
        record_batches.push(t0.elapsed().as_nanos() as f64 / RECORD_ITERS as f64);
    }
    let record_ns = median_ns(record_batches);

    // The denominator: the warm repair itself (memoized oracle, no socket).
    let service = RepairService::new(OracleHandle::fresh(), ServiceConfig::default());
    let _ = service.handle_repair(&body);
    const HANDLE_ITERS: u64 = 2_000;
    let mut handle_batches = Vec::new();
    for _ in 0..7 {
        let t0 = Instant::now();
        for _ in 0..HANDLE_ITERS {
            black_box(service.handle_repair(black_box(&body)).response.status);
        }
        handle_batches.push(t0.elapsed().as_nanos() as f64 / HANDLE_ITERS as f64);
    }
    let handle_ns = median_ns(handle_batches);

    let overhead_pct = 100.0 * record_ns / handle_ns;
    println!("telemetry_overhead: per-request recording {record_ns:.1} ns");
    println!("telemetry_overhead: warm repair handling  {handle_ns:.1} ns");
    println!("telemetry_overhead: registry share        {overhead_pct:.3}% (limit 2%)");

    let json = format!(
        "{{\n  \"bench\": \"telemetry_overhead\",\n  \"record_ns\": {record_ns:.1},\n  \
         \"handle_ns\": {handle_ns:.1},\n  \"overhead_pct\": {overhead_pct:.4},\n  \
         \"limit_pct\": 2.0\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
    std::fs::write(path, json).expect("can write BENCH_telemetry.json");

    if overhead_pct >= 2.0 {
        eprintln!("error: telemetry overhead {overhead_pct:.3}% breaches the 2% budget");
        std::process::exit(1);
    }
}
