//! Bench for Experiment E3 (Figure 3): Pearson correlation matrix over
//! per-spec similarity vectors.

use criterion::{criterion_group, criterion_main, Criterion};
use specrepair_metrics::{correlation_matrix, pearson};

fn synthetic_series(n: usize, k: usize) -> Vec<(String, Vec<f64>)> {
    // Deterministic pseudo-similarity vectors shaped like real ones.
    (0..k)
        .map(|t| {
            let v: Vec<f64> = (0..n)
                .map(|i| {
                    let x = ((i * 2654435761 + t * 40503) % 1000) as f64 / 1000.0;
                    0.5 + x / 2.0
                })
                .collect();
            (format!("tech{t}"), v)
        })
        .collect()
}

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_correlation");
    let series = synthetic_series(1974, 12);

    group.bench_function("pearson_pair_1974_specs", |b| {
        b.iter(|| pearson(&series[0].1, &series[1].1))
    });
    group.bench_function("full_12x12_matrix_1974_specs", |b| {
        b.iter(|| correlation_matrix(&series))
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
