//! Bench for the `specrepaird` service path and its observability
//! machinery: request parse → dispatch end to end, the latency histogram,
//! and the bounded oracle memo table under eviction churn.

use criterion::{criterion_group, criterion_main, Criterion};
use mualloy_analyzer::Oracle;
use specrepair_bench::bench_problems;
use specrepair_core::OracleHandle;
use specrepair_server::metrics::Histogram;
use specrepair_server::service::{push_json_string, RepairRequest, RepairService, ServiceConfig};

fn repair_body(spec_source: &str) -> String {
    let mut spec = String::new();
    push_json_string(spec_source, &mut spec);
    format!(
        "{{\"spec\":{spec},\"technique\":\"ATR\",\"deadline_ms\":5000,\
         \"budget\":{{\"max_candidates\":8,\"max_rounds\":1}}}}"
    )
}

fn bench_server_service(c: &mut Criterion) {
    let problems = bench_problems();
    let body = repair_body(&problems[0].faulty_source);
    let mut group = c.benchmark_group("server_service");
    group.sample_size(10);

    group.bench_function("repair_request_parse", |b| {
        b.iter(|| RepairRequest::parse(&body).unwrap())
    });

    // The whole POST /repair path against a warm shared oracle — the
    // steady-state per-request cost of the daemon minus the socket.
    group.bench_function("handle_repair_atr_warm_oracle", |b| {
        let service = RepairService::new(OracleHandle::fresh(), ServiceConfig::default());
        let _ = service.handle_repair(&body);
        b.iter(|| service.handle_repair(&body).response.status)
    });

    group.bench_function("histogram_record_and_percentiles", |b| {
        b.iter(|| {
            let mut h = Histogram::default();
            for i in 0..1000u64 {
                h.record(i * 37 + 1);
            }
            (
                h.percentile(0.50).unwrap(),
                h.percentile(0.90).unwrap(),
                h.percentile(0.99).unwrap(),
            )
        })
    });

    // Memo-table churn: cycling more distinct specs than a tiny bounded
    // table holds forces an eviction per store; the unbounded table keeps
    // everything and answers from cache after the first lap.
    group.bench_function("bounded_oracle_eviction_churn", |b| {
        let oracle = Oracle::bounded(1);
        b.iter(|| {
            problems
                .iter()
                .filter(|p| oracle.satisfies_oracle(&p.faulty).unwrap_or(false))
                .count()
        })
    });
    group.bench_function("unbounded_oracle_warm_laps", |b| {
        let oracle = Oracle::new();
        b.iter(|| {
            problems
                .iter()
                .filter(|p| oracle.satisfies_oracle(&p.faulty).unwrap_or(false))
                .count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_server_service);
criterion_main!(benches);
