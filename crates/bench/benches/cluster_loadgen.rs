//! Bench for the distributed oracle cluster: the same zipfian loadgen
//! workload driven against a single-node daemon and against a router over
//! three shards, all in-process on ephemeral ports. Measures cold and warm
//! throughput plus the cluster's remote-tier traffic, prints a summary
//! line, and writes `BENCH_cluster.json` at the repo root with the same
//! measurements — the committed record of what sharding costs (one router
//! hop) and buys (a shared verdict plane).

use criterion::{criterion_group, criterion_main, Criterion};
use specrepair_server::server::{spawn, ShardConfig};
use specrepair_server::{
    loadgen, router, LoadgenConfig, LoadgenReport, RouterConfig, ServerConfig, WorkloadProfile,
};
use std::net::TcpListener;

/// Requests per loadgen run; enough for the zipfian head to repeat.
const REQUESTS: usize = 48;
const CONNECTIONS: usize = 4;

fn workload(addr: String, shards: Vec<String>) -> LoadgenConfig {
    LoadgenConfig {
        addr,
        requests: REQUESTS,
        connections: CONNECTIONS,
        profile: WorkloadProfile::Zipfian,
        tenants: 4,
        shards,
        ..LoadgenConfig::default()
    }
}

/// Boots one plain daemon; returns (handle, addr).
fn boot_single() -> (specrepair_server::ServerHandle, String) {
    let handle = spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    })
    .expect("binding an ephemeral port");
    let addr = handle.addr().to_string();
    (handle, addr)
}

/// Boots `n` shards plus a router; returns (shard handles, router handle,
/// router addr, shard addrs).
#[allow(clippy::type_complexity)]
fn boot_cluster(
    n: usize,
) -> (
    Vec<specrepair_server::ServerHandle>,
    router::RouterHandle,
    String,
    Vec<String>,
) {
    let reservations: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserving a port"))
        .collect();
    let peers: Vec<String> = reservations
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect();
    let mut shards = Vec::new();
    for (shard_id, reservation) in reservations.into_iter().enumerate() {
        drop(reservation);
        shards.push(
            spawn(ServerConfig {
                addr: peers[shard_id].clone(),
                shard: Some(ShardConfig {
                    shard_id,
                    peers: peers.clone(),
                }),
                ..ServerConfig::default()
            })
            .expect("shard binds its reserved port"),
        );
    }
    let router = router::spawn_router(RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: peers.clone(),
        ..RouterConfig::default()
    })
    .expect("router binds an ephemeral port");
    let addr = router.addr().to_string();
    (shards, router, addr, peers)
}

fn clean_run(config: &LoadgenConfig) -> LoadgenReport {
    let report = loadgen::run(config);
    assert!(report.clean(), "unexpected statuses: {}", report.render());
    report
}

fn bench_cluster_loadgen(c: &mut Criterion) {
    // The acceptance measurement: one cold and one warm zipfian run against
    // each topology. Cold runs pay the SAT solves; warm runs replay the
    // memo, which is where the router hop's overhead becomes visible.
    let (single, single_addr) = boot_single();
    let single_cold = clean_run(&workload(single_addr.clone(), Vec::new()));
    let single_warm = clean_run(&workload(single_addr.clone(), Vec::new()));

    let (shards, router_handle, router_addr, peers) = boot_cluster(3);
    let cluster_cold = clean_run(&workload(router_addr.clone(), peers.clone()));
    let cluster_warm = clean_run(&workload(router_addr.clone(), peers.clone()));

    let remote_hits = cluster_warm.remote_hits.unwrap_or(0);
    let remote_puts = cluster_warm.remote_puts.unwrap_or(0);
    assert!(
        remote_puts > 0,
        "the cluster run never wrote through to a peer shard"
    );
    println!(
        "cluster_loadgen: single {:.1}/{:.1} req/s cold/warm, \
         3-shard {:.1}/{:.1} req/s cold/warm, \
         aggregate hit rate {:.1}%, {} remote hits, {} remote puts",
        single_cold.throughput(),
        single_warm.throughput(),
        cluster_cold.throughput(),
        cluster_warm.throughput(),
        cluster_warm.cache_hit_rate.unwrap_or(0.0) * 100.0,
        remote_hits,
        remote_puts,
    );

    let json = format!(
        "{{\n  \"bench\": \"cluster_loadgen\",\n  \"requests\": {REQUESTS},\n  \
         \"connections\": {CONNECTIONS},\n  \"profile\": \"zipfian\",\n  \
         \"single_node\": {{\n    \"cold_req_per_s\": {:.1},\n    \
         \"warm_req_per_s\": {:.1},\n    \"warm_hit_rate\": {:.4}\n  }},\n  \
         \"three_shards\": {{\n    \"cold_req_per_s\": {:.1},\n    \
         \"warm_req_per_s\": {:.1},\n    \"warm_aggregate_hit_rate\": {:.4},\n    \
         \"remote_hits\": {remote_hits},\n    \"remote_puts\": {remote_puts},\n    \
         \"degraded_local_solves\": 0\n  }}\n}}\n",
        single_cold.throughput(),
        single_warm.throughput(),
        single_warm.cache_hit_rate.unwrap_or(0.0),
        cluster_cold.throughput(),
        cluster_warm.throughput(),
        cluster_warm.cache_hit_rate.unwrap_or(0.0),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");
    std::fs::write(path, json).expect("can write BENCH_cluster.json");

    // Criterion groups over the warm paths only: a cold run would re-solve
    // nothing (the memos are hot by now), so both measure steady state.
    let mut group = c.benchmark_group("cluster_loadgen");
    group.sample_size(10);
    group.bench_function("single_node_warm", |b| {
        b.iter(|| clean_run(&workload(single_addr.clone(), Vec::new())).ok)
    });
    group.bench_function("three_shards_warm", |b| {
        b.iter(|| clean_run(&workload(router_addr.clone(), peers.clone())).ok)
    });
    group.finish();

    single.shutdown();
    single.join();
    router_handle.shutdown();
    router_handle.join();
    for shard in shards {
        shard.shutdown();
        shard.join();
    }
}

criterion_group!(benches, bench_cluster_loadgen);
criterion_main!(benches);
