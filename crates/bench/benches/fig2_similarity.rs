//! Bench for Experiment E2 (Figure 2): TM/SM similarity measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use specrepair_bench::bench_problems;
use specrepair_metrics::{candidate_metrics, sentence_bleu, syntax_match};

fn bench_fig2(c: &mut Criterion) {
    let problems = bench_problems();
    let p = &problems[0];
    let mut group = c.benchmark_group("fig2_similarity");

    group.bench_function("token_match_bleu", |b| {
        b.iter(|| sentence_bleu(&p.truth_source, &p.faulty_source))
    });
    group.bench_function("syntax_match_kernel", |b| {
        b.iter(|| syntax_match(&p.truth_source, &p.faulty_source))
    });
    group.bench_function("full_candidate_metrics_with_rep", |b| {
        b.iter(|| candidate_metrics(&p.truth, &p.truth_source, Some(&p.faulty_source)))
    });
    group.bench_function("fig2_aggregation_over_workload", |b| {
        b.iter(|| {
            let scores: Vec<f64> = problems
                .iter()
                .map(|p| syntax_match(&p.truth_source, &p.faulty_source))
                .collect();
            specrepair_metrics::mean(&scores).unwrap_or(0.0)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
