//! Microbench for the Merkle subtree hasher: fingerprinting a one-node
//! edit through [`SpecHasher::fingerprint_replaced`] (an O(path + payload)
//! incremental rehash) vs a full [`spec_fingerprint`] walk of the edited
//! candidate, plus the one-time `SpecHasher` construction cost that buys
//! the incremental path.
//!
//! Prints the measured incremental-vs-full speedup before the criterion
//! groups run; the CI microbench step greps for that line as the
//! acceptance check (the incremental rehash must be >= 5x faster on a
//! 1-predicate edit).

use criterion::{criterion_group, criterion_main, Criterion};
use mualloy_syntax::walk::{collect_sites, node_at, replace_node, subtree_size_formula, NodeRepl};
use mualloy_syntax::{spec_fingerprint, Spec, SpecHasher};
use std::time::Instant;

/// The fixture: the largest spec in the study corpus, a deep formula
/// target inside it, and a small replacement payload drawn from another
/// formula site (a realistic 1-predicate edit, exactly what the mutation
/// operators produce).
fn fixture() -> (Spec, mualloy_syntax::NodeId, NodeRepl) {
    let spec = specrepair_benchmarks::full_study(1.0)
        .into_iter()
        .map(|p| p.faulty)
        .max_by_key(|s| SpecHasher::new(s).node_count())
        .expect("the study corpus is never empty");
    let sites = collect_sites(&spec);
    let target = sites
        .iter()
        .filter(|s| s.is_formula)
        .max_by_key(|s| s.depth)
        .expect("every spec has a formula node")
        .id;
    // The payload: the smallest other formula subtree whose hash differs,
    // so the edit changes the fingerprint and the incremental cost is
    // dominated by the target-to-root path, as a 1-predicate edit is.
    let hasher = SpecHasher::new(&spec);
    let donor = sites
        .iter()
        .filter(|s| s.is_formula && s.id != target)
        .filter(|s| hasher.subtree_hash(s.id) != hasher.subtree_hash(target))
        .min_by_key(|s| match node_at(&spec, s.id) {
            Some(NodeRepl::Formula(f)) => subtree_size_formula(&f),
            _ => u32::MAX,
        })
        .expect("a second distinct formula subtree exists")
        .id;
    let payload = node_at(&spec, donor).expect("donor site resolves");
    (spec, target, payload)
}

fn bench_subtree_hash(c: &mut Criterion) {
    let (spec, target, payload) = fixture();
    let hasher = SpecHasher::new(&spec);
    let edited = replace_node(&spec, target, payload.clone()).expect("edit applies");

    // Correctness first: the incremental rehash must agree with the full
    // walk over the edited spec, and must actually differ from the base.
    let incremental = hasher
        .fingerprint_replaced(target, &payload)
        .expect("incremental path available");
    assert_eq!(incremental, spec_fingerprint(&edited));
    assert_ne!(incremental, hasher.fingerprint());

    // The acceptance measurement, printed for the CI step to grep: time
    // both paths outside criterion so the ratio lands on one line.
    const ITERS: u32 = 2_000;
    let t0 = Instant::now();
    for _ in 0..ITERS {
        std::hint::black_box(hasher.fingerprint_replaced(target, &payload));
    }
    let inc_ns = t0.elapsed().as_nanos() / ITERS as u128;
    let t0 = Instant::now();
    for _ in 0..ITERS {
        std::hint::black_box(spec_fingerprint(&edited));
    }
    let full_ns = t0.elapsed().as_nanos() / ITERS as u128;
    println!(
        "subtree_hash speedup: incremental {} ns vs full {} ns = {:.1}x ({} nodes)",
        inc_ns,
        full_ns,
        full_ns as f64 / inc_ns.max(1) as f64,
        hasher.node_count(),
    );

    let mut group = c.benchmark_group("subtree_hash");
    group.bench_function("incremental_rehash_1_edit", |b| {
        b.iter(|| hasher.fingerprint_replaced(target, &payload).unwrap())
    });
    group.bench_function("full_fingerprint_1_edit", |b| {
        b.iter(|| spec_fingerprint(&edited))
    });
    group.bench_function("hasher_construction", |b| {
        b.iter(|| SpecHasher::new(&spec).fingerprint())
    });
    group.finish();
}

criterion_group!(benches, bench_subtree_hash);
criterion_main!(benches);
