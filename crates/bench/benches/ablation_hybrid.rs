//! Bench for Experiment E5 (ablation): localization-guided hybrid vs plain
//! Multi-Round.

use criterion::{criterion_group, criterion_main, Criterion};
use specrepair_bench::bench_problems;
use specrepair_core::{
    localize, CancelToken, LocalizeThenFix, OracleHandle, RepairBudget, RepairContext,
    RepairTechnique,
};
use specrepair_llm::{FeedbackSetting, MultiRound};

fn bench_ablation(c: &mut Criterion) {
    let problems = bench_problems();
    let p = &problems[0];
    let budget = RepairBudget {
        max_candidates: 30,
        max_rounds: 3,
    };
    let ctx = RepairContext::new(p.faulty.clone(), budget)
        .with_source(&p.faulty_source)
        .with_oracle(OracleHandle::fresh())
        .with_cancel(CancelToken::none());
    let mut group = c.benchmark_group("ablation_hybrid");
    group.sample_size(10);

    group.bench_function("fault_localization_only", |b| {
        b.iter(|| localize(&p.faulty).ranked.len())
    });
    group.bench_function("plain_multi_round", |b| {
        let t = MultiRound::new(FeedbackSetting::None, 42);
        b.iter(|| t.repair(&ctx).success)
    });
    group.bench_function("localize_then_fix", |b| {
        let t = LocalizeThenFix::new(MultiRound::new(FeedbackSetting::None, 42), 3);
        b.iter(|| t.repair(&ctx).success)
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
