//! Node addressing and rewriting utilities built on [`crate::visit`].
//!
//! Every formula and expression node in a [`Spec`] carries a **persistent**
//! [`NodeId`], assigned once at parse time (dense pre-order over facts,
//! predicates, functions and assertions — see [`crate::visit::assign_ids`]).
//! The mutation and repair crates address nodes by id: [`collect_sites`]
//! enumerates them together with scope information, and [`replace_node`]
//! rebuilds a specification with one node swapped out.
//!
//! # Id persistence contract
//!
//! Ids are a property of the node, not of its position:
//!
//! - ids are stable across clones *and* across structural edits — a
//!   [`replace_node`] call preserves the id of every node outside the
//!   replaced subtree;
//! - the spliced payload receives **fresh** ids drawn above the spec's
//!   [`Spec::next_node_id`] high-water mark;
//! - freed ids (those of the removed subtree) are **never reused**, so an id
//!   denotes at most one node over the whole edit history of a spec.
//!
//! Hand-built or deserialized specs carry [`NodeId::UNASSIGNED`] ids; call
//! [`Spec::assign_ids`] before addressing their nodes.

use crate::ast::*;
use crate::visit::{
    walk_expr, walk_expr_mut, walk_formula, walk_formula_mut, walk_int_expr_mut, NodeIdGenerator,
    Visitor, VisitorMut,
};
use std::collections::BTreeSet;

pub use crate::ast::NodeId;
pub use crate::visit::OwnerKind;

/// A node discovered by [`collect_sites`], with enough context for the
/// mutation operators to synthesize well-scoped replacements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSite {
    /// The node's persistent id.
    pub id: NodeId,
    /// `true` for formula nodes, `false` for expression nodes.
    pub is_formula: bool,
    /// Source span of the node (synthetic for generated nodes).
    pub span: Span,
    /// Nesting depth below the owning declaration body (0 = top of body).
    pub depth: u16,
    /// Owning declaration kind and its index in the spec.
    pub owner: (OwnerKind, usize),
    /// Names of quantified variables, parameters and let-bindings in scope.
    pub vars_in_scope: Vec<String>,
}

/// A replacement payload for [`replace_node`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeRepl {
    /// Replace a formula node.
    Formula(Formula),
    /// Replace an expression node.
    Expr(Expr),
}

// ------------------------------------------------------------------ strip

/// Sets every span it can reach to synthetic, leaving ids untouched.
struct SpanStripper;

impl VisitorMut for SpanStripper {
    fn visit_formula_mut(&mut self, f: &mut Formula) {
        f.meta_mut().span = Span::synthetic();
        walk_formula_mut(self, f);
    }

    fn visit_expr_mut(&mut self, e: &mut Expr) {
        e.meta_mut().span = Span::synthetic();
        walk_expr_mut(self, e);
    }

    fn visit_int_expr_mut(&mut self, i: &mut IntExpr) {
        match i {
            IntExpr::Card(_, s) | IntExpr::Lit(_, s) => *s = Span::synthetic(),
        }
        walk_int_expr_mut(self, i);
    }

    fn visit_var_decl_mut(&mut self, d: &mut VarDecl) {
        d.span = Span::synthetic();
        self.visit_expr_mut(&mut d.bound);
    }
}

/// Returns a copy of the expression with all spans set to synthetic.
pub fn strip_expr_spans(e: &Expr) -> Expr {
    let mut out = e.clone();
    SpanStripper.visit_expr_mut(&mut out);
    out
}

/// Returns a copy of the formula with all spans set to synthetic.
pub fn strip_formula_spans(f: &Formula) -> Formula {
    let mut out = f.clone();
    SpanStripper.visit_formula_mut(&mut out);
    out
}

/// Returns a copy of the spec with all spans set to synthetic.
pub fn strip_spec_spans(spec: &Spec) -> Spec {
    let s = Span::synthetic();
    let mut out = spec.clone();
    let mut st = SpanStripper;
    st.visit_spec_mut(&mut out);
    // Declaration frames are outside the addressable surface; strip by hand.
    for sig in &mut out.sigs {
        sig.span = s;
        for f in &mut sig.fields {
            f.span = s;
        }
    }
    for fact in &mut out.facts {
        fact.span = s;
    }
    for pred in &mut out.preds {
        pred.span = s;
        for p in &mut pred.params {
            p.span = s;
            st.visit_expr_mut(&mut p.bound);
        }
    }
    for fun in &mut out.funs {
        fun.span = s;
        for p in &mut fun.params {
            p.span = s;
            st.visit_expr_mut(&mut p.bound);
        }
        st.visit_expr_mut(&mut fun.result);
    }
    for a in &mut out.asserts {
        a.span = s;
    }
    for c in &mut out.commands {
        c.span = s;
    }
    out
}

// ---------------------------------------------------------------- collect

/// [`Visitor`] instance enumerating addressable nodes with scope context.
struct Collector {
    sites: Vec<NodeSite>,
    depth: u16,
    scope: Vec<String>,
    owner: (OwnerKind, usize),
}

impl Collector {
    fn push_site(&mut self, id: NodeId, is_formula: bool, span: Span) {
        self.sites.push(NodeSite {
            id,
            is_formula,
            span,
            depth: self.depth,
            owner: self.owner,
            vars_in_scope: self.scope.clone(),
        });
    }
}

impl Visitor for Collector {
    fn visit_formula(&mut self, f: &Formula) {
        self.push_site(f.id(), true, f.span());
        self.depth += 1;
        walk_formula(self, f);
        self.depth -= 1;
    }

    fn visit_expr(&mut self, e: &Expr) {
        self.push_site(e.id(), false, e.span());
        self.depth += 1;
        walk_expr(self, e);
        self.depth -= 1;
    }

    fn enter_body(&mut self, owner: OwnerKind, index: usize, params: &[Param]) {
        self.owner = (owner, index);
        self.depth = 0;
        self.scope = params.iter().map(|p| p.name.clone()).collect();
    }

    fn exit_body(&mut self, _owner: OwnerKind, _index: usize) {
        self.scope.clear();
    }

    fn enter_binders(&mut self, decls: &[VarDecl]) {
        for d in decls {
            self.scope.push(d.name.clone());
        }
    }

    fn exit_binders(&mut self, decls: &[VarDecl]) {
        self.scope.truncate(self.scope.len() - decls.len());
    }

    fn enter_let(&mut self, name: &str) {
        self.scope.push(name.to_string());
    }

    fn exit_let(&mut self, _name: &str) {
        self.scope.pop();
    }
}

/// Enumerates all formula and expression nodes of the specification in the
/// canonical pre-order (facts, then predicates, then functions, then
/// assertions), together with their scopes.
///
/// Site ids are read from the nodes, not derived from the traversal: a spec
/// fresh from the parser yields dense ids `0..n`, an edited spec yields the
/// surviving original ids plus the fresh ids of spliced subtrees.
pub fn collect_sites(spec: &Spec) -> Vec<NodeSite> {
    let mut c = Collector {
        sites: Vec::new(),
        depth: 0,
        scope: Vec::new(),
        owner: (OwnerKind::Fact, 0),
    };
    c.visit_spec(spec);
    c.sites
}

// ---------------------------------------------------------------- replace

/// Number of formula/expression nodes in the subtree rooted at `f`.
pub fn subtree_size_formula(f: &Formula) -> u32 {
    struct Count(u32);
    impl Visitor for Count {
        fn visit_formula(&mut self, f: &Formula) {
            self.0 += 1;
            walk_formula(self, f);
        }
        fn visit_expr(&mut self, e: &Expr) {
            self.0 += 1;
            walk_expr(self, e);
        }
    }
    let mut c = Count(0);
    c.visit_formula(f);
    c.0
}

/// Number of formula/expression nodes in the subtree rooted at `e`.
pub fn subtree_size_expr(e: &Expr) -> u32 {
    struct Count(u32);
    impl Visitor for Count {
        fn visit_formula(&mut self, f: &Formula) {
            self.0 += 1;
            walk_formula(self, f);
        }
        fn visit_expr(&mut self, e: &Expr) {
            self.0 += 1;
            walk_expr(self, e);
        }
    }
    let mut c = Count(0);
    c.visit_expr(e);
    c.0
}

/// Retrieves a clone of the node with the given id, wrapped in the same
/// payload type [`replace_node`] accepts.
pub fn node_at(spec: &Spec, id: NodeId) -> Option<NodeRepl> {
    struct Finder {
        target: NodeId,
        found: Option<NodeRepl>,
    }
    impl Visitor for Finder {
        fn visit_formula(&mut self, f: &Formula) {
            if self.found.is_some() {
                return;
            }
            if f.id() == self.target {
                self.found = Some(NodeRepl::Formula(f.clone()));
                return;
            }
            walk_formula(self, f);
        }
        fn visit_expr(&mut self, e: &Expr) {
            if self.found.is_some() {
                return;
            }
            if e.id() == self.target {
                self.found = Some(NodeRepl::Expr(e.clone()));
                return;
            }
            walk_expr(self, e);
        }
    }
    if id.is_unassigned() {
        return None;
    }
    let mut fd = Finder {
        target: id,
        found: None,
    };
    fd.visit_spec(spec);
    fd.found
}

/// [`VisitorMut`] instance splicing one payload at a persistent id.
struct Replacer {
    target: NodeId,
    repl: Option<NodeRepl>,
    kind_mismatch: bool,
}

impl VisitorMut for Replacer {
    fn visit_formula_mut(&mut self, f: &mut Formula) {
        if self.repl.is_none() || self.kind_mismatch {
            return;
        }
        if f.id() == self.target {
            match self.repl.take() {
                Some(NodeRepl::Formula(nf)) => *f = nf,
                other => {
                    self.kind_mismatch = true;
                    self.repl = other;
                }
            }
            return;
        }
        walk_formula_mut(self, f);
    }

    fn visit_expr_mut(&mut self, e: &mut Expr) {
        if self.repl.is_none() || self.kind_mismatch {
            return;
        }
        if e.id() == self.target {
            match self.repl.take() {
                Some(NodeRepl::Expr(ne)) => *e = ne,
                other => {
                    self.kind_mismatch = true;
                    self.repl = other;
                }
            }
            return;
        }
        walk_expr_mut(self, e);
    }
}

/// Rebuilds the specification with the node identified by `id` replaced.
///
/// Every node outside the replaced subtree keeps its persistent id; the
/// payload's nodes are given fresh ids above the spec's
/// [`Spec::next_node_id`] high-water mark (cloned payloads would otherwise
/// smuggle duplicate ids in), and the mark advances so the ids freed by the
/// removed subtree are never handed out again.
///
/// Returns `None` if the id does not exist in the spec or the replacement
/// kind does not match the node kind.
pub fn replace_node(spec: &Spec, id: NodeId, repl: NodeRepl) -> Option<Spec> {
    if id.is_unassigned() {
        return None;
    }
    let mut out = spec.clone();
    // Seed above both the recorded high-water mark and anything actually
    // present, so hand-built or deserialized specs stay collision-free.
    let start = out
        .next_node_id
        .max(crate::visit::max_assigned_id(&out).map_or(0, |m| m + 1));
    let mut generator = NodeIdGenerator::starting_at(start);
    let repl = match repl {
        NodeRepl::Formula(mut f) => {
            crate::visit::freshen_formula_ids(&mut f, &mut generator);
            NodeRepl::Formula(f)
        }
        NodeRepl::Expr(mut e) => {
            crate::visit::freshen_expr_ids(&mut e, &mut generator);
            NodeRepl::Expr(e)
        }
    };
    let mut rb = Replacer {
        target: id,
        repl: Some(repl),
        kind_mismatch: false,
    };
    rb.visit_spec_mut(&mut out);
    if rb.repl.is_none() && !rb.kind_mismatch {
        out.next_node_id = generator.watermark();
        Some(out)
    } else {
        None
    }
}

// ------------------------------------------------------------ substitution

/// Capture-naive substitution of free identifiers in an expression.
///
/// Bound variables shadow substitutions of the same name. Adequate for
/// predicate/function inlining where arguments are fresh with respect to the
/// body's binders (the elaborator freshens clashing binders first).
pub fn subst_expr(e: &Expr, map: &std::collections::HashMap<String, Expr>) -> Expr {
    match e {
        Expr::Ident(n, s) => match map.get(n) {
            Some(repl) => repl.clone(),
            None => Expr::Ident(n.clone(), *s),
        },
        Expr::Univ(s) => Expr::Univ(*s),
        Expr::Iden(s) => Expr::Iden(*s),
        Expr::None(s) => Expr::None(*s),
        Expr::Unary(op, inner, s) => Expr::Unary(*op, Box::new(subst_expr(inner, map)), *s),
        Expr::Binary(op, l, r, s) => Expr::Binary(
            *op,
            Box::new(subst_expr(l, map)),
            Box::new(subst_expr(r, map)),
            *s,
        ),
        Expr::Comprehension(decls, body, s) => {
            let mut inner_map = map.clone();
            let decls2: Vec<VarDecl> = decls
                .iter()
                .map(|d| VarDecl {
                    name: d.name.clone(),
                    bound: subst_expr(&d.bound, &inner_map),
                    span: d.span,
                })
                .collect();
            for d in decls {
                inner_map.remove(&d.name);
            }
            Expr::Comprehension(decls2, Box::new(subst_formula(body, &inner_map)), *s)
        }
        Expr::IfThenElse(c, t, f, s) => Expr::IfThenElse(
            Box::new(subst_formula(c, map)),
            Box::new(subst_expr(t, map)),
            Box::new(subst_expr(f, map)),
            *s,
        ),
        Expr::FunCall(n, args, s) => Expr::FunCall(
            n.clone(),
            args.iter().map(|a| subst_expr(a, map)).collect(),
            *s,
        ),
    }
}

/// Capture-naive substitution of free identifiers in a formula.
///
/// See [`subst_expr`] for the capture caveat.
pub fn subst_formula(f: &Formula, map: &std::collections::HashMap<String, Expr>) -> Formula {
    match f {
        Formula::Compare(op, l, r, s) => Formula::Compare(
            *op,
            Box::new(subst_expr(l, map)),
            Box::new(subst_expr(r, map)),
            *s,
        ),
        Formula::IntCompare(op, l, r, s) => {
            let sub_int = |i: &IntExpr| match i {
                IntExpr::Card(e, sp) => IntExpr::Card(Box::new(subst_expr(e, map)), *sp),
                IntExpr::Lit(n, sp) => IntExpr::Lit(*n, *sp),
            };
            Formula::IntCompare(*op, Box::new(sub_int(l)), Box::new(sub_int(r)), *s)
        }
        Formula::Mult(op, e, s) => Formula::Mult(*op, Box::new(subst_expr(e, map)), *s),
        Formula::Not(inner, s) => Formula::Not(Box::new(subst_formula(inner, map)), *s),
        Formula::Binary(op, l, r, s) => Formula::Binary(
            *op,
            Box::new(subst_formula(l, map)),
            Box::new(subst_formula(r, map)),
            *s,
        ),
        Formula::Quant(q, decls, body, s) => {
            let mut inner_map = map.clone();
            let decls2: Vec<VarDecl> = decls
                .iter()
                .map(|d| VarDecl {
                    name: d.name.clone(),
                    bound: subst_expr(&d.bound, &inner_map),
                    span: d.span,
                })
                .collect();
            for d in decls {
                inner_map.remove(&d.name);
            }
            Formula::Quant(*q, decls2, Box::new(subst_formula(body, &inner_map)), *s)
        }
        Formula::Let(n, e, body, s) => {
            let e2 = subst_expr(e, map);
            let mut inner_map = map.clone();
            inner_map.remove(n);
            Formula::Let(
                n.clone(),
                Box::new(e2),
                Box::new(subst_formula(body, &inner_map)),
                *s,
            )
        }
        Formula::PredCall(n, args, s) => Formula::PredCall(
            n.clone(),
            args.iter().map(|a| subst_expr(a, map)).collect(),
            *s,
        ),
    }
}

// ------------------------------------------------------------- vocabulary

/// Collects all identifiers referenced in a formula (free and bound).
pub fn idents_in_formula(f: &Formula, out: &mut BTreeSet<String>) {
    let mut v = IdentCollector(out);
    v.visit_formula(f);
}

/// Collects all identifiers referenced in an expression.
pub fn idents_in_expr(e: &Expr, out: &mut BTreeSet<String>) {
    let mut v = IdentCollector(out);
    v.visit_expr(e);
}

struct IdentCollector<'a>(&'a mut BTreeSet<String>);

impl Visitor for IdentCollector<'_> {
    fn visit_formula(&mut self, f: &Formula) {
        if let Formula::PredCall(n, _, _) = f {
            self.0.insert(n.clone());
        }
        walk_formula(self, f);
    }

    fn visit_expr(&mut self, e: &Expr) {
        match e {
            Expr::Ident(n, _) | Expr::FunCall(n, _, _) => {
                self.0.insert(n.clone());
            }
            _ => {}
        }
        walk_expr(self, e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_formula, parse_spec};

    fn sample_spec() -> Spec {
        parse_spec(
            "sig A { f: set A }\n\
             fact Inv { all x: A | x in x.f }\n\
             pred p[a: A] { some a.f }\n\
             fun g[a: A]: set A { a.f }\n\
             assert Q { no A }\n\
             check Q for 3",
        )
        .unwrap()
    }

    #[test]
    fn collect_assigns_contiguous_ids() {
        let spec = sample_spec();
        let sites = collect_sites(&spec);
        for (i, s) in sites.iter().enumerate() {
            assert_eq!(s.id.0 as usize, i);
        }
        assert!(sites.len() > 8);
    }

    #[test]
    fn scope_tracking_includes_params_and_binders() {
        let spec = sample_spec();
        let sites = collect_sites(&spec);
        // The deepest node under the quantifier should see `x` in scope.
        let in_fact: Vec<_> = sites
            .iter()
            .filter(|s| s.owner.0 == OwnerKind::Fact)
            .collect();
        assert!(in_fact
            .iter()
            .any(|s| s.vars_in_scope.contains(&"x".to_string())));
        let in_pred: Vec<_> = sites
            .iter()
            .filter(|s| s.owner.0 == OwnerKind::Pred)
            .collect();
        assert!(in_pred
            .iter()
            .all(|s| s.vars_in_scope.contains(&"a".to_string())));
    }

    #[test]
    fn replace_identity_preserves_spec() {
        let spec = sample_spec();
        let sites = collect_sites(&spec);
        for site in &sites {
            let repl = node_at(&spec, site.id).unwrap();
            match (&repl, site.is_formula) {
                (NodeRepl::Formula(_), true) | (NodeRepl::Expr(_), false) => {}
                _ => panic!("node_at kind disagrees with site {:?}", site.id),
            }
            let out = replace_node(&spec, site.id, repl).unwrap();
            assert_eq!(strip_spec_spans(&out), strip_spec_spans(&spec));
        }
    }

    #[test]
    fn replace_preserves_untouched_ids_and_advances_watermark() {
        let spec = sample_spec();
        let sites = collect_sites(&spec);
        let target = sites
            .iter()
            .find(|s| s.is_formula && s.owner.0 == OwnerKind::Assert)
            .unwrap();
        let nf = parse_formula("some A").unwrap();
        let out = replace_node(&spec, target.id, NodeRepl::Formula(nf)).unwrap();

        let before: std::collections::HashMap<NodeId, bool> =
            sites.iter().map(|s| (s.id, s.is_formula)).collect();
        let removed: std::collections::HashSet<NodeId> = sites
            .iter()
            .filter(|s| {
                s.owner == target.owner && s.id >= target.id && {
                    // Pre-order: the replaced subtree is the contiguous id
                    // range starting at the target on a fresh parse.
                    let size = match node_at(&spec, target.id).unwrap() {
                        NodeRepl::Formula(f) => subtree_size_formula(&f),
                        NodeRepl::Expr(e) => subtree_size_expr(&e),
                    };
                    s.id.0 < target.id.0 + size
                }
            })
            .map(|s| s.id)
            .collect();

        let after_sites = collect_sites(&out);
        let after: std::collections::HashSet<NodeId> = after_sites.iter().map(|s| s.id).collect();
        // Untouched ids survive with their kind.
        for s in &sites {
            if !removed.contains(&s.id) {
                assert!(after.contains(&s.id), "lost id {:?}", s.id);
                let k = after_sites.iter().find(|a| a.id == s.id).unwrap();
                assert_eq!(k.is_formula, before[&s.id]);
            }
        }
        // Freed ids are gone and never reappear below the new watermark.
        for id in &removed {
            assert!(!after.contains(id), "freed id {:?} reused", id);
        }
        assert!(out.next_node_id > spec.next_node_id);
        // New payload ids sit above the old watermark.
        for s in &after_sites {
            if !before.contains_key(&s.id) {
                assert!(s.id.0 >= spec.next_node_id);
            }
        }
    }

    #[test]
    fn replace_formula_changes_only_target() {
        let spec = sample_spec();
        let sites = collect_sites(&spec);
        let target = sites
            .iter()
            .find(|s| s.is_formula && s.owner.0 == OwnerKind::Assert)
            .unwrap();
        let nf = parse_formula("some A").unwrap();
        let out = replace_node(&spec, target.id, NodeRepl::Formula(nf)).unwrap();
        assert_ne!(strip_spec_spans(&out), strip_spec_spans(&spec));
        // Fact unchanged.
        assert_eq!(
            strip_formula_spans(&out.facts[0].body[0]),
            strip_formula_spans(&spec.facts[0].body[0])
        );
    }

    #[test]
    fn replace_with_wrong_kind_returns_none() {
        let spec = sample_spec();
        let sites = collect_sites(&spec);
        let formula_site = sites.iter().find(|s| s.is_formula).unwrap();
        assert!(replace_node(&spec, formula_site.id, NodeRepl::Expr(Expr::ident("A"))).is_none());
    }

    #[test]
    fn replace_missing_id_returns_none() {
        let spec = sample_spec();
        assert!(replace_node(&spec, NodeId(9999), NodeRepl::Formula(Formula::truth())).is_none());
        assert!(replace_node(
            &spec,
            NodeId::UNASSIGNED,
            NodeRepl::Formula(Formula::truth())
        )
        .is_none());
    }

    #[test]
    fn subst_respects_shadowing() {
        let f = parse_formula("all x: A | x in y.f").unwrap();
        let mut map = std::collections::HashMap::new();
        map.insert("x".to_string(), Expr::ident("Z"));
        map.insert("y".to_string(), Expr::ident("W"));
        let out = subst_formula(&f, &map);
        let mut ids = BTreeSet::new();
        idents_in_formula(&out, &mut ids);
        // Bound x survives; free y replaced by W.
        assert!(ids.contains("x"));
        assert!(ids.contains("W"));
        assert!(!ids.contains("y"));
        assert!(!ids.contains("Z"));
    }

    #[test]
    fn idents_collects_all_names() {
        let f = parse_formula("all x: A | x.f in B + C").unwrap();
        let mut ids = BTreeSet::new();
        idents_in_formula(&f, &mut ids);
        for n in ["A", "B", "C", "f", "x"] {
            assert!(ids.contains(n), "missing {n}");
        }
    }

    #[test]
    fn subtree_sizes_match_collector_count() {
        let spec = sample_spec();
        let sites = collect_sites(&spec);
        let total: u32 = spec
            .facts
            .iter()
            .flat_map(|f| f.body.iter())
            .map(subtree_size_formula)
            .chain(
                spec.preds
                    .iter()
                    .flat_map(|p| p.body.iter())
                    .map(subtree_size_formula),
            )
            .chain(spec.funs.iter().map(|f| subtree_size_expr(&f.body)))
            .chain(
                spec.asserts
                    .iter()
                    .flat_map(|a| a.body.iter())
                    .map(subtree_size_formula),
            )
            .sum();
        assert_eq!(total as usize, sites.len());
    }
}
