//! Traversal, node addressing and rewriting utilities.
//!
//! Every formula and expression node in a [`Spec`] is assigned a stable
//! [`NodeId`] by a deterministic pre-order traversal over facts, predicates,
//! functions and assertions. The mutation and repair crates address nodes by
//! id: [`collect_sites`] enumerates them together with scope information, and
//! [`replace_node`] rebuilds a specification with one node swapped out.

use crate::ast::*;
use std::collections::BTreeSet;

/// A stable identifier for a formula or expression node within a [`Spec`].
///
/// Ids are assigned in pre-order; they are stable across clones of the same
/// specification but change if the specification is structurally edited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// The kind of declaration owning a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OwnerKind {
    /// A `fact` body.
    Fact,
    /// A `pred` body.
    Pred,
    /// A `fun` body.
    Fun,
    /// An `assert` body.
    Assert,
}

/// A node discovered by [`collect_sites`], with enough context for the
/// mutation operators to synthesize well-scoped replacements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSite {
    /// The node's id.
    pub id: NodeId,
    /// `true` for formula nodes, `false` for expression nodes.
    pub is_formula: bool,
    /// Source span of the node (synthetic for generated nodes).
    pub span: Span,
    /// Nesting depth below the owning declaration body (0 = top of body).
    pub depth: u16,
    /// Owning declaration kind and its index in the spec.
    pub owner: (OwnerKind, usize),
    /// Names of quantified variables, parameters and let-bindings in scope.
    pub vars_in_scope: Vec<String>,
}

/// A replacement payload for [`replace_node`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeRepl {
    /// Replace a formula node.
    Formula(Formula),
    /// Replace an expression node.
    Expr(Expr),
}

// ------------------------------------------------------------------ strip

/// Returns a copy of the expression with all spans set to synthetic.
pub fn strip_expr_spans(e: &Expr) -> Expr {
    let s = Span::synthetic();
    match e {
        Expr::Ident(n, _) => Expr::Ident(n.clone(), s),
        Expr::Univ(_) => Expr::Univ(s),
        Expr::Iden(_) => Expr::Iden(s),
        Expr::None(_) => Expr::None(s),
        Expr::Unary(op, inner, _) => Expr::Unary(*op, Box::new(strip_expr_spans(inner)), s),
        Expr::Binary(op, l, r, _) => Expr::Binary(
            *op,
            Box::new(strip_expr_spans(l)),
            Box::new(strip_expr_spans(r)),
            s,
        ),
        Expr::Comprehension(d, f, _) => Expr::Comprehension(
            d.iter().map(strip_var_decl).collect(),
            Box::new(strip_formula_spans(f)),
            s,
        ),
        Expr::IfThenElse(c, t, e2, _) => Expr::IfThenElse(
            Box::new(strip_formula_spans(c)),
            Box::new(strip_expr_spans(t)),
            Box::new(strip_expr_spans(e2)),
            s,
        ),
        Expr::FunCall(n, args, _) => {
            Expr::FunCall(n.clone(), args.iter().map(strip_expr_spans).collect(), s)
        }
    }
}

fn strip_var_decl(d: &VarDecl) -> VarDecl {
    VarDecl {
        name: d.name.clone(),
        bound: strip_expr_spans(&d.bound),
        span: Span::synthetic(),
    }
}

fn strip_int_spans(i: &IntExpr) -> IntExpr {
    let s = Span::synthetic();
    match i {
        IntExpr::Card(e, _) => IntExpr::Card(Box::new(strip_expr_spans(e)), s),
        IntExpr::Lit(n, _) => IntExpr::Lit(*n, s),
    }
}

/// Returns a copy of the formula with all spans set to synthetic.
pub fn strip_formula_spans(f: &Formula) -> Formula {
    let s = Span::synthetic();
    match f {
        Formula::Compare(op, l, r, _) => Formula::Compare(
            *op,
            Box::new(strip_expr_spans(l)),
            Box::new(strip_expr_spans(r)),
            s,
        ),
        Formula::IntCompare(op, l, r, _) => Formula::IntCompare(
            *op,
            Box::new(strip_int_spans(l)),
            Box::new(strip_int_spans(r)),
            s,
        ),
        Formula::Mult(op, e, _) => Formula::Mult(*op, Box::new(strip_expr_spans(e)), s),
        Formula::Not(inner, _) => Formula::Not(Box::new(strip_formula_spans(inner)), s),
        Formula::Binary(op, l, r, _) => Formula::Binary(
            *op,
            Box::new(strip_formula_spans(l)),
            Box::new(strip_formula_spans(r)),
            s,
        ),
        Formula::Quant(q, d, body, _) => Formula::Quant(
            *q,
            d.iter().map(strip_var_decl).collect(),
            Box::new(strip_formula_spans(body)),
            s,
        ),
        Formula::Let(n, e, body, _) => Formula::Let(
            n.clone(),
            Box::new(strip_expr_spans(e)),
            Box::new(strip_formula_spans(body)),
            s,
        ),
        Formula::PredCall(n, args, _) => {
            Formula::PredCall(n.clone(), args.iter().map(strip_expr_spans).collect(), s)
        }
    }
}

/// Returns a copy of the spec with all spans set to synthetic.
pub fn strip_spec_spans(spec: &Spec) -> Spec {
    let s = Span::synthetic();
    Spec {
        module: spec.module.clone(),
        sigs: spec
            .sigs
            .iter()
            .map(|sig| SigDecl {
                name: sig.name.clone(),
                is_abstract: sig.is_abstract,
                mult: sig.mult,
                parent: sig.parent.clone(),
                fields: sig
                    .fields
                    .iter()
                    .map(|f| FieldDecl {
                        name: f.name.clone(),
                        cols: f.cols.clone(),
                        mult: f.mult,
                        span: s,
                    })
                    .collect(),
                span: s,
            })
            .collect(),
        facts: spec
            .facts
            .iter()
            .map(|f| Fact {
                name: f.name.clone(),
                body: f.body.iter().map(strip_formula_spans).collect(),
                span: s,
            })
            .collect(),
        preds: spec
            .preds
            .iter()
            .map(|p| PredDecl {
                name: p.name.clone(),
                params: p
                    .params
                    .iter()
                    .map(|q| Param {
                        name: q.name.clone(),
                        bound: strip_expr_spans(&q.bound),
                        span: s,
                    })
                    .collect(),
                body: p.body.iter().map(strip_formula_spans).collect(),
                span: s,
            })
            .collect(),
        funs: spec
            .funs
            .iter()
            .map(|f| FunDecl {
                name: f.name.clone(),
                params: f
                    .params
                    .iter()
                    .map(|q| Param {
                        name: q.name.clone(),
                        bound: strip_expr_spans(&q.bound),
                        span: s,
                    })
                    .collect(),
                result_mult: f.result_mult,
                result: strip_expr_spans(&f.result),
                body: strip_expr_spans(&f.body),
                span: s,
            })
            .collect(),
        asserts: spec
            .asserts
            .iter()
            .map(|a| AssertDecl {
                name: a.name.clone(),
                body: a.body.iter().map(strip_formula_spans).collect(),
                span: s,
            })
            .collect(),
        commands: spec
            .commands
            .iter()
            .map(|c| Command {
                kind: c.kind.clone(),
                scope: c.scope,
                expect: c.expect,
                span: s,
            })
            .collect(),
    }
}

// ---------------------------------------------------------------- collect

struct Collector {
    next: u32,
    sites: Vec<NodeSite>,
    scope: Vec<String>,
    owner: (OwnerKind, usize),
}

impl Collector {
    fn fresh(&mut self) -> NodeId {
        let id = NodeId(self.next);
        self.next += 1;
        id
    }

    fn push_site(&mut self, id: NodeId, is_formula: bool, span: Span, depth: u16) {
        self.sites.push(NodeSite {
            id,
            is_formula,
            span,
            depth,
            owner: self.owner,
            vars_in_scope: self.scope.clone(),
        });
    }

    fn formula(&mut self, f: &Formula, depth: u16) {
        let id = self.fresh();
        self.push_site(id, true, f.span(), depth);
        match f {
            Formula::Compare(_, l, r, _) => {
                self.expr(l, depth + 1);
                self.expr(r, depth + 1);
            }
            Formula::IntCompare(_, l, r, _) => {
                self.int(l, depth + 1);
                self.int(r, depth + 1);
            }
            Formula::Mult(_, e, _) => self.expr(e, depth + 1),
            Formula::Not(inner, _) => self.formula(inner, depth + 1),
            Formula::Binary(_, l, r, _) => {
                self.formula(l, depth + 1);
                self.formula(r, depth + 1);
            }
            Formula::Quant(_, decls, body, _) => {
                for d in decls {
                    self.expr(&d.bound, depth + 1);
                }
                let added = decls.len();
                for d in decls {
                    self.scope.push(d.name.clone());
                }
                self.formula(body, depth + 1);
                self.scope.truncate(self.scope.len() - added);
            }
            Formula::Let(name, e, body, _) => {
                self.expr(e, depth + 1);
                self.scope.push(name.clone());
                self.formula(body, depth + 1);
                self.scope.pop();
            }
            Formula::PredCall(_, args, _) => {
                for a in args {
                    self.expr(a, depth + 1);
                }
            }
        }
    }

    fn int(&mut self, i: &IntExpr, depth: u16) {
        if let IntExpr::Card(e, _) = i {
            self.expr(e, depth);
        }
    }

    fn expr(&mut self, e: &Expr, depth: u16) {
        let id = self.fresh();
        self.push_site(id, false, e.span(), depth);
        match e {
            Expr::Ident(_, _) | Expr::Univ(_) | Expr::Iden(_) | Expr::None(_) => {}
            Expr::Unary(_, inner, _) => self.expr(inner, depth + 1),
            Expr::Binary(_, l, r, _) => {
                self.expr(l, depth + 1);
                self.expr(r, depth + 1);
            }
            Expr::Comprehension(decls, body, _) => {
                for d in decls {
                    self.expr(&d.bound, depth + 1);
                }
                let added = decls.len();
                for d in decls {
                    self.scope.push(d.name.clone());
                }
                self.formula(body, depth + 1);
                self.scope.truncate(self.scope.len() - added);
            }
            Expr::IfThenElse(c, t, f, _) => {
                self.formula(c, depth + 1);
                self.expr(t, depth + 1);
                self.expr(f, depth + 1);
            }
            Expr::FunCall(_, args, _) => {
                for a in args {
                    self.expr(a, depth + 1);
                }
            }
        }
    }
}

/// Enumerates all formula and expression nodes of the specification in the
/// canonical pre-order (facts, then predicates, then functions, then
/// assertions), together with their scopes.
pub fn collect_sites(spec: &Spec) -> Vec<NodeSite> {
    let mut c = Collector {
        next: 0,
        sites: Vec::new(),
        scope: Vec::new(),
        owner: (OwnerKind::Fact, 0),
    };
    for (i, fact) in spec.facts.iter().enumerate() {
        c.owner = (OwnerKind::Fact, i);
        for f in &fact.body {
            c.formula(f, 0);
        }
    }
    for (i, pred) in spec.preds.iter().enumerate() {
        c.owner = (OwnerKind::Pred, i);
        c.scope = pred.params.iter().map(|p| p.name.clone()).collect();
        for f in &pred.body {
            c.formula(f, 0);
        }
        c.scope.clear();
    }
    for (i, fun) in spec.funs.iter().enumerate() {
        c.owner = (OwnerKind::Fun, i);
        c.scope = fun.params.iter().map(|p| p.name.clone()).collect();
        c.expr(&fun.body, 0);
        c.scope.clear();
    }
    for (i, a) in spec.asserts.iter().enumerate() {
        c.owner = (OwnerKind::Assert, i);
        for f in &a.body {
            c.formula(f, 0);
        }
    }
    c.sites
}

// ---------------------------------------------------------------- replace

struct Rebuilder {
    next: u32,
    target: u32,
    repl: Option<NodeRepl>,
    /// Set when the target id was found but had the wrong node kind.
    kind_mismatch: bool,
}

impl Rebuilder {
    fn formula(&mut self, f: &Formula) -> Formula {
        let my_id = self.next;
        self.next += 1;
        if my_id == self.target {
            match self.repl.take() {
                Some(NodeRepl::Formula(nf)) => {
                    // Skip the ids the original subtree would have consumed.
                    self.next += subtree_size_formula(f) - 1;
                    return nf;
                }
                Some(other) => {
                    self.kind_mismatch = true;
                    self.repl = Some(other);
                }
                None => {}
            }
        }
        match f {
            Formula::Compare(op, l, r, s) => {
                let l2 = self.expr(l);
                let r2 = self.expr(r);
                Formula::Compare(*op, Box::new(l2), Box::new(r2), *s)
            }
            Formula::IntCompare(op, l, r, s) => {
                let l2 = self.int(l);
                let r2 = self.int(r);
                Formula::IntCompare(*op, Box::new(l2), Box::new(r2), *s)
            }
            Formula::Mult(op, e, s) => Formula::Mult(*op, Box::new(self.expr(e)), *s),
            Formula::Not(inner, s) => Formula::Not(Box::new(self.formula(inner)), *s),
            Formula::Binary(op, l, r, s) => {
                let l2 = self.formula(l);
                let r2 = self.formula(r);
                Formula::Binary(*op, Box::new(l2), Box::new(r2), *s)
            }
            Formula::Quant(q, decls, body, s) => {
                let decls2: Vec<VarDecl> = decls
                    .iter()
                    .map(|d| VarDecl {
                        name: d.name.clone(),
                        bound: self.expr(&d.bound),
                        span: d.span,
                    })
                    .collect();
                let body2 = self.formula(body);
                Formula::Quant(*q, decls2, Box::new(body2), *s)
            }
            Formula::Let(n, e, body, s) => {
                let e2 = self.expr(e);
                let body2 = self.formula(body);
                Formula::Let(n.clone(), Box::new(e2), Box::new(body2), *s)
            }
            Formula::PredCall(n, args, s) => {
                let args2 = args.iter().map(|a| self.expr(a)).collect();
                Formula::PredCall(n.clone(), args2, *s)
            }
        }
    }

    fn int(&mut self, i: &IntExpr) -> IntExpr {
        match i {
            IntExpr::Card(e, s) => IntExpr::Card(Box::new(self.expr(e)), *s),
            IntExpr::Lit(n, s) => IntExpr::Lit(*n, *s),
        }
    }

    fn expr(&mut self, e: &Expr) -> Expr {
        let my_id = self.next;
        self.next += 1;
        if my_id == self.target {
            match self.repl.take() {
                Some(NodeRepl::Expr(ne)) => {
                    self.next += subtree_size_expr(e) - 1;
                    return ne;
                }
                Some(other) => {
                    self.kind_mismatch = true;
                    self.repl = Some(other);
                }
                None => {}
            }
        }
        match e {
            Expr::Ident(n, s) => Expr::Ident(n.clone(), *s),
            Expr::Univ(s) => Expr::Univ(*s),
            Expr::Iden(s) => Expr::Iden(*s),
            Expr::None(s) => Expr::None(*s),
            Expr::Unary(op, inner, s) => Expr::Unary(*op, Box::new(self.expr(inner)), *s),
            Expr::Binary(op, l, r, s) => {
                let l2 = self.expr(l);
                let r2 = self.expr(r);
                Expr::Binary(*op, Box::new(l2), Box::new(r2), *s)
            }
            Expr::Comprehension(decls, body, s) => {
                let decls2: Vec<VarDecl> = decls
                    .iter()
                    .map(|d| VarDecl {
                        name: d.name.clone(),
                        bound: self.expr(&d.bound),
                        span: d.span,
                    })
                    .collect();
                let body2 = self.formula(body);
                Expr::Comprehension(decls2, Box::new(body2), *s)
            }
            Expr::IfThenElse(c, t, f, s) => {
                let c2 = self.formula(c);
                let t2 = self.expr(t);
                let f2 = self.expr(f);
                Expr::IfThenElse(Box::new(c2), Box::new(t2), Box::new(f2), *s)
            }
            Expr::FunCall(n, args, s) => {
                let args2 = args.iter().map(|a| self.expr(a)).collect();
                Expr::FunCall(n.clone(), args2, *s)
            }
        }
    }
}

/// Number of formula/expression nodes in the subtree rooted at `f`.
pub fn subtree_size_formula(f: &Formula) -> u32 {
    1 + match f {
        Formula::Compare(_, l, r, _) => subtree_size_expr(l) + subtree_size_expr(r),
        Formula::IntCompare(_, l, r, _) => subtree_size_int(l) + subtree_size_int(r),
        Formula::Mult(_, e, _) => subtree_size_expr(e),
        Formula::Not(inner, _) => subtree_size_formula(inner),
        Formula::Binary(_, l, r, _) => subtree_size_formula(l) + subtree_size_formula(r),
        Formula::Quant(_, decls, body, _) => {
            decls
                .iter()
                .map(|d| subtree_size_expr(&d.bound))
                .sum::<u32>()
                + subtree_size_formula(body)
        }
        Formula::Let(_, e, body, _) => subtree_size_expr(e) + subtree_size_formula(body),
        Formula::PredCall(_, args, _) => args.iter().map(subtree_size_expr).sum(),
    }
}

fn subtree_size_int(i: &IntExpr) -> u32 {
    match i {
        IntExpr::Card(e, _) => subtree_size_expr(e),
        IntExpr::Lit(_, _) => 0,
    }
}

/// Number of formula/expression nodes in the subtree rooted at `e`.
pub fn subtree_size_expr(e: &Expr) -> u32 {
    1 + match e {
        Expr::Ident(_, _) | Expr::Univ(_) | Expr::Iden(_) | Expr::None(_) => 0,
        Expr::Unary(_, inner, _) => subtree_size_expr(inner),
        Expr::Binary(_, l, r, _) => subtree_size_expr(l) + subtree_size_expr(r),
        Expr::Comprehension(decls, body, _) => {
            decls
                .iter()
                .map(|d| subtree_size_expr(&d.bound))
                .sum::<u32>()
                + subtree_size_formula(body)
        }
        Expr::IfThenElse(c, t, f, _) => {
            subtree_size_formula(c) + subtree_size_expr(t) + subtree_size_expr(f)
        }
        Expr::FunCall(_, args, _) => args.iter().map(subtree_size_expr).sum(),
    }
}

/// Retrieves a clone of the node with the given id, wrapped in the same
/// payload type [`replace_node`] accepts.
pub fn node_at(spec: &Spec, id: NodeId) -> Option<NodeRepl> {
    struct Finder {
        next: u32,
        target: u32,
        found: Option<NodeRepl>,
    }
    impl Finder {
        fn formula(&mut self, f: &Formula) {
            if self.found.is_some() {
                return;
            }
            let my = self.next;
            self.next += 1;
            if my == self.target {
                self.found = Some(NodeRepl::Formula(f.clone()));
                return;
            }
            match f {
                Formula::Compare(_, l, r, _) => {
                    self.expr(l);
                    self.expr(r);
                }
                Formula::IntCompare(_, l, r, _) => {
                    for i in [l.as_ref(), r.as_ref()] {
                        if let IntExpr::Card(e, _) = i {
                            self.expr(e);
                        }
                    }
                }
                Formula::Mult(_, e, _) => self.expr(e),
                Formula::Not(x, _) => self.formula(x),
                Formula::Binary(_, l, r, _) => {
                    self.formula(l);
                    self.formula(r);
                }
                Formula::Quant(_, d, b, _) => {
                    for v in d {
                        self.expr(&v.bound);
                    }
                    self.formula(b);
                }
                Formula::Let(_, e, b, _) => {
                    self.expr(e);
                    self.formula(b);
                }
                Formula::PredCall(_, a, _) => {
                    for x in a {
                        self.expr(x);
                    }
                }
            }
        }
        fn expr(&mut self, e: &Expr) {
            if self.found.is_some() {
                return;
            }
            let my = self.next;
            self.next += 1;
            if my == self.target {
                self.found = Some(NodeRepl::Expr(e.clone()));
                return;
            }
            match e {
                Expr::Ident(_, _) | Expr::Univ(_) | Expr::Iden(_) | Expr::None(_) => {}
                Expr::Unary(_, i, _) => self.expr(i),
                Expr::Binary(_, l, r, _) => {
                    self.expr(l);
                    self.expr(r);
                }
                Expr::Comprehension(d, b, _) => {
                    for v in d {
                        self.expr(&v.bound);
                    }
                    self.formula(b);
                }
                Expr::IfThenElse(c, t, f, _) => {
                    self.formula(c);
                    self.expr(t);
                    self.expr(f);
                }
                Expr::FunCall(_, a, _) => {
                    for x in a {
                        self.expr(x);
                    }
                }
            }
        }
    }
    let mut fd = Finder {
        next: 0,
        target: id.0,
        found: None,
    };
    for fact in &spec.facts {
        for f in &fact.body {
            fd.formula(f);
        }
    }
    for p in &spec.preds {
        for f in &p.body {
            fd.formula(f);
        }
    }
    for fun in &spec.funs {
        fd.expr(&fun.body);
    }
    for a in &spec.asserts {
        for f in &a.body {
            fd.formula(f);
        }
    }
    fd.found
}

/// Rebuilds the specification with the node identified by `id` replaced.
///
/// Returns `None` if the id does not exist or the replacement kind does not
/// match the node kind.
pub fn replace_node(spec: &Spec, id: NodeId, repl: NodeRepl) -> Option<Spec> {
    let mut rb = Rebuilder {
        next: 0,
        target: id.0,
        repl: Some(repl),
        kind_mismatch: false,
    };
    let mut out = spec.clone();
    for fact in &mut out.facts {
        fact.body = fact.body.iter().map(|f| rb.formula(f)).collect();
    }
    for pred in &mut out.preds {
        pred.body = pred.body.iter().map(|f| rb.formula(f)).collect();
    }
    for fun in &mut out.funs {
        fun.body = rb.expr(&fun.body);
    }
    for a in &mut out.asserts {
        a.body = a.body.iter().map(|f| rb.formula(f)).collect();
    }
    if rb.repl.is_none() && !rb.kind_mismatch {
        Some(out)
    } else {
        None
    }
}

// ------------------------------------------------------------ substitution

/// Capture-naive substitution of free identifiers in an expression.
///
/// Bound variables shadow substitutions of the same name. Adequate for
/// predicate/function inlining where arguments are fresh with respect to the
/// body's binders (the elaborator freshens clashing binders first).
pub fn subst_expr(e: &Expr, map: &std::collections::HashMap<String, Expr>) -> Expr {
    match e {
        Expr::Ident(n, s) => match map.get(n) {
            Some(repl) => repl.clone(),
            None => Expr::Ident(n.clone(), *s),
        },
        Expr::Univ(s) => Expr::Univ(*s),
        Expr::Iden(s) => Expr::Iden(*s),
        Expr::None(s) => Expr::None(*s),
        Expr::Unary(op, inner, s) => Expr::Unary(*op, Box::new(subst_expr(inner, map)), *s),
        Expr::Binary(op, l, r, s) => Expr::Binary(
            *op,
            Box::new(subst_expr(l, map)),
            Box::new(subst_expr(r, map)),
            *s,
        ),
        Expr::Comprehension(decls, body, s) => {
            let mut inner_map = map.clone();
            let decls2: Vec<VarDecl> = decls
                .iter()
                .map(|d| VarDecl {
                    name: d.name.clone(),
                    bound: subst_expr(&d.bound, &inner_map),
                    span: d.span,
                })
                .collect();
            for d in decls {
                inner_map.remove(&d.name);
            }
            Expr::Comprehension(decls2, Box::new(subst_formula(body, &inner_map)), *s)
        }
        Expr::IfThenElse(c, t, f, s) => Expr::IfThenElse(
            Box::new(subst_formula(c, map)),
            Box::new(subst_expr(t, map)),
            Box::new(subst_expr(f, map)),
            *s,
        ),
        Expr::FunCall(n, args, s) => Expr::FunCall(
            n.clone(),
            args.iter().map(|a| subst_expr(a, map)).collect(),
            *s,
        ),
    }
}

/// Capture-naive substitution of free identifiers in a formula.
///
/// See [`subst_expr`] for the capture caveat.
pub fn subst_formula(f: &Formula, map: &std::collections::HashMap<String, Expr>) -> Formula {
    match f {
        Formula::Compare(op, l, r, s) => Formula::Compare(
            *op,
            Box::new(subst_expr(l, map)),
            Box::new(subst_expr(r, map)),
            *s,
        ),
        Formula::IntCompare(op, l, r, s) => {
            let sub_int = |i: &IntExpr| match i {
                IntExpr::Card(e, sp) => IntExpr::Card(Box::new(subst_expr(e, map)), *sp),
                IntExpr::Lit(n, sp) => IntExpr::Lit(*n, *sp),
            };
            Formula::IntCompare(*op, Box::new(sub_int(l)), Box::new(sub_int(r)), *s)
        }
        Formula::Mult(op, e, s) => Formula::Mult(*op, Box::new(subst_expr(e, map)), *s),
        Formula::Not(inner, s) => Formula::Not(Box::new(subst_formula(inner, map)), *s),
        Formula::Binary(op, l, r, s) => Formula::Binary(
            *op,
            Box::new(subst_formula(l, map)),
            Box::new(subst_formula(r, map)),
            *s,
        ),
        Formula::Quant(q, decls, body, s) => {
            let mut inner_map = map.clone();
            let decls2: Vec<VarDecl> = decls
                .iter()
                .map(|d| VarDecl {
                    name: d.name.clone(),
                    bound: subst_expr(&d.bound, &inner_map),
                    span: d.span,
                })
                .collect();
            for d in decls {
                inner_map.remove(&d.name);
            }
            Formula::Quant(*q, decls2, Box::new(subst_formula(body, &inner_map)), *s)
        }
        Formula::Let(n, e, body, s) => {
            let e2 = subst_expr(e, map);
            let mut inner_map = map.clone();
            inner_map.remove(n);
            Formula::Let(
                n.clone(),
                Box::new(e2),
                Box::new(subst_formula(body, &inner_map)),
                *s,
            )
        }
        Formula::PredCall(n, args, s) => Formula::PredCall(
            n.clone(),
            args.iter().map(|a| subst_expr(a, map)).collect(),
            *s,
        ),
    }
}

// ------------------------------------------------------------- vocabulary

/// Collects all identifiers referenced in a formula (free and bound).
pub fn idents_in_formula(f: &Formula, out: &mut BTreeSet<String>) {
    match f {
        Formula::Compare(_, l, r, _) => {
            idents_in_expr(l, out);
            idents_in_expr(r, out);
        }
        Formula::IntCompare(_, l, r, _) => {
            for i in [l.as_ref(), r.as_ref()] {
                if let IntExpr::Card(e, _) = i {
                    idents_in_expr(e, out);
                }
            }
        }
        Formula::Mult(_, e, _) => idents_in_expr(e, out),
        Formula::Not(inner, _) => idents_in_formula(inner, out),
        Formula::Binary(_, l, r, _) => {
            idents_in_formula(l, out);
            idents_in_formula(r, out);
        }
        Formula::Quant(_, decls, body, _) => {
            for d in decls {
                idents_in_expr(&d.bound, out);
            }
            idents_in_formula(body, out);
        }
        Formula::Let(_, e, body, _) => {
            idents_in_expr(e, out);
            idents_in_formula(body, out);
        }
        Formula::PredCall(n, args, _) => {
            out.insert(n.clone());
            for a in args {
                idents_in_expr(a, out);
            }
        }
    }
}

/// Collects all identifiers referenced in an expression.
pub fn idents_in_expr(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Ident(n, _) => {
            out.insert(n.clone());
        }
        Expr::Univ(_) | Expr::Iden(_) | Expr::None(_) => {}
        Expr::Unary(_, inner, _) => idents_in_expr(inner, out),
        Expr::Binary(_, l, r, _) => {
            idents_in_expr(l, out);
            idents_in_expr(r, out);
        }
        Expr::Comprehension(decls, body, _) => {
            for d in decls {
                idents_in_expr(&d.bound, out);
            }
            idents_in_formula(body, out);
        }
        Expr::IfThenElse(c, t, f, _) => {
            idents_in_formula(c, out);
            idents_in_expr(t, out);
            idents_in_expr(f, out);
        }
        Expr::FunCall(n, args, _) => {
            out.insert(n.clone());
            for a in args {
                idents_in_expr(a, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_formula, parse_spec};

    fn sample_spec() -> Spec {
        parse_spec(
            "sig A { f: set A }\n\
             fact Inv { all x: A | x in x.f }\n\
             pred p[a: A] { some a.f }\n\
             fun g[a: A]: set A { a.f }\n\
             assert Q { no A }\n\
             check Q for 3",
        )
        .unwrap()
    }

    #[test]
    fn collect_assigns_contiguous_ids() {
        let spec = sample_spec();
        let sites = collect_sites(&spec);
        for (i, s) in sites.iter().enumerate() {
            assert_eq!(s.id.0 as usize, i);
        }
        assert!(sites.len() > 8);
    }

    #[test]
    fn scope_tracking_includes_params_and_binders() {
        let spec = sample_spec();
        let sites = collect_sites(&spec);
        // The deepest node under the quantifier should see `x` in scope.
        let in_fact: Vec<_> = sites
            .iter()
            .filter(|s| s.owner.0 == OwnerKind::Fact)
            .collect();
        assert!(in_fact
            .iter()
            .any(|s| s.vars_in_scope.contains(&"x".to_string())));
        let in_pred: Vec<_> = sites
            .iter()
            .filter(|s| s.owner.0 == OwnerKind::Pred)
            .collect();
        assert!(in_pred
            .iter()
            .all(|s| s.vars_in_scope.contains(&"a".to_string())));
    }

    #[test]
    fn replace_identity_preserves_spec() {
        let spec = sample_spec();
        let sites = collect_sites(&spec);
        for site in &sites {
            let repl = if site.is_formula {
                let f = get_formula_by_id(&spec, site.id).unwrap();
                NodeRepl::Formula(f)
            } else {
                let e = get_expr_by_id(&spec, site.id).unwrap();
                NodeRepl::Expr(e)
            };
            let out = replace_node(&spec, site.id, repl).unwrap();
            assert_eq!(strip_spec_spans(&out), strip_spec_spans(&spec));
        }
    }

    // Test helpers retrieving nodes by id via the collector order.
    fn get_formula_by_id(spec: &Spec, id: NodeId) -> Option<Formula> {
        struct Finder {
            next: u32,
            target: u32,
            found: Option<Formula>,
        }
        impl Finder {
            fn formula(&mut self, f: &Formula) {
                let my = self.next;
                self.next += 1;
                if my == self.target {
                    self.found = Some(f.clone());
                    return;
                }
                match f {
                    Formula::Compare(_, l, r, _) => {
                        self.expr(l);
                        self.expr(r);
                    }
                    Formula::IntCompare(_, l, r, _) => {
                        for i in [l.as_ref(), r.as_ref()] {
                            if let IntExpr::Card(e, _) = i {
                                self.expr(e);
                            }
                        }
                    }
                    Formula::Mult(_, e, _) => self.expr(e),
                    Formula::Not(x, _) => self.formula(x),
                    Formula::Binary(_, l, r, _) => {
                        self.formula(l);
                        self.formula(r);
                    }
                    Formula::Quant(_, d, b, _) => {
                        for v in d {
                            self.expr(&v.bound);
                        }
                        self.formula(b);
                    }
                    Formula::Let(_, e, b, _) => {
                        self.expr(e);
                        self.formula(b);
                    }
                    Formula::PredCall(_, a, _) => {
                        for x in a {
                            self.expr(x);
                        }
                    }
                }
            }
            fn expr(&mut self, e: &Expr) {
                self.next += 1;
                match e {
                    Expr::Ident(_, _) | Expr::Univ(_) | Expr::Iden(_) | Expr::None(_) => {}
                    Expr::Unary(_, i, _) => self.expr(i),
                    Expr::Binary(_, l, r, _) => {
                        self.expr(l);
                        self.expr(r);
                    }
                    Expr::Comprehension(d, b, _) => {
                        for v in d {
                            self.expr(&v.bound);
                        }
                        self.formula(b);
                    }
                    Expr::IfThenElse(c, t, f, _) => {
                        self.formula(c);
                        self.expr(t);
                        self.expr(f);
                    }
                    Expr::FunCall(_, a, _) => {
                        for x in a {
                            self.expr(x);
                        }
                    }
                }
            }
        }
        let mut fd = Finder {
            next: 0,
            target: id.0,
            found: None,
        };
        for fact in &spec.facts {
            for f in &fact.body {
                fd.formula(f);
            }
        }
        for p in &spec.preds {
            for f in &p.body {
                fd.formula(f);
            }
        }
        for fun in &spec.funs {
            fd.expr(&fun.body);
        }
        for a in &spec.asserts {
            for f in &a.body {
                fd.formula(f);
            }
        }
        fd.found
    }

    fn get_expr_by_id(spec: &Spec, id: NodeId) -> Option<Expr> {
        // Reuse replace_node with a sentinel to extract: simpler approach —
        // replace with a marker and diff. For tests, re-walk via sites.
        struct Finder {
            next: u32,
            target: u32,
            found: Option<Expr>,
        }
        impl Finder {
            fn formula(&mut self, f: &Formula) {
                self.next += 1;
                match f {
                    Formula::Compare(_, l, r, _) => {
                        self.expr(l);
                        self.expr(r);
                    }
                    Formula::IntCompare(_, l, r, _) => {
                        for i in [l.as_ref(), r.as_ref()] {
                            if let IntExpr::Card(e, _) = i {
                                self.expr(e);
                            }
                        }
                    }
                    Formula::Mult(_, e, _) => self.expr(e),
                    Formula::Not(x, _) => self.formula(x),
                    Formula::Binary(_, l, r, _) => {
                        self.formula(l);
                        self.formula(r);
                    }
                    Formula::Quant(_, d, b, _) => {
                        for v in d {
                            self.expr(&v.bound);
                        }
                        self.formula(b);
                    }
                    Formula::Let(_, e, b, _) => {
                        self.expr(e);
                        self.formula(b);
                    }
                    Formula::PredCall(_, a, _) => {
                        for x in a {
                            self.expr(x);
                        }
                    }
                }
            }
            fn expr(&mut self, e: &Expr) {
                let my = self.next;
                self.next += 1;
                if my == self.target {
                    self.found = Some(e.clone());
                    return;
                }
                match e {
                    Expr::Ident(_, _) | Expr::Univ(_) | Expr::Iden(_) | Expr::None(_) => {}
                    Expr::Unary(_, i, _) => self.expr(i),
                    Expr::Binary(_, l, r, _) => {
                        self.expr(l);
                        self.expr(r);
                    }
                    Expr::Comprehension(d, b, _) => {
                        for v in d {
                            self.expr(&v.bound);
                        }
                        self.formula(b);
                    }
                    Expr::IfThenElse(c, t, f, _) => {
                        self.formula(c);
                        self.expr(t);
                        self.expr(f);
                    }
                    Expr::FunCall(_, a, _) => {
                        for x in a {
                            self.expr(x);
                        }
                    }
                }
            }
        }
        let mut fd = Finder {
            next: 0,
            target: id.0,
            found: None,
        };
        for fact in &spec.facts {
            for f in &fact.body {
                fd.formula(f);
            }
        }
        for p in &spec.preds {
            for f in &p.body {
                fd.formula(f);
            }
        }
        for fun in &spec.funs {
            fd.expr(&fun.body);
        }
        for a in &spec.asserts {
            for f in &a.body {
                fd.formula(f);
            }
        }
        fd.found
    }

    #[test]
    fn replace_formula_changes_only_target() {
        let spec = sample_spec();
        let sites = collect_sites(&spec);
        let target = sites
            .iter()
            .find(|s| s.is_formula && s.owner.0 == OwnerKind::Assert)
            .unwrap();
        let nf = parse_formula("some A").unwrap();
        let out = replace_node(&spec, target.id, NodeRepl::Formula(nf)).unwrap();
        assert_ne!(strip_spec_spans(&out), strip_spec_spans(&spec));
        // Fact unchanged.
        assert_eq!(
            strip_formula_spans(&out.facts[0].body[0]),
            strip_formula_spans(&spec.facts[0].body[0])
        );
    }

    #[test]
    fn replace_with_wrong_kind_returns_none() {
        let spec = sample_spec();
        let sites = collect_sites(&spec);
        let formula_site = sites.iter().find(|s| s.is_formula).unwrap();
        assert!(replace_node(&spec, formula_site.id, NodeRepl::Expr(Expr::ident("A"))).is_none());
    }

    #[test]
    fn replace_missing_id_returns_none() {
        let spec = sample_spec();
        assert!(replace_node(&spec, NodeId(9999), NodeRepl::Formula(Formula::truth())).is_none());
    }

    #[test]
    fn subst_respects_shadowing() {
        let f = parse_formula("all x: A | x in y.f").unwrap();
        let mut map = std::collections::HashMap::new();
        map.insert("x".to_string(), Expr::ident("Z"));
        map.insert("y".to_string(), Expr::ident("W"));
        let out = subst_formula(&f, &map);
        let mut ids = BTreeSet::new();
        idents_in_formula(&out, &mut ids);
        // Bound x survives; free y replaced by W.
        assert!(ids.contains("x"));
        assert!(ids.contains("W"));
        assert!(!ids.contains("y"));
        assert!(!ids.contains("Z"));
    }

    #[test]
    fn idents_collects_all_names() {
        let f = parse_formula("all x: A | x.f in B + C").unwrap();
        let mut ids = BTreeSet::new();
        idents_in_formula(&f, &mut ids);
        for n in ["A", "B", "C", "f", "x"] {
            assert!(ids.contains(n), "missing {n}");
        }
    }

    #[test]
    fn subtree_sizes_match_collector_count() {
        let spec = sample_spec();
        let sites = collect_sites(&spec);
        let total: u32 = spec
            .facts
            .iter()
            .flat_map(|f| f.body.iter())
            .map(subtree_size_formula)
            .chain(
                spec.preds
                    .iter()
                    .flat_map(|p| p.body.iter())
                    .map(subtree_size_formula),
            )
            .chain(spec.funs.iter().map(|f| subtree_size_expr(&f.body)))
            .chain(
                spec.asserts
                    .iter()
                    .flat_map(|a| a.body.iter())
                    .map(subtree_size_formula),
            )
            .sum();
        assert_eq!(total as usize, sites.len());
    }
}
