//! Visitor infrastructure and persistent node-id management for the μAlloy AST.
//!
//! This module owns the *canonical traversal order* of a [`Spec`]'s
//! addressable nodes — fact bodies, then predicate bodies, then function
//! bodies, then assertion bodies, each in pre-order — and exposes it through
//! a [`Visitor`]/[`VisitorMut`] trait pair in the style of `syn::visit`.
//! Everything that used to hand-roll this recursion ([`crate::walk`]'s site
//! collector and rewriter, the [`crate::printer`], span stripping, subtree
//! hashing) is now an instance of one of these traits, so the traversal
//! discipline is defined exactly once.
//!
//! # Persistent node identity
//!
//! Every [`Formula`]/[`Expr`] node carries a [`NodeId`] inside its [`Meta`]
//! slot. Ids are assigned **once**, at parse time, by [`assign_ids`] (dense
//! `0..n` in canonical pre-order) and are thereafter a persistent property of
//! the node: structural edits through [`crate::walk::replace_node`] keep the
//! ids of all untouched nodes and draw *fresh* ids — above the spec's
//! [`Spec::next_node_id`] high-water mark — for newly spliced subtrees. Freed
//! ids are never reused, so an id observed at any point in a spec's edit
//! history refers to at most one node, ever.

use crate::ast::*;

/// The kind of declaration owning a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OwnerKind {
    /// A `fact` body.
    Fact,
    /// A `pred` body.
    Pred,
    /// A `fun` body.
    Fun,
    /// An `assert` body.
    Assert,
}

// ----------------------------------------------------------------- Visitor

/// Read-only visitor over the addressable nodes of a spec.
///
/// Default method bodies delegate to the free `walk_*` functions, which
/// encode the canonical traversal order. Override a `visit_*` method to
/// intercept a node kind (call the matching `walk_*` yourself to descend);
/// override the `enter_*`/`exit_*` hooks to track scope.
pub trait Visitor {
    /// Visits every addressable node of the spec in canonical order.
    fn visit_spec(&mut self, spec: &Spec) {
        walk_spec(self, spec);
    }
    /// Visits a formula node.
    fn visit_formula(&mut self, f: &Formula) {
        walk_formula(self, f);
    }
    /// Visits an expression node.
    fn visit_expr(&mut self, e: &Expr) {
        walk_expr(self, e);
    }
    /// Visits an integer expression (not itself addressable; its embedded
    /// relational expressions are).
    fn visit_int_expr(&mut self, i: &IntExpr) {
        walk_int_expr(self, i);
    }
    /// Visits a quantifier/comprehension variable declaration (its bound).
    fn visit_var_decl(&mut self, d: &VarDecl) {
        walk_var_decl(self, d);
    }
    /// Called before a declaration body's formulas/expression are visited.
    fn enter_body(&mut self, _owner: OwnerKind, _index: usize, _params: &[Param]) {}
    /// Called after a declaration body has been visited.
    fn exit_body(&mut self, _owner: OwnerKind, _index: usize) {}
    /// Called after binder bounds are visited, before the body they scope.
    fn enter_binders(&mut self, _decls: &[VarDecl]) {}
    /// Called after a binder body has been visited.
    fn exit_binders(&mut self, _decls: &[VarDecl]) {}
    /// Called after a `let` binding's expression, before its body.
    fn enter_let(&mut self, _name: &str) {}
    /// Called after a `let` body has been visited.
    fn exit_let(&mut self, _name: &str) {}
}

/// Canonical spec traversal: fact bodies, pred bodies, fun bodies, assert
/// bodies. Parameter bounds, function result bounds, signatures and commands
/// are *not* part of the addressable surface.
pub fn walk_spec<V: Visitor + ?Sized>(v: &mut V, spec: &Spec) {
    for (i, fact) in spec.facts.iter().enumerate() {
        v.enter_body(OwnerKind::Fact, i, &[]);
        for f in &fact.body {
            v.visit_formula(f);
        }
        v.exit_body(OwnerKind::Fact, i);
    }
    for (i, pred) in spec.preds.iter().enumerate() {
        v.enter_body(OwnerKind::Pred, i, &pred.params);
        for f in &pred.body {
            v.visit_formula(f);
        }
        v.exit_body(OwnerKind::Pred, i);
    }
    for (i, fun) in spec.funs.iter().enumerate() {
        v.enter_body(OwnerKind::Fun, i, &fun.params);
        v.visit_expr(&fun.body);
        v.exit_body(OwnerKind::Fun, i);
    }
    for (i, a) in spec.asserts.iter().enumerate() {
        v.enter_body(OwnerKind::Assert, i, &[]);
        for f in &a.body {
            v.visit_formula(f);
        }
        v.exit_body(OwnerKind::Assert, i);
    }
}

/// Descends into the children of a formula node.
pub fn walk_formula<V: Visitor + ?Sized>(v: &mut V, f: &Formula) {
    match f {
        Formula::Compare(_, l, r, _) => {
            v.visit_expr(l);
            v.visit_expr(r);
        }
        Formula::IntCompare(_, l, r, _) => {
            v.visit_int_expr(l);
            v.visit_int_expr(r);
        }
        Formula::Mult(_, e, _) => v.visit_expr(e),
        Formula::Not(inner, _) => v.visit_formula(inner),
        Formula::Binary(_, l, r, _) => {
            v.visit_formula(l);
            v.visit_formula(r);
        }
        Formula::Quant(_, decls, body, _) => {
            for d in decls {
                v.visit_var_decl(d);
            }
            v.enter_binders(decls);
            v.visit_formula(body);
            v.exit_binders(decls);
        }
        Formula::Let(name, e, body, _) => {
            v.visit_expr(e);
            v.enter_let(name);
            v.visit_formula(body);
            v.exit_let(name);
        }
        Formula::PredCall(_, args, _) => {
            for a in args {
                v.visit_expr(a);
            }
        }
    }
}

/// Descends into the children of an expression node.
pub fn walk_expr<V: Visitor + ?Sized>(v: &mut V, e: &Expr) {
    match e {
        Expr::Ident(_, _) | Expr::Univ(_) | Expr::Iden(_) | Expr::None(_) => {}
        Expr::Unary(_, inner, _) => v.visit_expr(inner),
        Expr::Binary(_, l, r, _) => {
            v.visit_expr(l);
            v.visit_expr(r);
        }
        Expr::Comprehension(decls, body, _) => {
            for d in decls {
                v.visit_var_decl(d);
            }
            v.enter_binders(decls);
            v.visit_formula(body);
            v.exit_binders(decls);
        }
        Expr::IfThenElse(c, t, f, _) => {
            v.visit_formula(c);
            v.visit_expr(t);
            v.visit_expr(f);
        }
        Expr::FunCall(_, args, _) => {
            for a in args {
                v.visit_expr(a);
            }
        }
    }
}

/// Descends into the embedded expression of an integer expression.
pub fn walk_int_expr<V: Visitor + ?Sized>(v: &mut V, i: &IntExpr) {
    if let IntExpr::Card(e, _) = i {
        v.visit_expr(e);
    }
}

/// Visits a variable declaration's bound expression.
pub fn walk_var_decl<V: Visitor + ?Sized>(v: &mut V, d: &VarDecl) {
    v.visit_expr(&d.bound);
}

// -------------------------------------------------------------- VisitorMut

/// Mutable visitor over the addressable nodes of a spec.
///
/// Mirrors [`Visitor`]; used for the id assignment/freshening passes, span
/// normalization and node replacement.
pub trait VisitorMut {
    /// Visits every addressable node of the spec, mutably.
    fn visit_spec_mut(&mut self, spec: &mut Spec) {
        walk_spec_mut(self, spec);
    }
    /// Visits a formula node, mutably.
    fn visit_formula_mut(&mut self, f: &mut Formula) {
        walk_formula_mut(self, f);
    }
    /// Visits an expression node, mutably.
    fn visit_expr_mut(&mut self, e: &mut Expr) {
        walk_expr_mut(self, e);
    }
    /// Visits an integer expression, mutably.
    fn visit_int_expr_mut(&mut self, i: &mut IntExpr) {
        walk_int_expr_mut(self, i);
    }
    /// Visits a variable declaration, mutably.
    fn visit_var_decl_mut(&mut self, d: &mut VarDecl) {
        walk_var_decl_mut(self, d);
    }
    /// Called before a declaration body is visited.
    fn enter_body_mut(&mut self, _owner: OwnerKind, _index: usize) {}
    /// Called after a declaration body has been visited.
    fn exit_body_mut(&mut self, _owner: OwnerKind, _index: usize) {}
}

/// Mutable counterpart of [`walk_spec`]; same traversal order.
pub fn walk_spec_mut<V: VisitorMut + ?Sized>(v: &mut V, spec: &mut Spec) {
    for (i, fact) in spec.facts.iter_mut().enumerate() {
        v.enter_body_mut(OwnerKind::Fact, i);
        for f in &mut fact.body {
            v.visit_formula_mut(f);
        }
        v.exit_body_mut(OwnerKind::Fact, i);
    }
    for (i, pred) in spec.preds.iter_mut().enumerate() {
        v.enter_body_mut(OwnerKind::Pred, i);
        for f in &mut pred.body {
            v.visit_formula_mut(f);
        }
        v.exit_body_mut(OwnerKind::Pred, i);
    }
    for (i, fun) in spec.funs.iter_mut().enumerate() {
        v.enter_body_mut(OwnerKind::Fun, i);
        v.visit_expr_mut(&mut fun.body);
        v.exit_body_mut(OwnerKind::Fun, i);
    }
    for (i, a) in spec.asserts.iter_mut().enumerate() {
        v.enter_body_mut(OwnerKind::Assert, i);
        for f in &mut a.body {
            v.visit_formula_mut(f);
        }
        v.exit_body_mut(OwnerKind::Assert, i);
    }
}

/// Mutable counterpart of [`walk_formula`].
pub fn walk_formula_mut<V: VisitorMut + ?Sized>(v: &mut V, f: &mut Formula) {
    match f {
        Formula::Compare(_, l, r, _) => {
            v.visit_expr_mut(l);
            v.visit_expr_mut(r);
        }
        Formula::IntCompare(_, l, r, _) => {
            v.visit_int_expr_mut(l);
            v.visit_int_expr_mut(r);
        }
        Formula::Mult(_, e, _) => v.visit_expr_mut(e),
        Formula::Not(inner, _) => v.visit_formula_mut(inner),
        Formula::Binary(_, l, r, _) => {
            v.visit_formula_mut(l);
            v.visit_formula_mut(r);
        }
        Formula::Quant(_, decls, body, _) => {
            for d in decls.iter_mut() {
                v.visit_var_decl_mut(d);
            }
            v.visit_formula_mut(body);
        }
        Formula::Let(_, e, body, _) => {
            v.visit_expr_mut(e);
            v.visit_formula_mut(body);
        }
        Formula::PredCall(_, args, _) => {
            for a in args.iter_mut() {
                v.visit_expr_mut(a);
            }
        }
    }
}

/// Mutable counterpart of [`walk_expr`].
pub fn walk_expr_mut<V: VisitorMut + ?Sized>(v: &mut V, e: &mut Expr) {
    match e {
        Expr::Ident(_, _) | Expr::Univ(_) | Expr::Iden(_) | Expr::None(_) => {}
        Expr::Unary(_, inner, _) => v.visit_expr_mut(inner),
        Expr::Binary(_, l, r, _) => {
            v.visit_expr_mut(l);
            v.visit_expr_mut(r);
        }
        Expr::Comprehension(decls, body, _) => {
            for d in decls.iter_mut() {
                v.visit_var_decl_mut(d);
            }
            v.visit_formula_mut(body);
        }
        Expr::IfThenElse(c, t, f, _) => {
            v.visit_formula_mut(c);
            v.visit_expr_mut(t);
            v.visit_expr_mut(f);
        }
        Expr::FunCall(_, args, _) => {
            for a in args.iter_mut() {
                v.visit_expr_mut(a);
            }
        }
    }
}

/// Mutable counterpart of [`walk_int_expr`].
pub fn walk_int_expr_mut<V: VisitorMut + ?Sized>(v: &mut V, i: &mut IntExpr) {
    if let IntExpr::Card(e, _) = i {
        v.visit_expr_mut(e);
    }
}

/// Mutable counterpart of [`walk_var_decl`].
pub fn walk_var_decl_mut<V: VisitorMut + ?Sized>(v: &mut V, d: &mut VarDecl) {
    v.visit_expr_mut(&mut d.bound);
}

// ---------------------------------------------------------- id management

/// Monotone allocator of fresh [`NodeId`]s.
///
/// Ids only ever move forward; a generator seeded at a spec's
/// [`Spec::next_node_id`] high-water mark therefore never hands out an id
/// that has been used — or freed — at any point in that spec's history.
#[derive(Debug, Clone, Default)]
pub struct NodeIdGenerator {
    next: u32,
}

impl NodeIdGenerator {
    /// A generator starting at id 0.
    pub fn new() -> NodeIdGenerator {
        NodeIdGenerator { next: 0 }
    }

    /// A generator whose first handed-out id is `next`.
    pub fn starting_at(next: u32) -> NodeIdGenerator {
        NodeIdGenerator { next }
    }

    /// Allocates the next id.
    pub fn next_id(&mut self) -> NodeId {
        let id = NodeId(self.next);
        self.next += 1;
        id
    }

    /// One past the largest id this generator has handed out (or its seed).
    pub fn watermark(&self) -> u32 {
        self.next
    }
}

/// Assigns a fresh id from the generator to every node it visits.
struct IdAssigner<'a> {
    generator: &'a mut NodeIdGenerator,
}

impl VisitorMut for IdAssigner<'_> {
    fn visit_formula_mut(&mut self, f: &mut Formula) {
        f.meta_mut().id = self.generator.next_id();
        walk_formula_mut(self, f);
    }

    fn visit_expr_mut(&mut self, e: &mut Expr) {
        e.meta_mut().id = self.generator.next_id();
        walk_expr_mut(self, e);
    }
}

/// (Re)assigns dense pre-order ids `0..n` to every addressable node of the
/// spec and sets its [`Spec::next_node_id`] high-water mark to `n`.
///
/// This is the parse-time entry point; edits never call it (they preserve
/// existing ids and allocate fresh ones instead).
pub fn assign_ids(spec: &mut Spec) {
    let mut generator = NodeIdGenerator::new();
    let mut assigner = IdAssigner {
        generator: &mut generator,
    };
    assigner.visit_spec_mut(spec);
    spec.next_node_id = generator.watermark();
}

/// Gives every node in the formula subtree a fresh id from `generator`.
///
/// Used when splicing a synthesized (or cloned — hence possibly
/// duplicate-id) payload into a spec.
pub fn freshen_formula_ids(f: &mut Formula, generator: &mut NodeIdGenerator) {
    IdAssigner { generator }.visit_formula_mut(f);
}

/// Gives every node in the expression subtree a fresh id from `generator`.
pub fn freshen_expr_ids(e: &mut Expr, generator: &mut NodeIdGenerator) {
    IdAssigner { generator }.visit_expr_mut(e);
}

/// The largest assigned id in the spec, if any node carries one.
///
/// Robustness helper for specs built by hand or deserialized (ids are not
/// serialized): [`crate::walk::replace_node`] seeds its generator at
/// `max(next_node_id, max_assigned_id + 1)` so fresh ids never collide even
/// when the high-water mark was lost.
pub fn max_assigned_id(spec: &Spec) -> Option<u32> {
    struct MaxId {
        max: Option<u32>,
    }
    impl Visitor for MaxId {
        fn visit_formula(&mut self, f: &Formula) {
            if !f.id().is_unassigned() {
                self.max = Some(self.max.map_or(f.id().0, |m| m.max(f.id().0)));
            }
            walk_formula(self, f);
        }
        fn visit_expr(&mut self, e: &Expr) {
            if !e.id().is_unassigned() {
                self.max = Some(self.max.map_or(e.id().0, |m| m.max(e.id().0)));
            }
            walk_expr(self, e);
        }
    }
    let mut v = MaxId { max: None };
    v.visit_spec(spec);
    v.max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_spec;

    #[test]
    fn assign_ids_is_dense_preorder() {
        let spec = parse_spec(
            "sig A { f: set A }\n\
             fact Inv { all x: A | x in x.f }\n\
             pred p[a: A] { some a.f }\n\
             assert Safe { no none }\n\
             check Safe for 3",
        )
        .unwrap();
        // parse_spec already assigns; collect ids in traversal order.
        struct Ids(Vec<u32>);
        impl Visitor for Ids {
            fn visit_formula(&mut self, f: &Formula) {
                self.0.push(f.id().0);
                walk_formula(self, f);
            }
            fn visit_expr(&mut self, e: &Expr) {
                self.0.push(e.id().0);
                walk_expr(self, e);
            }
        }
        let mut v = Ids(Vec::new());
        v.visit_spec(&spec);
        let expect: Vec<u32> = (0..v.0.len() as u32).collect();
        assert_eq!(v.0, expect);
        assert_eq!(spec.next_node_id, v.0.len() as u32);
    }

    #[test]
    fn freshen_never_reuses_watermark() {
        let mut spec = parse_spec("fact { some univ }").unwrap();
        let watermark = spec.next_node_id;
        let mut generator = NodeIdGenerator::starting_at(watermark);
        let mut clone = spec.facts[0].body[0].clone();
        freshen_formula_ids(&mut clone, &mut generator);
        assert!(clone.id().0 >= watermark);
        spec.facts[0].body.push(clone);
        assert_eq!(max_assigned_id(&spec), Some(generator.watermark() - 1));
    }
}
