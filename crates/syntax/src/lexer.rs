//! Tokenizer for μAlloy source text.
//!
//! Supports line comments (`//` and `--`) and block comments (`/* … */`).
//! Tokens carry [`Span`]s into the original source.

use crate::ast::Span;
use crate::error::SyntaxError;
use std::fmt;

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword text.
    Ident(String),
    /// Non-negative integer literal.
    Int(i64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `|`
    Bar,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `&`
    Amp,
    /// `++`
    PlusPlus,
    /// `<:`
    DomRestrict,
    /// `:>`
    RanRestrict,
    /// `~`
    Tilde,
    /// `^`
    Caret,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `=<`
    Le,
    /// `>=`
    Ge,
    /// `#`
    Hash,
    /// `!`
    Bang,
    /// `&&`
    AmpAmp,
    /// `||`
    BarBar,
    /// `=>`
    FatArrow,
    /// `<=>`
    IffArrow,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(n) => write!(f, "integer `{n}`"),
            TokenKind::LBrace => f.write_str("`{`"),
            TokenKind::RBrace => f.write_str("`}`"),
            TokenKind::LBracket => f.write_str("`[`"),
            TokenKind::RBracket => f.write_str("`]`"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::Colon => f.write_str("`:`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::Bar => f.write_str("`|`"),
            TokenKind::Dot => f.write_str("`.`"),
            TokenKind::Arrow => f.write_str("`->`"),
            TokenKind::Plus => f.write_str("`+`"),
            TokenKind::Minus => f.write_str("`-`"),
            TokenKind::Amp => f.write_str("`&`"),
            TokenKind::PlusPlus => f.write_str("`++`"),
            TokenKind::DomRestrict => f.write_str("`<:`"),
            TokenKind::RanRestrict => f.write_str("`:>`"),
            TokenKind::Tilde => f.write_str("`~`"),
            TokenKind::Caret => f.write_str("`^`"),
            TokenKind::Star => f.write_str("`*`"),
            TokenKind::Eq => f.write_str("`=`"),
            TokenKind::Neq => f.write_str("`!=`"),
            TokenKind::Lt => f.write_str("`<`"),
            TokenKind::Gt => f.write_str("`>`"),
            TokenKind::Le => f.write_str("`=<`"),
            TokenKind::Ge => f.write_str("`>=`"),
            TokenKind::Hash => f.write_str("`#`"),
            TokenKind::Bang => f.write_str("`!`"),
            TokenKind::AmpAmp => f.write_str("`&&`"),
            TokenKind::BarBar => f.write_str("`||`"),
            TokenKind::FatArrow => f.write_str("`=>`"),
            TokenKind::IffArrow => f.write_str("`<=>`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// A lexical token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind (and payload for identifiers/integers).
    pub kind: TokenKind,
    /// Source location.
    pub span: Span,
}

/// Tokenizes `source` into a vector of tokens ending with [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns [`SyntaxError`] on unterminated block comments or characters that
/// are not part of the μAlloy lexical grammar.
pub fn tokenize(source: &str) -> Result<Vec<Token>, SyntaxError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let n = bytes.len();

    while i < n {
        let c = bytes[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comments: `//` and `--`.
        if (c == b'/' && i + 1 < n && bytes[i + 1] == b'/')
            || (c == b'-' && i + 1 < n && bytes[i + 1] == b'-')
        {
            while i < n && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Block comments.
        if c == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
            let start = i;
            i += 2;
            loop {
                if i + 1 >= n {
                    return Err(SyntaxError::new(
                        "unterminated block comment",
                        Span::new(start, n),
                    ));
                }
                if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                    i += 2;
                    break;
                }
                i += 1;
            }
            continue;
        }
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < n
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'\'')
            {
                i += 1;
            }
            let text = &source[start..i];
            tokens.push(Token {
                kind: TokenKind::Ident(text.to_string()),
                span: Span::new(start, i),
            });
            continue;
        }
        // Integer literals.
        if c.is_ascii_digit() {
            let start = i;
            while i < n && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let text = &source[start..i];
            let value: i64 = text.parse().map_err(|_| {
                SyntaxError::new(
                    format!("integer literal `{text}` out of range"),
                    Span::new(start, i),
                )
            })?;
            tokens.push(Token {
                kind: TokenKind::Int(value),
                span: Span::new(start, i),
            });
            continue;
        }
        // Multi-character operators, longest match first.
        let start = i;
        let rest = &source[i..];
        let (kind, len) = if rest.starts_with("<=>") {
            (TokenKind::IffArrow, 3)
        } else if rest.starts_with("=>") {
            (TokenKind::FatArrow, 2)
        } else if rest.starts_with("++") {
            (TokenKind::PlusPlus, 2)
        } else if rest.starts_with("->") {
            (TokenKind::Arrow, 2)
        } else if rest.starts_with("&&") {
            (TokenKind::AmpAmp, 2)
        } else if rest.starts_with("||") {
            (TokenKind::BarBar, 2)
        } else if rest.starts_with("!=") {
            (TokenKind::Neq, 2)
        } else if rest.starts_with("=<") {
            (TokenKind::Le, 2)
        } else if rest.starts_with(">=") {
            (TokenKind::Ge, 2)
        } else if rest.starts_with("<:") {
            (TokenKind::DomRestrict, 2)
        } else if rest.starts_with(":>") {
            (TokenKind::RanRestrict, 2)
        } else {
            let kind = match c {
                b'{' => TokenKind::LBrace,
                b'}' => TokenKind::RBrace,
                b'[' => TokenKind::LBracket,
                b']' => TokenKind::RBracket,
                b'(' => TokenKind::LParen,
                b')' => TokenKind::RParen,
                b':' => TokenKind::Colon,
                b',' => TokenKind::Comma,
                b'|' => TokenKind::Bar,
                b'.' => TokenKind::Dot,
                b'+' => TokenKind::Plus,
                b'-' => TokenKind::Minus,
                b'&' => TokenKind::Amp,
                b'~' => TokenKind::Tilde,
                b'^' => TokenKind::Caret,
                b'*' => TokenKind::Star,
                b'=' => TokenKind::Eq,
                b'<' => TokenKind::Lt,
                b'>' => TokenKind::Gt,
                b'#' => TokenKind::Hash,
                b'!' => TokenKind::Bang,
                other => {
                    return Err(SyntaxError::new(
                        format!("unexpected character `{}`", other as char),
                        Span::new(i, i + 1),
                    ))
                }
            };
            (kind, 1)
        };
        tokens.push(Token {
            kind,
            span: Span::new(start, start + len),
        });
        i += len;
    }

    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(n, n),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
    }

    #[test]
    fn identifiers_and_keywords_share_token_kind() {
        assert_eq!(
            kinds("sig Foo_bar"),
            vec![
                TokenKind::Ident("sig".into()),
                TokenKind::Ident("Foo_bar".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn primed_identifiers_lex_as_single_tokens() {
        assert_eq!(
            kinds("keys'"),
            vec![TokenKind::Ident("keys'".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn longest_match_operators() {
        assert_eq!(
            kinds("<=> => -> ++ <: :> != =< >= && ||"),
            vec![
                TokenKind::IffArrow,
                TokenKind::FatArrow,
                TokenKind::Arrow,
                TokenKind::PlusPlus,
                TokenKind::DomRestrict,
                TokenKind::RanRestrict,
                TokenKind::Neq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::AmpAmp,
                TokenKind::BarBar,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn single_char_operators() {
        assert_eq!(
            kinds("{ } [ ] ( ) : , | . + - & ~ ^ * = < > # !"),
            vec![
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::LBracket,
                TokenKind::RBracket,
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Colon,
                TokenKind::Comma,
                TokenKind::Bar,
                TokenKind::Dot,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Amp,
                TokenKind::Tilde,
                TokenKind::Caret,
                TokenKind::Star,
                TokenKind::Eq,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Hash,
                TokenKind::Bang,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let src = "sig A {} // trailing\n-- dashes\n/* block\n comment */ sig B {}";
        let ks = kinds(src);
        let idents: Vec<_> = ks
            .iter()
            .filter_map(|k| match k {
                TokenKind::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec!["sig", "A", "sig", "B"]);
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(tokenize("/* oops").is_err());
    }

    #[test]
    fn unexpected_character_errors() {
        assert!(tokenize("sig A @ B").is_err());
    }

    #[test]
    fn integer_literals() {
        assert_eq!(kinds("42"), vec![TokenKind::Int(42), TokenKind::Eof]);
    }

    #[test]
    fn spans_are_byte_accurate() {
        let toks = tokenize("ab cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
    }
}
