//! Recursive-descent parser for μAlloy.
//!
//! The grammar is a faithful subset of Alloy's. Notable dialect notes:
//!
//! - blocks contain juxtaposed formulas (as in Alloy);
//! - `e1[e2]` is the box join `e2.e1`; when the bracket target is a bare
//!   identifier the parser emits an [`Expr::FunCall`] node and name
//!   resolution later decides between a function call and a box join;
//! - `disj` is supported on `all`/`some`/`no` quantifiers and desugared
//!   during elaboration;
//! - commands use a single uniform scope: `run p for 3 expect 1`.

use crate::ast::*;
use crate::error::SyntaxError;
use crate::lexer::{tokenize, Token, TokenKind};

/// Parses a complete specification from source text.
///
/// # Errors
///
/// Returns the first [`SyntaxError`] encountered.
pub fn parse_spec(source: &str) -> Result<Spec, SyntaxError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut spec = parser.spec()?;
    // Node identity is assigned exactly once, here: dense pre-order ids over
    // the addressable bodies. Edits preserve them (see `crate::walk`).
    spec.assign_ids();
    Ok(spec)
}

/// Parses a single formula (used by tests and by the repair tools when
/// synthesizing candidate constraint bodies).
///
/// # Errors
///
/// Returns a [`SyntaxError`] if the text is not exactly one formula.
pub fn parse_formula(source: &str) -> Result<Formula, SyntaxError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let f = parser.formula()?;
    parser.expect_eof()?;
    Ok(f)
}

/// Parses a single relational expression.
///
/// # Errors
///
/// Returns a [`SyntaxError`] if the text is not exactly one expression.
pub fn parse_expr(source: &str) -> Result<Expr, SyntaxError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let e = parser.expr()?;
    parser.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_at(&self, offset: usize) -> &Token {
        let idx = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[idx]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    fn kw_at(&self, offset: usize, kw: &str) -> bool {
        matches!(&self.peek_at(offset).kind, TokenKind::Ident(s) if s == kw)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, SyntaxError> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            Err(SyntaxError::new(
                format!("expected {}, found {}", kind, self.peek().kind),
                self.peek().span,
            ))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SyntaxError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SyntaxError::new(
                format!("expected keyword `{kw}`, found {}", self.peek().kind),
                self.peek().span,
            ))
        }
    }

    fn expect_name(&mut self) -> Result<(String, Span), SyntaxError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let name = s.clone();
                let span = self.peek().span;
                self.bump();
                Ok((name, span))
            }
            other => Err(SyntaxError::new(
                format!("expected an identifier, found {other}"),
                self.peek().span,
            )),
        }
    }

    fn expect_eof(&mut self) -> Result<(), SyntaxError> {
        if self.at(&TokenKind::Eof) {
            Ok(())
        } else {
            Err(SyntaxError::new(
                format!("unexpected trailing {}", self.peek().kind),
                self.peek().span,
            ))
        }
    }

    // ---------------------------------------------------------------- spec

    fn spec(&mut self) -> Result<Spec, SyntaxError> {
        let mut spec = Spec::default();
        if self.eat_kw("module") {
            let (name, _) = self.expect_name()?;
            spec.module = Some(name);
        }
        while !self.at(&TokenKind::Eof) {
            self.paragraph(&mut spec)?;
        }
        Ok(spec)
    }

    fn paragraph(&mut self, spec: &mut Spec) -> Result<(), SyntaxError> {
        if self.at_kw("abstract") || self.at_kw("sig") {
            spec.sigs.extend(self.sig_decl()?);
            return Ok(());
        }
        // `one sig` / `lone sig` / `some sig`
        if (self.at_kw("one") || self.at_kw("lone") || self.at_kw("some")) && self.kw_at(1, "sig") {
            spec.sigs.extend(self.sig_decl()?);
            return Ok(());
        }
        if self.at_kw("fact") {
            spec.facts.push(self.fact()?);
            return Ok(());
        }
        if self.at_kw("pred") {
            spec.preds.push(self.pred()?);
            return Ok(());
        }
        if self.at_kw("fun") {
            spec.funs.push(self.fun()?);
            return Ok(());
        }
        if self.at_kw("assert") {
            spec.asserts.push(self.assert_decl()?);
            return Ok(());
        }
        if self.at_kw("run") || self.at_kw("check") {
            spec.commands.push(self.command()?);
            return Ok(());
        }
        Err(SyntaxError::new(
            format!(
                "expected a paragraph (sig/fact/pred/fun/assert/run/check), found {}",
                self.peek().kind
            ),
            self.peek().span,
        ))
    }

    /// Parses one `sig` declaration. Returns a vector because Alloy allows
    /// `sig A, B {}` declaring several signatures with the same shape.
    fn sig_decl(&mut self) -> Result<Vec<SigDecl>, SyntaxError> {
        let start = self.peek().span;
        let mut is_abstract = false;
        let mut mult = None;
        loop {
            if self.at_kw("abstract") {
                self.bump();
                is_abstract = true;
            } else if self.at_kw("one") && self.kw_at(1, "sig") {
                self.bump();
                mult = Some(SigMult::One);
            } else if self.at_kw("lone") && self.kw_at(1, "sig") {
                self.bump();
                mult = Some(SigMult::Lone);
            } else if self.at_kw("some") && self.kw_at(1, "sig") {
                self.bump();
                mult = Some(SigMult::Some);
            } else {
                break;
            }
        }
        self.expect_kw("sig")?;
        let mut names = Vec::new();
        loop {
            let (name, _) = self.expect_name()?;
            names.push(name);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let parent = if self.eat_kw("extends") {
            let (p, _) = self.expect_name()?;
            Some(p)
        } else {
            None
        };
        self.expect(TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            fields.push(self.field_decl()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let end = self.expect(TokenKind::RBrace)?.span;
        let span = start.merge(end);
        Ok(names
            .into_iter()
            .map(|name| SigDecl {
                name,
                is_abstract,
                mult,
                parent: parent.clone(),
                fields: fields.clone(),
                span,
            })
            .collect())
    }

    fn field_decl(&mut self) -> Result<FieldDecl, SyntaxError> {
        let (name, nspan) = self.expect_name()?;
        self.expect(TokenKind::Colon)?;
        // fieldTy := (mult)? IDENT ("->" (mult)? IDENT)*
        let mut mult = self.opt_mult();
        let (first, mut end_span) = self.expect_name()?;
        let mut cols = vec![first];
        let mut explicit_unary_mult = mult.is_some();
        while self.eat(&TokenKind::Arrow) {
            // multiplicity of the final column wins; earlier ones are
            // accepted but only the last is recorded (μAlloy restriction).
            let m = self.opt_mult();
            let (next, s) = self.expect_name()?;
            cols.push(next);
            end_span = s;
            if let Some(m) = m {
                mult = Some(m);
                explicit_unary_mult = true;
            }
        }
        let mult = match mult {
            Some(m) => m,
            // Alloy defaults: `f: A` means `one A`; `r: A -> B` means `set`.
            None if cols.len() == 1 => Mult::One,
            None => Mult::Set,
        };
        let _ = explicit_unary_mult;
        Ok(FieldDecl {
            name,
            cols,
            mult,
            span: nspan.merge(end_span),
        })
    }

    fn opt_mult(&mut self) -> Option<Mult> {
        // A multiplicity keyword here must be followed by an identifier that
        // is part of the type, e.g. `set Key`.
        for (kw, m) in [
            ("set", Mult::Set),
            ("one", Mult::One),
            ("lone", Mult::Lone),
            ("some", Mult::Some),
        ] {
            if self.at_kw(kw) {
                if let TokenKind::Ident(_) = self.peek_at(1).kind {
                    self.bump();
                    return Some(m);
                }
            }
        }
        None
    }

    fn fact(&mut self) -> Result<Fact, SyntaxError> {
        let start = self.peek().span;
        self.expect_kw("fact")?;
        let name = if let TokenKind::Ident(s) = &self.peek().kind {
            let n = s.clone();
            self.bump();
            n
        } else {
            String::new()
        };
        let (body, end) = self.block()?;
        Ok(Fact {
            name,
            body,
            span: start.merge(end),
        })
    }

    fn pred(&mut self) -> Result<PredDecl, SyntaxError> {
        let start = self.peek().span;
        self.expect_kw("pred")?;
        let (name, _) = self.expect_name()?;
        let params = if self.at(&TokenKind::LBracket) {
            self.param_list()?
        } else {
            Vec::new()
        };
        let (body, end) = self.block()?;
        Ok(PredDecl {
            name,
            params,
            body,
            span: start.merge(end),
        })
    }

    fn fun(&mut self) -> Result<FunDecl, SyntaxError> {
        let start = self.peek().span;
        self.expect_kw("fun")?;
        let (name, _) = self.expect_name()?;
        let params = if self.at(&TokenKind::LBracket) {
            self.param_list()?
        } else {
            Vec::new()
        };
        self.expect(TokenKind::Colon)?;
        let result_mult = self.opt_mult().unwrap_or(Mult::Set);
        let result = self.expr()?;
        self.expect(TokenKind::LBrace)?;
        let body = self.expr()?;
        let end = self.expect(TokenKind::RBrace)?.span;
        Ok(FunDecl {
            name,
            params,
            result_mult,
            result,
            body,
            span: start.merge(end),
        })
    }

    fn param_list(&mut self) -> Result<Vec<Param>, SyntaxError> {
        self.expect(TokenKind::LBracket)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RBracket) {
            loop {
                // group: x, y: bound
                let mut names = Vec::new();
                loop {
                    let (n, s) = self.expect_name()?;
                    names.push((n, s));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::Colon)?;
                let bound = self.expr()?;
                for (n, s) in names {
                    params.push(Param {
                        name: n,
                        bound: bound.clone(),
                        span: s,
                    });
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RBracket)?;
        Ok(params)
    }

    fn assert_decl(&mut self) -> Result<AssertDecl, SyntaxError> {
        let start = self.peek().span;
        self.expect_kw("assert")?;
        let (name, _) = self.expect_name()?;
        let (body, end) = self.block()?;
        Ok(AssertDecl {
            name,
            body,
            span: start.merge(end),
        })
    }

    fn command(&mut self) -> Result<Command, SyntaxError> {
        let start = self.peek().span;
        let kind = if self.eat_kw("run") {
            let (name, _) = self.expect_name()?;
            CommandKind::Run(name)
        } else {
            self.expect_kw("check")?;
            let (name, _) = self.expect_name()?;
            CommandKind::Check(name)
        };
        let mut scope = 3u32;
        let mut end = start;
        if self.eat_kw("for") {
            match self.peek().kind.clone() {
                TokenKind::Int(n) if n > 0 => {
                    scope = n as u32;
                    end = self.bump().span;
                }
                _ => {
                    return Err(SyntaxError::new(
                        "expected a positive scope after `for`",
                        self.peek().span,
                    ))
                }
            }
        }
        let expect = if self.eat_kw("expect") {
            match self.peek().kind.clone() {
                TokenKind::Int(0) => {
                    end = self.bump().span;
                    Some(false)
                }
                TokenKind::Int(1) => {
                    end = self.bump().span;
                    Some(true)
                }
                _ => {
                    return Err(SyntaxError::new(
                        "expected 0 or 1 after `expect`",
                        self.peek().span,
                    ))
                }
            }
        } else {
            None
        };
        Ok(Command {
            kind,
            scope,
            expect,
            span: start.merge(end),
        })
    }

    /// `{ formula* }` — juxtaposed formulas, as in Alloy blocks.
    fn block(&mut self) -> Result<(Vec<Formula>, Span), SyntaxError> {
        self.expect(TokenKind::LBrace)?;
        let mut body = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            body.push(self.formula()?);
        }
        let end = self.expect(TokenKind::RBrace)?.span;
        Ok((body, end))
    }

    // ------------------------------------------------------------ formulas

    pub(crate) fn formula(&mut self) -> Result<Formula, SyntaxError> {
        self.iff_form()
    }

    fn iff_form(&mut self) -> Result<Formula, SyntaxError> {
        let mut lhs = self.imp_form()?;
        while self.at(&TokenKind::IffArrow) || self.at_kw("iff") {
            self.bump();
            let rhs = self.imp_form()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Formula::Binary(BinFormOp::Iff, Box::new(lhs), Box::new(rhs), span.into());
        }
        Ok(lhs)
    }

    fn imp_form(&mut self) -> Result<Formula, SyntaxError> {
        let lhs = self.or_form()?;
        if self.at(&TokenKind::FatArrow) || self.at_kw("implies") {
            self.bump();
            let then = self.imp_form()?;
            if self.eat_kw("else") {
                let els = self.imp_form()?;
                let span = lhs.span().merge(els.span());
                // (lhs => then) && (!lhs => else)
                let pos = Formula::Binary(
                    BinFormOp::Implies,
                    Box::new(lhs.clone()),
                    Box::new(then),
                    span.into(),
                );
                let neg = Formula::Binary(
                    BinFormOp::Implies,
                    Box::new(Formula::Not(Box::new(lhs), span.into())),
                    Box::new(els),
                    span.into(),
                );
                return Ok(Formula::Binary(
                    BinFormOp::And,
                    Box::new(pos),
                    Box::new(neg),
                    span.into(),
                ));
            }
            let span = lhs.span().merge(then.span());
            return Ok(Formula::Binary(
                BinFormOp::Implies,
                Box::new(lhs),
                Box::new(then),
                span.into(),
            ));
        }
        Ok(lhs)
    }

    fn or_form(&mut self) -> Result<Formula, SyntaxError> {
        let mut lhs = self.and_form()?;
        while self.at(&TokenKind::BarBar) || self.at_kw("or") {
            self.bump();
            let rhs = self.and_form()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Formula::Binary(BinFormOp::Or, Box::new(lhs), Box::new(rhs), span.into());
        }
        Ok(lhs)
    }

    fn and_form(&mut self) -> Result<Formula, SyntaxError> {
        let mut lhs = self.not_form()?;
        while self.at(&TokenKind::AmpAmp) || self.at_kw("and") {
            self.bump();
            let rhs = self.not_form()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Formula::Binary(BinFormOp::And, Box::new(lhs), Box::new(rhs), span.into());
        }
        Ok(lhs)
    }

    fn not_form(&mut self) -> Result<Formula, SyntaxError> {
        if self.at(&TokenKind::Bang) || self.at_kw("not") {
            let start = self.bump().span;
            let inner = self.not_form()?;
            let span = start.merge(inner.span());
            return Ok(Formula::Not(Box::new(inner), span.into()));
        }
        self.quant_form()
    }

    fn quant_form(&mut self) -> Result<Formula, SyntaxError> {
        // let x = e | F
        if self.at_kw("let") {
            let start = self.bump().span;
            let (name, _) = self.expect_name()?;
            self.expect(TokenKind::Eq)?;
            let binding = self.expr()?;
            self.expect(TokenKind::Bar)?;
            let body = self.formula()?;
            let span = start.merge(body.span());
            return Ok(Formula::Let(
                name,
                Box::new(binding),
                Box::new(body),
                span.into(),
            ));
        }
        // Quantifier: `quant (disj)? x (, y)* : bound (, more-decls)* | F`
        if let Some(q) = self.peek_quant() {
            if self.looks_like_quantifier() {
                let start = self.bump().span;
                let disj = self.eat_kw("disj");
                let decls = self.var_decls()?;
                self.expect(TokenKind::Bar)?;
                let body = self.formula()?;
                let span = start.merge(body.span());
                return Ok(desugar_quant(q, disj, decls, body, span));
            }
        }
        self.atom_form()
    }

    fn peek_quant(&self) -> Option<Quant> {
        match &self.peek().kind {
            TokenKind::Ident(s) => match s.as_str() {
                "all" => Some(Quant::All),
                "some" => Some(Quant::Some),
                "no" => Some(Quant::No),
                "lone" => Some(Quant::Lone),
                "one" => Some(Quant::One),
                _ => None,
            },
            _ => None,
        }
    }

    /// Distinguishes `some x: A | F` (quantifier) from `some A.f` (multiplicity
    /// formula) by scanning ahead for `ident (, ident)* :` or a `disj` marker.
    fn looks_like_quantifier(&self) -> bool {
        if self.kw_at(1, "disj") {
            return true;
        }
        let mut k = 1usize;
        loop {
            match &self.peek_at(k).kind {
                TokenKind::Ident(_) => {}
                _ => return false,
            }
            match &self.peek_at(k + 1).kind {
                TokenKind::Colon => return true,
                TokenKind::Comma => k += 2,
                _ => return false,
            }
        }
    }

    fn var_decls(&mut self) -> Result<Vec<VarDecl>, SyntaxError> {
        let mut decls = Vec::new();
        loop {
            let mut names = Vec::new();
            loop {
                let (n, s) = self.expect_name()?;
                names.push((n, s));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::Colon)?;
            let _ = self.opt_mult(); // tolerated, not recorded: `x: one A`
            let bound = self.expr()?;
            for (n, s) in names {
                decls.push(VarDecl {
                    name: n,
                    bound: bound.clone(),
                    span: s,
                });
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(decls)
    }

    fn atom_form(&mut self) -> Result<Formula, SyntaxError> {
        // Parenthesized formula, with backtracking to parenthesized
        // expression when the content is not a formula.
        if self.at(&TokenKind::LParen) {
            let save = self.pos;
            self.bump();
            if let Ok(f) = self.formula() {
                if self.eat(&TokenKind::RParen) {
                    // Must not be followed by something that extends an
                    // expression comparison (e.g. `(A + B) in C`).
                    if !self.starts_expr_continuation() {
                        return Ok(f);
                    }
                }
            }
            self.pos = save;
        }
        // Multiplicity formula: `some e`, `no e`, `lone e`, `one e`.
        if let Some(q) = self.peek_quant() {
            if !self.looks_like_quantifier() {
                let start = self.bump().span;
                let e = self.expr()?;
                let span = start.merge(e.span());
                let op = match q {
                    Quant::Some => MultOp::Some,
                    Quant::No => MultOp::No,
                    Quant::Lone => MultOp::Lone,
                    Quant::One => MultOp::One,
                    Quant::All => {
                        return Err(SyntaxError::new("`all` requires a variable binding", span))
                    }
                };
                return Ok(Formula::Mult(op, Box::new(e), span.into()));
            }
        }
        // Integer comparison.
        if self.at(&TokenKind::Hash) || matches!(self.peek().kind, TokenKind::Int(_)) {
            return self.int_compare();
        }
        // Relational comparison or predicate call.
        let lhs = self.expr()?;
        if self.at_kw("in") {
            self.bump();
            let rhs = self.expr()?;
            let span = lhs.span().merge(rhs.span());
            return Ok(Formula::Compare(
                CmpOp::In,
                Box::new(lhs),
                Box::new(rhs),
                span.into(),
            ));
        }
        if self.at(&TokenKind::Bang) && self.kw_at(1, "in") {
            self.bump();
            self.bump();
            let rhs = self.expr()?;
            let span = lhs.span().merge(rhs.span());
            return Ok(Formula::Compare(
                CmpOp::NotIn,
                Box::new(lhs),
                Box::new(rhs),
                span.into(),
            ));
        }
        if self.at_kw("not") && self.kw_at(1, "in") {
            self.bump();
            self.bump();
            let rhs = self.expr()?;
            let span = lhs.span().merge(rhs.span());
            return Ok(Formula::Compare(
                CmpOp::NotIn,
                Box::new(lhs),
                Box::new(rhs),
                span.into(),
            ));
        }
        if self.at(&TokenKind::Eq) {
            self.bump();
            let rhs = self.expr()?;
            let span = lhs.span().merge(rhs.span());
            return Ok(Formula::Compare(
                CmpOp::Eq,
                Box::new(lhs),
                Box::new(rhs),
                span.into(),
            ));
        }
        if self.at(&TokenKind::Neq) {
            self.bump();
            let rhs = self.expr()?;
            let span = lhs.span().merge(rhs.span());
            return Ok(Formula::Compare(
                CmpOp::Neq,
                Box::new(lhs),
                Box::new(rhs),
                span.into(),
            ));
        }
        // Predicate call: a bare identifier or `ident[args]` expression with
        // no comparison operator after it.
        match lhs {
            Expr::FunCall(name, args, span) => Ok(Formula::PredCall(name, args, span)),
            Expr::Ident(name, span) => Ok(Formula::PredCall(name, Vec::new(), span)),
            other => Err(SyntaxError::new(
                "expected a comparison operator or predicate call",
                other.span(),
            )),
        }
    }

    /// Whether the current token could continue an expression comparison
    /// after a closing parenthesis (used to disambiguate `(F)` from `(e)`).
    fn starts_expr_continuation(&self) -> bool {
        matches!(
            self.peek().kind,
            TokenKind::Dot
                | TokenKind::Arrow
                | TokenKind::Plus
                | TokenKind::Minus
                | TokenKind::Amp
                | TokenKind::PlusPlus
                | TokenKind::DomRestrict
                | TokenKind::RanRestrict
                | TokenKind::Eq
                | TokenKind::Neq
                | TokenKind::LBracket
        ) || self.at_kw("in")
    }

    fn int_compare(&mut self) -> Result<Formula, SyntaxError> {
        let lhs = self.int_expr()?;
        let op = match self.peek().kind {
            TokenKind::Eq => IntCmpOp::Eq,
            TokenKind::Neq => IntCmpOp::Neq,
            TokenKind::Lt => IntCmpOp::Lt,
            TokenKind::Gt => IntCmpOp::Gt,
            TokenKind::Le => IntCmpOp::Le,
            TokenKind::Ge => IntCmpOp::Ge,
            _ => {
                return Err(SyntaxError::new(
                    format!(
                        "expected an integer comparison operator, found {}",
                        self.peek().kind
                    ),
                    self.peek().span,
                ))
            }
        };
        self.bump();
        let rhs = self.int_expr()?;
        let span = lhs.span().merge(rhs.span());
        Ok(Formula::IntCompare(
            op,
            Box::new(lhs),
            Box::new(rhs),
            span.into(),
        ))
    }

    fn int_expr(&mut self) -> Result<IntExpr, SyntaxError> {
        if self.at(&TokenKind::Hash) {
            let start = self.bump().span;
            let e = self.join_expr()?;
            let span = start.merge(e.span());
            return Ok(IntExpr::Card(Box::new(e), span));
        }
        match self.peek().kind.clone() {
            TokenKind::Int(n) => {
                let span = self.bump().span;
                Ok(IntExpr::Lit(n, span))
            }
            other => Err(SyntaxError::new(
                format!("expected an integer expression, found {other}"),
                self.peek().span,
            )),
        }
    }

    // ---------------------------------------------------------- expressions

    pub(crate) fn expr(&mut self) -> Result<Expr, SyntaxError> {
        self.union_expr()
    }

    fn union_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut lhs = self.override_expr()?;
        loop {
            let op = if self.at(&TokenKind::Plus) {
                BinExprOp::Union
            } else if self.at(&TokenKind::Minus) {
                BinExprOp::Diff
            } else {
                break;
            };
            self.bump();
            let rhs = self.override_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), span.into());
        }
        Ok(lhs)
    }

    fn override_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut lhs = self.intersect_expr()?;
        while self.at(&TokenKind::PlusPlus) {
            self.bump();
            let rhs = self.intersect_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary(
                BinExprOp::Override,
                Box::new(lhs),
                Box::new(rhs),
                span.into(),
            );
        }
        Ok(lhs)
    }

    fn intersect_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut lhs = self.product_expr()?;
        while self.at(&TokenKind::Amp) {
            self.bump();
            let rhs = self.product_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary(
                BinExprOp::Intersect,
                Box::new(lhs),
                Box::new(rhs),
                span.into(),
            );
        }
        Ok(lhs)
    }

    fn product_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut lhs = self.restrict_expr()?;
        while self.at(&TokenKind::Arrow) {
            self.bump();
            // Tolerate (and discard) a multiplicity annotation in expression
            // position: `Room -> lone RoomKey` in a formula context.
            let _ = self.opt_mult();
            let rhs = self.restrict_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary(
                BinExprOp::Product,
                Box::new(lhs),
                Box::new(rhs),
                span.into(),
            );
        }
        Ok(lhs)
    }

    fn restrict_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut lhs = self.join_expr()?;
        loop {
            let op = if self.at(&TokenKind::DomRestrict) {
                BinExprOp::DomRestrict
            } else if self.at(&TokenKind::RanRestrict) {
                BinExprOp::RanRestrict
            } else {
                break;
            };
            self.bump();
            let rhs = self.join_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), span.into());
        }
        Ok(lhs)
    }

    fn join_expr(&mut self) -> Result<Expr, SyntaxError> {
        let mut lhs = self.unary_expr()?;
        loop {
            if self.at(&TokenKind::Dot) {
                self.bump();
                let rhs = self.unary_expr()?;
                let span = lhs.span().merge(rhs.span());
                lhs = Expr::Binary(BinExprOp::Join, Box::new(lhs), Box::new(rhs), span.into());
            } else if self.at(&TokenKind::LBracket) {
                // Bracket application. On a bare identifier this is a named
                // application `f[x, y]` (function call or box join, resolved
                // later); on a composite target it is the Alloy box join
                // `e[a, b]` = `b.(a.e)`.
                self.bump();
                let mut args = Vec::new();
                if !self.at(&TokenKind::RBracket) {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                let end = self.expect(TokenKind::RBracket)?.span;
                let span = lhs.span().merge(end);
                if let Expr::Ident(name, _) = &lhs {
                    lhs = Expr::FunCall(name.clone(), args, span.into());
                } else {
                    for arg in args {
                        lhs = Expr::Binary(
                            BinExprOp::Join,
                            Box::new(arg),
                            Box::new(lhs),
                            span.into(),
                        );
                    }
                }
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, SyntaxError> {
        let op = if self.at(&TokenKind::Tilde) {
            Some(UnExprOp::Transpose)
        } else if self.at(&TokenKind::Caret) {
            Some(UnExprOp::Closure)
        } else if self.at(&TokenKind::Star) {
            Some(UnExprOp::ReflClosure)
        } else {
            None
        };
        if let Some(op) = op {
            let start = self.bump().span;
            let inner = self.unary_expr()?;
            let span = start.merge(inner.span());
            return Ok(Expr::Unary(op, Box::new(inner), span.into()));
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, SyntaxError> {
        let span = self.peek().span;
        match self.peek().kind.clone() {
            TokenKind::Ident(name) => {
                match name.as_str() {
                    "univ" => {
                        self.bump();
                        return Ok(Expr::Univ(span.into()));
                    }
                    "iden" => {
                        self.bump();
                        return Ok(Expr::Iden(span.into()));
                    }
                    "none" => {
                        self.bump();
                        return Ok(Expr::None(span.into()));
                    }
                    _ => {}
                }
                self.bump();
                // Bracket application on identifiers is handled by the
                // enclosing join loop so that `a.f[x]` gets Alloy's box-join
                // reading `x.(a.f)`.
                Ok(Expr::Ident(name, span.into()))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::LBrace => {
                // Comprehension: { x: e | F }
                let start = self.bump().span;
                let decls = self.var_decls()?;
                self.expect(TokenKind::Bar)?;
                let body = self.formula()?;
                let end = self.expect(TokenKind::RBrace)?.span;
                Ok(Expr::Comprehension(
                    decls,
                    Box::new(body),
                    start.merge(end).into(),
                ))
            }
            other => Err(SyntaxError::new(
                format!("expected an expression, found {other}"),
                span,
            )),
        }
    }
}

/// Desugars a possibly-`disj` quantifier into the core AST.
fn desugar_quant(q: Quant, disj: bool, decls: Vec<VarDecl>, body: Formula, span: Span) -> Formula {
    if !disj || decls.len() < 2 {
        return Formula::Quant(q, decls, Box::new(body), span.into());
    }
    // Pairwise-distinctness constraint over the bound variables.
    let mut distinct = Vec::new();
    for i in 0..decls.len() {
        for j in (i + 1)..decls.len() {
            distinct.push(Formula::Compare(
                CmpOp::Neq,
                Box::new(Expr::Ident(decls[i].name.clone(), span.into())),
                Box::new(Expr::Ident(decls[j].name.clone(), span.into())),
                span.into(),
            ));
        }
    }
    let distinct = Formula::conjoin(distinct);
    match q {
        Quant::All => Formula::Quant(
            Quant::All,
            decls,
            Box::new(Formula::Binary(
                BinFormOp::Implies,
                Box::new(distinct),
                Box::new(body),
                span.into(),
            )),
            span.into(),
        ),
        Quant::Some => Formula::Quant(
            Quant::Some,
            decls,
            Box::new(Formula::Binary(
                BinFormOp::And,
                Box::new(distinct),
                Box::new(body),
                span.into(),
            )),
            span.into(),
        ),
        // `no disj x,y | F` == `all disj x,y | !F`
        Quant::No => Formula::Quant(
            Quant::All,
            decls,
            Box::new(Formula::Binary(
                BinFormOp::Implies,
                Box::new(distinct),
                Box::new(Formula::Not(Box::new(body), span.into())),
                span.into(),
            )),
            span.into(),
        ),
        // `lone`/`one` with disj are rare; approximate by the non-disj form.
        other => Formula::Quant(other, decls, Box::new(body), span.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_empty_spec() {
        let spec = parse_spec("").unwrap();
        assert!(spec.sigs.is_empty());
    }

    #[test]
    fn parses_module_header() {
        let spec = parse_spec("module hotel sig A {}").unwrap();
        assert_eq!(spec.module.as_deref(), Some("hotel"));
    }

    #[test]
    fn parses_sig_hierarchy() {
        let src = "abstract sig Key {} sig RoomKey extends Key {} one sig FrontDesk {}";
        let spec = parse_spec(src).unwrap();
        assert_eq!(spec.sigs.len(), 3);
        assert!(spec.sig("Key").unwrap().is_abstract);
        assert_eq!(spec.sig("RoomKey").unwrap().parent.as_deref(), Some("Key"));
        assert_eq!(spec.sig("FrontDesk").unwrap().mult, Some(SigMult::One));
    }

    #[test]
    fn parses_multi_name_sig() {
        let spec = parse_spec("sig A, B {}").unwrap();
        assert_eq!(spec.sigs.len(), 2);
        assert!(spec.sig("A").is_some() && spec.sig("B").is_some());
    }

    #[test]
    fn parses_fields_with_multiplicities() {
        let src = "sig Room { keys: set Key, boss: one Person, deputy: lone Person }\n\
                   sig Key {} sig Person {}\n\
                   one sig FrontDesk { lastKey: Room -> lone Key }";
        let spec = parse_spec(src).unwrap();
        let room = spec.sig("Room").unwrap();
        assert_eq!(room.fields[0].mult, Mult::Set);
        assert_eq!(room.fields[1].mult, Mult::One);
        assert_eq!(room.fields[2].mult, Mult::Lone);
        let fd = spec.sig("FrontDesk").unwrap();
        assert_eq!(
            fd.fields[0].cols,
            vec!["Room".to_string(), "Key".to_string()]
        );
        assert_eq!(fd.fields[0].mult, Mult::Lone);
    }

    #[test]
    fn unary_field_without_mult_defaults_to_one() {
        let spec = parse_spec("sig A { f: B } sig B {}").unwrap();
        assert_eq!(spec.sig("A").unwrap().fields[0].mult, Mult::One);
    }

    #[test]
    fn binary_field_without_mult_defaults_to_set() {
        let spec = parse_spec("sig A { f: A -> A }").unwrap();
        assert_eq!(spec.sig("A").unwrap().fields[0].mult, Mult::Set);
    }

    #[test]
    fn parses_fact_with_juxtaposed_formulas() {
        let src = "sig A { f: set A } fact Inv { some A no A.f }";
        let spec = parse_spec(src).unwrap();
        assert_eq!(spec.facts[0].body.len(), 2);
    }

    #[test]
    fn parses_quantifier_vs_mult_formula() {
        let f = parse_formula("all x: A | some x.f").unwrap();
        match f {
            Formula::Quant(Quant::All, decls, body, _) => {
                assert_eq!(decls.len(), 1);
                assert!(matches!(*body, Formula::Mult(MultOp::Some, _, _)));
            }
            other => panic!("expected quantifier, got {other:?}"),
        }
    }

    #[test]
    fn parses_multi_var_quantifier() {
        let f = parse_formula("all x, y: A | x = y").unwrap();
        match f {
            Formula::Quant(Quant::All, decls, _, _) => assert_eq!(decls.len(), 2),
            other => panic!("expected quantifier, got {other:?}"),
        }
    }

    #[test]
    fn desugars_disj_some() {
        let f = parse_formula("some disj x, y: A | x in y.f").unwrap();
        match f {
            Formula::Quant(Quant::Some, decls, body, _) => {
                assert_eq!(decls.len(), 2);
                assert!(matches!(*body, Formula::Binary(BinFormOp::And, _, _, _)));
            }
            other => panic!("expected some-quantifier, got {other:?}"),
        }
    }

    #[test]
    fn desugars_no_disj_to_all() {
        let f = parse_formula("no disj x, y: A | x.f = y.f").unwrap();
        assert!(matches!(f, Formula::Quant(Quant::All, _, _, _)));
    }

    #[test]
    fn parses_implies_else() {
        let f = parse_formula("some A => some B else some C").unwrap();
        // Desugared to (A=>B) && (!A=>C).
        assert!(matches!(f, Formula::Binary(BinFormOp::And, _, _, _)));
    }

    #[test]
    fn connective_precedence_and_binds_tighter_than_or() {
        let f = parse_formula("some A || some B && some C").unwrap();
        match f {
            Formula::Binary(BinFormOp::Or, _, rhs, _) => {
                assert!(matches!(*rhs, Formula::Binary(BinFormOp::And, _, _, _)));
            }
            other => panic!("expected or at top, got {other:?}"),
        }
    }

    #[test]
    fn parses_word_connectives() {
        assert!(parse_formula("some A and some B").is_ok());
        assert!(parse_formula("some A or some B").is_ok());
        assert!(parse_formula("some A implies some B").is_ok());
        assert!(parse_formula("some A iff some B").is_ok());
        assert!(parse_formula("not some A").is_ok());
    }

    #[test]
    fn parses_comparisons() {
        assert!(matches!(
            parse_formula("a.f in B").unwrap(),
            Formula::Compare(CmpOp::In, _, _, _)
        ));
        assert!(matches!(
            parse_formula("a !in B").unwrap(),
            Formula::Compare(CmpOp::NotIn, _, _, _)
        ));
        assert!(matches!(
            parse_formula("a not in B").unwrap(),
            Formula::Compare(CmpOp::NotIn, _, _, _)
        ));
        assert!(matches!(
            parse_formula("a != b").unwrap(),
            Formula::Compare(CmpOp::Neq, _, _, _)
        ));
    }

    #[test]
    fn parses_cardinality_comparison() {
        let f = parse_formula("#A.f > 2").unwrap();
        assert!(matches!(f, Formula::IntCompare(IntCmpOp::Gt, _, _, _)));
    }

    #[test]
    fn join_precedence_tighter_than_union() {
        let e = parse_expr("a.f + b.g").unwrap();
        match e {
            Expr::Binary(BinExprOp::Union, lhs, rhs, _) => {
                assert!(matches!(*lhs, Expr::Binary(BinExprOp::Join, _, _, _)));
                assert!(matches!(*rhs, Expr::Binary(BinExprOp::Join, _, _, _)));
            }
            other => panic!("expected union at top, got {other:?}"),
        }
    }

    #[test]
    fn box_join_desugars_to_reversed_join() {
        // lastKey[r] == r.lastKey — target is an identifier, so the parser
        // emits a named application to be resolved later.
        let e = parse_expr("lastKey[r]").unwrap();
        assert!(
            matches!(e, Expr::FunCall(ref n, ref args, _) if n == "lastKey" && args.len() == 1)
        );
        // (FrontDesk.lastKey)[r] == r.(FrontDesk.lastKey)
        let e = parse_expr("FrontDesk.lastKey[r]").unwrap();
        match e {
            Expr::Binary(BinExprOp::Join, lhs, rhs, _) => {
                assert!(matches!(*lhs, Expr::Ident(ref n, _) if n == "r"));
                assert!(matches!(*rhs, Expr::Binary(BinExprOp::Join, _, _, _)));
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn parses_closure_operators() {
        let e = parse_expr("^next").unwrap();
        assert!(matches!(e, Expr::Unary(UnExprOp::Closure, _, _)));
        let e = parse_expr("*next").unwrap();
        assert!(matches!(e, Expr::Unary(UnExprOp::ReflClosure, _, _)));
        let e = parse_expr("~parent").unwrap();
        assert!(matches!(e, Expr::Unary(UnExprOp::Transpose, _, _)));
    }

    #[test]
    fn parses_comprehension() {
        let e = parse_expr("{ x: A | some x.f }").unwrap();
        assert!(matches!(e, Expr::Comprehension(ref d, _, _) if d.len() == 1));
    }

    #[test]
    fn parses_paren_formula_vs_paren_expr() {
        // Parenthesized formula.
        assert!(matches!(
            parse_formula("(some A) && some B").unwrap(),
            Formula::Binary(BinFormOp::And, _, _, _)
        ));
        // Parenthesized expression inside a comparison.
        assert!(matches!(
            parse_formula("(A + B) in C").unwrap(),
            Formula::Compare(CmpOp::In, _, _, _)
        ));
    }

    #[test]
    fn parses_pred_with_params_and_calls() {
        let src = "sig G {} sig R {}\n\
                   pred checkIn[g: G, r: R] { some g some r }\n\
                   pred noop {}\n\
                   fact { all g: G, r: R | checkIn[g, r] }\n\
                   run checkIn for 3";
        let spec = parse_spec(src).unwrap();
        assert_eq!(spec.preds.len(), 2);
        assert_eq!(spec.preds[0].params.len(), 2);
        match &spec.facts[0].body[0] {
            Formula::Quant(_, _, body, _) => {
                assert!(
                    matches!(**body, Formula::PredCall(ref n, ref a, _) if n == "checkIn" && a.len() == 2)
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(spec.commands.len(), 1);
    }

    #[test]
    fn parses_fun_decl() {
        let src = "sig A { f: set A } fun succs[x: A]: set A { x.f }";
        let spec = parse_spec(src).unwrap();
        assert_eq!(spec.funs.len(), 1);
        assert_eq!(spec.funs[0].params.len(), 1);
    }

    #[test]
    fn parses_assert_and_check() {
        let src = "sig A {} assert NoA { no A } check NoA for 4 expect 0";
        let spec = parse_spec(src).unwrap();
        assert_eq!(spec.asserts.len(), 1);
        let cmd = &spec.commands[0];
        assert!(cmd.is_check());
        assert_eq!(cmd.scope, 4);
        assert_eq!(cmd.expect, Some(false));
    }

    #[test]
    fn default_scope_is_three() {
        let spec = parse_spec("sig A {} pred p {} run p").unwrap();
        assert_eq!(spec.commands[0].scope, 3);
    }

    #[test]
    fn parses_let_formula() {
        let f = parse_formula("let k = a.f | some k").unwrap();
        assert!(matches!(f, Formula::Let(ref n, _, _, _) if n == "k"));
    }

    #[test]
    fn parses_restrictions_and_override() {
        assert!(parse_expr("A <: f").is_ok());
        assert!(parse_expr("f :> B").is_ok());
        assert!(parse_expr("f ++ a->b").is_ok());
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_spec("sig {").is_err());
        assert!(parse_formula("in in").is_err());
        assert!(parse_expr("+").is_err());
    }

    #[test]
    fn error_on_bad_scope() {
        assert!(parse_spec("sig A {} pred p {} run p for 0").is_err());
    }

    #[test]
    fn hotel_example_from_paper_parses() {
        // The faulty hotel key-management specification from Fig. 1 of the
        // paper, adapted to μAlloy (post-state fields instead of primes).
        let src = r#"
            abstract sig Key {}
            sig RoomKey extends Key {}
            sig Room { keys: set Key }
            sig Guest { gkeys: set Key }
            one sig FrontDesk {
                lastKey: Room -> lone RoomKey,
                occupant: Room -> lone Guest
            }
            fact HotelInvariant {
                all r: Room | some FrontDesk.lastKey[r]
            }
            pred checkIn[g: Guest, r: Room, k: RoomKey] {
                no FrontDesk.occupant[r]
                no g.gkeys
                k not in r.keys
            }
            run checkIn for 3
        "#;
        let spec = parse_spec(src).unwrap();
        assert_eq!(spec.sigs.len(), 5);
        assert_eq!(spec.preds[0].params.len(), 3);
    }
}
