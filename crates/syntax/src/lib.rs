//! # mualloy-syntax
//!
//! Front end for **μAlloy**, a faithful subset of the [Alloy] specification
//! language used throughout the `specrepair` workspace. The crate provides:
//!
//! - a lossless [`lexer`] and recursive-descent [`parser`];
//! - the [`ast`] with byte-accurate [`ast::Span`]s on every node;
//! - a canonical [`printer`] guaranteeing parse round-trips;
//! - [`walk`]: stable node addressing ([`walk::NodeId`]), site enumeration
//!   and single-node rewriting used by the mutation and repair crates;
//! - [`check`]: name-resolution and arity validation.
//!
//! [Alloy]: https://alloytools.org
//!
//! # Example
//!
//! ```
//! use mualloy_syntax::{parse_spec, print_spec, check_spec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = parse_spec("sig Node { next: lone Node } fact { no n: Node | n in n.^next }")?;
//! assert!(check_spec(&spec).is_empty());
//! let canonical = print_spec(&spec);
//! assert!(canonical.contains("sig Node"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod check;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod walk;

pub use ast::{
    AssertDecl, BinExprOp, BinFormOp, CmpOp, Command, CommandKind, Expr, Fact, FieldDecl, Formula,
    FunDecl, IntCmpOp, IntExpr, Mult, MultOp, Param, PredDecl, Quant, SigDecl, SigMult, Span, Spec,
    UnExprOp, VarDecl,
};
pub use check::{check_spec, ensure_well_formed};
pub use error::{CheckError, SyntaxError};
pub use parser::{parse_expr, parse_formula, parse_spec};
pub use printer::{print_expr, print_field, print_formula, print_spec};
pub use walk::{collect_sites, replace_node, NodeId, NodeRepl, NodeSite, OwnerKind};

#[cfg(test)]
mod proptests {
    use crate::ast::*;
    use proptest::prelude::*;

    // A tiny generator of well-formed expressions over a fixed vocabulary.
    fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
        let leaf = prop_oneof![
            prop_oneof![Just("A"), Just("B"), Just("f"), Just("g")].prop_map(Expr::ident),
            Just(Expr::Univ(Span::synthetic())),
            Just(Expr::None(Span::synthetic())),
        ];
        if depth == 0 {
            return leaf.boxed();
        }
        let sub = arb_expr(depth - 1);
        prop_oneof![
            leaf,
            (sub.clone(), sub.clone()).prop_map(|(l, r)| Expr::binary(BinExprOp::Union, l, r)),
            (sub.clone(), sub.clone()).prop_map(|(l, r)| Expr::binary(BinExprOp::Diff, l, r)),
            (sub.clone(), sub.clone()).prop_map(|(l, r)| Expr::binary(BinExprOp::Join, l, r)),
            (sub.clone(), sub.clone()).prop_map(|(l, r)| Expr::binary(BinExprOp::Product, l, r)),
            (sub.clone(), sub.clone()).prop_map(|(l, r)| Expr::binary(BinExprOp::Intersect, l, r)),
            sub.clone()
                .prop_map(|e| Expr::unary(UnExprOp::Transpose, e)),
            sub.clone().prop_map(|e| Expr::unary(UnExprOp::Closure, e)),
        ]
        .boxed()
    }

    fn arb_formula(depth: u32) -> BoxedStrategy<Formula> {
        let leaf = prop_oneof![
            (arb_expr(1), arb_expr(1)).prop_map(|(l, r)| Formula::compare(CmpOp::In, l, r)),
            (arb_expr(1), arb_expr(1)).prop_map(|(l, r)| Formula::compare(CmpOp::Eq, l, r)),
            arb_expr(1).prop_map(|e| Formula::Mult(MultOp::Some, Box::new(e), Span::synthetic())),
            arb_expr(1).prop_map(|e| Formula::Mult(MultOp::No, Box::new(e), Span::synthetic())),
        ];
        if depth == 0 {
            return leaf.boxed();
        }
        let sub = arb_formula(depth - 1);
        prop_oneof![
            leaf,
            (sub.clone(), sub.clone()).prop_map(|(l, r)| Formula::binary(BinFormOp::And, l, r)),
            (sub.clone(), sub.clone()).prop_map(|(l, r)| Formula::binary(BinFormOp::Or, l, r)),
            (sub.clone(), sub.clone()).prop_map(|(l, r)| Formula::binary(BinFormOp::Implies, l, r)),
            sub.clone().prop_map(Formula::not),
            (sub.clone(), arb_expr(1)).prop_map(|(f, b)| Formula::Quant(
                Quant::All,
                vec![VarDecl::new("x", b)],
                Box::new(f),
                Span::synthetic()
            )),
        ]
        .boxed()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// print → parse is the identity on expressions (up to spans).
        #[test]
        fn expr_print_parse_roundtrip(e in arb_expr(3)) {
            let printed = crate::print_expr(&e);
            let reparsed = crate::parse_expr(&printed)
                .unwrap_or_else(|err| panic!("failed to reparse `{printed}`: {err}"));
            prop_assert_eq!(
                crate::walk::strip_expr_spans(&e),
                crate::walk::strip_expr_spans(&reparsed)
            );
        }

        /// print → parse is the identity on formulas (up to spans).
        #[test]
        fn formula_print_parse_roundtrip(f in arb_formula(3)) {
            let printed = crate::print_formula(&f);
            let reparsed = crate::parse_formula(&printed)
                .unwrap_or_else(|err| panic!("failed to reparse `{printed}`: {err}"));
            prop_assert_eq!(
                crate::walk::strip_formula_spans(&f),
                crate::walk::strip_formula_spans(&reparsed)
            );
        }

        /// Node replacement with the identity payload preserves the spec.
        #[test]
        fn identity_replacement_is_noop(f in arb_formula(2)) {
            let spec = Spec {
                sigs: vec![
                    SigDecl { name: "A".into(), is_abstract: false, mult: None, parent: None,
                              fields: vec![FieldDecl { name: "f".into(), cols: vec!["A".into()],
                                                        mult: Mult::Set, span: Span::synthetic() },
                                           FieldDecl { name: "g".into(), cols: vec!["A".into()],
                                                        mult: Mult::Set, span: Span::synthetic() }],
                              span: Span::synthetic() },
                    SigDecl { name: "B".into(), is_abstract: false, mult: None, parent: None,
                              fields: vec![], span: Span::synthetic() },
                ],
                facts: vec![Fact { name: "F".into(), body: vec![f], span: Span::synthetic() }],
                ..Spec::default()
            };
            let sites = crate::collect_sites(&spec);
            prop_assert!(!sites.is_empty());
            let site = &sites[0];
            prop_assert!(site.is_formula);
            let payload = crate::walk::NodeRepl::Formula(spec.facts[0].body[0].clone());
            let out = crate::replace_node(&spec, site.id, payload).unwrap();
            prop_assert_eq!(
                crate::walk::strip_spec_spans(&out),
                crate::walk::strip_spec_spans(&spec)
            );
        }
    }
}
