//! # mualloy-syntax
//!
//! Front end for **μAlloy**, a faithful subset of the [Alloy] specification
//! language used throughout the `specrepair` workspace. The crate provides:
//!
//! - a lossless [`lexer`] and recursive-descent [`parser`];
//! - the [`ast`] with byte-accurate [`ast::Span`]s and persistent
//!   [`ast::NodeId`]s on every formula/expression node;
//! - a canonical [`printer`] guaranteeing parse round-trips;
//! - [`visit`]: the [`visit::Visitor`]/[`visit::VisitorMut`] trait pair
//!   defining the canonical traversal, plus node-id assignment;
//! - [`walk`]: node addressing by persistent id, site enumeration and
//!   single-node rewriting used by the mutation and repair crates;
//! - [`hash`]: canonical Merkle subtree hashing for O(changed-path)
//!   candidate fingerprints;
//! - [`check`]: name-resolution and arity validation.
//!
//! [Alloy]: https://alloytools.org
//!
//! # Example
//!
//! ```
//! use mualloy_syntax::{parse_spec, print_spec, check_spec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = parse_spec("sig Node { next: lone Node } fact { no n: Node | n in n.^next }")?;
//! assert!(check_spec(&spec).is_empty());
//! let canonical = print_spec(&spec);
//! assert!(canonical.contains("sig Node"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod check;
pub mod error;
pub mod hash;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod visit;
pub mod walk;

pub use ast::{
    AssertDecl, BinExprOp, BinFormOp, CmpOp, Command, CommandKind, Expr, Fact, FieldDecl, Formula,
    FunDecl, IntCmpOp, IntExpr, Meta, Mult, MultOp, Param, PredDecl, Quant, SigDecl, SigMult, Span,
    Spec, UnExprOp, VarDecl,
};
pub use check::{check_spec, ensure_well_formed};
pub use error::{CheckError, SyntaxError};
pub use hash::{formula_hash, skeleton_fingerprint, spec_fingerprint, Fingerprint, SpecHasher};
pub use parser::{parse_expr, parse_formula, parse_spec};
pub use printer::{print_expr, print_field, print_formula, print_spec};
pub use visit::{NodeIdGenerator, Visitor, VisitorMut};
pub use walk::{collect_sites, replace_node, NodeId, NodeRepl, NodeSite, OwnerKind};

/// Tiny generators of well-formed AST fragments over a fixed vocabulary,
/// shared by the property tests in this crate.
#[cfg(test)]
pub(crate) mod testgen {
    use crate::ast::*;
    use proptest::prelude::*;

    /// A generator of well-formed expressions over sigs A/B and fields f/g.
    pub(crate) fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
        let leaf = prop_oneof![
            prop_oneof![Just("A"), Just("B"), Just("f"), Just("g")].prop_map(Expr::ident),
            Just(Expr::Univ(Meta::synthetic())),
            Just(Expr::None(Meta::synthetic())),
        ];
        if depth == 0 {
            return leaf.boxed();
        }
        let sub = arb_expr(depth - 1);
        prop_oneof![
            leaf,
            (sub.clone(), sub.clone()).prop_map(|(l, r)| Expr::binary(BinExprOp::Union, l, r)),
            (sub.clone(), sub.clone()).prop_map(|(l, r)| Expr::binary(BinExprOp::Diff, l, r)),
            (sub.clone(), sub.clone()).prop_map(|(l, r)| Expr::binary(BinExprOp::Join, l, r)),
            (sub.clone(), sub.clone()).prop_map(|(l, r)| Expr::binary(BinExprOp::Product, l, r)),
            (sub.clone(), sub.clone()).prop_map(|(l, r)| Expr::binary(BinExprOp::Intersect, l, r)),
            sub.clone()
                .prop_map(|e| Expr::unary(UnExprOp::Transpose, e)),
            sub.clone().prop_map(|e| Expr::unary(UnExprOp::Closure, e)),
        ]
        .boxed()
    }

    /// A generator of well-formed formulas over the same vocabulary.
    pub(crate) fn arb_formula(depth: u32) -> BoxedStrategy<Formula> {
        let leaf = prop_oneof![
            (arb_expr(1), arb_expr(1)).prop_map(|(l, r)| Formula::compare(CmpOp::In, l, r)),
            (arb_expr(1), arb_expr(1)).prop_map(|(l, r)| Formula::compare(CmpOp::Eq, l, r)),
            arb_expr(1).prop_map(|e| Formula::Mult(MultOp::Some, Box::new(e), Meta::synthetic())),
            arb_expr(1).prop_map(|e| Formula::Mult(MultOp::No, Box::new(e), Meta::synthetic())),
        ];
        if depth == 0 {
            return leaf.boxed();
        }
        let sub = arb_formula(depth - 1);
        prop_oneof![
            leaf,
            (sub.clone(), sub.clone()).prop_map(|(l, r)| Formula::binary(BinFormOp::And, l, r)),
            (sub.clone(), sub.clone()).prop_map(|(l, r)| Formula::binary(BinFormOp::Or, l, r)),
            (sub.clone(), sub.clone()).prop_map(|(l, r)| Formula::binary(BinFormOp::Implies, l, r)),
            sub.clone().prop_map(Formula::not),
            (sub.clone(), arb_expr(1)).prop_map(|(f, b)| Formula::Quant(
                Quant::All,
                vec![VarDecl::new("x", b)],
                Box::new(f),
                Meta::synthetic()
            )),
        ]
        .boxed()
    }
}

#[cfg(test)]
mod proptests {
    use crate::ast::*;
    use crate::testgen::{arb_expr, arb_formula};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// print → parse is the identity on expressions (up to spans).
        #[test]
        fn expr_print_parse_roundtrip(e in arb_expr(3)) {
            let printed = crate::print_expr(&e);
            let reparsed = crate::parse_expr(&printed)
                .unwrap_or_else(|err| panic!("failed to reparse `{printed}`: {err}"));
            prop_assert_eq!(
                crate::walk::strip_expr_spans(&e),
                crate::walk::strip_expr_spans(&reparsed)
            );
        }

        /// print → parse is the identity on formulas (up to spans).
        #[test]
        fn formula_print_parse_roundtrip(f in arb_formula(3)) {
            let printed = crate::print_formula(&f);
            let reparsed = crate::parse_formula(&printed)
                .unwrap_or_else(|err| panic!("failed to reparse `{printed}`: {err}"));
            prop_assert_eq!(
                crate::walk::strip_formula_spans(&f),
                crate::walk::strip_formula_spans(&reparsed)
            );
        }

        /// Node replacement with the identity payload preserves the spec.
        #[test]
        fn identity_replacement_is_noop(f in arb_formula(2)) {
            let mut spec = Spec {
                sigs: vec![
                    SigDecl { name: "A".into(), is_abstract: false, mult: None, parent: None,
                              fields: vec![FieldDecl { name: "f".into(), cols: vec!["A".into()],
                                                        mult: Mult::Set, span: Span::synthetic() },
                                           FieldDecl { name: "g".into(), cols: vec!["A".into()],
                                                        mult: Mult::Set, span: Span::synthetic() }],
                              span: Span::synthetic() },
                    SigDecl { name: "B".into(), is_abstract: false, mult: None, parent: None,
                              fields: vec![], span: Span::synthetic() },
                ],
                facts: vec![Fact { name: "F".into(), body: vec![f], span: Span::synthetic() }],
                ..Spec::default()
            };
            spec.assign_ids();
            let sites = crate::collect_sites(&spec);
            prop_assert!(!sites.is_empty());
            let site = &sites[0];
            prop_assert!(site.is_formula);
            let payload = crate::walk::NodeRepl::Formula(spec.facts[0].body[0].clone());
            let out = crate::replace_node(&spec, site.id, payload).unwrap();
            prop_assert_eq!(
                crate::walk::strip_spec_spans(&out),
                crate::walk::strip_spec_spans(&spec)
            );
        }

        /// Persistence contract: `replace_node` keeps the ids of all
        /// untouched nodes and never hands a freed id back out.
        #[test]
        fn replace_preserves_ids_and_never_reuses(
            f in arb_formula(2),
            g in arb_formula(2),
            pick in 0usize..64,
        ) {
            let mut spec = Spec {
                facts: vec![Fact { name: "F".into(), body: vec![f], span: Span::synthetic() }],
                ..Spec::default()
            };
            spec.assign_ids();
            let sites = crate::collect_sites(&spec);
            let formula_sites: Vec<_> = sites.iter().filter(|s| s.is_formula).collect();
            let site = formula_sites[pick % formula_sites.len()];
            let size = match crate::walk::node_at(&spec, site.id).unwrap() {
                crate::walk::NodeRepl::Formula(n) => crate::walk::subtree_size_formula(&n),
                crate::walk::NodeRepl::Expr(n) => crate::walk::subtree_size_expr(&n),
            };
            // On a fresh parse-order assignment the replaced subtree owns the
            // contiguous id range [site.id, site.id + size).
            let freed: std::collections::HashSet<u32> =
                (site.id.0..site.id.0 + size).collect();
            let out = crate::replace_node(
                &spec, site.id, crate::walk::NodeRepl::Formula(g)).unwrap();
            let after = crate::collect_sites(&out);
            let after_ids: std::collections::HashSet<u32> =
                after.iter().map(|s| s.id.0).collect();
            for s in &sites {
                if !freed.contains(&s.id.0) {
                    prop_assert!(after_ids.contains(&s.id.0), "lost id {}", s.id.0);
                }
            }
            for id in &freed {
                prop_assert!(!after_ids.contains(id), "freed id {} reused", id);
            }
            // Fresh payload ids start at the old watermark; the watermark advances.
            for s in &after {
                if !sites.iter().any(|b| b.id == s.id) {
                    prop_assert!(s.id.0 >= spec.next_node_id);
                    prop_assert!(s.id.0 < out.next_node_id);
                }
            }
            prop_assert!(out.next_node_id >= spec.next_node_id);
        }
    }
}
