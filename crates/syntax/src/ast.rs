//! Abstract syntax tree for the μAlloy specification language.
//!
//! μAlloy is a faithful subset of the Alloy modelling language covering the
//! constructs exercised by the ARepair and Alloy4Fun benchmarks: signature
//! hierarchies with multiplicities, relational fields, facts, predicates,
//! functions, assertions and `run`/`check` commands with bounded scopes.
//!
//! Every expression and formula node carries a [`Span`] locating it in the
//! source text, which the repair tools use both for fault localization and
//! for minimally-invasive textual patching.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first character of the node.
    pub start: usize,
    /// Byte offset one past the last character of the node.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The empty span used for synthesized nodes with no source location.
    pub fn synthetic() -> Self {
        Span { start: 0, end: 0 }
    }

    /// Returns a span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the span covers no text.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A persistent identifier for a formula or expression node.
///
/// Ids are assigned once — at parse time by [`Spec::assign_ids`] — and are a
/// durable property of the node: cloning a specification or rewriting one
/// subtree ([`crate::walk::replace_node`]) preserves the ids of every
/// untouched node. Fresh ids are drawn only for newly spliced subtrees, from
/// the specification's monotone [`Spec::next_node_id`] counter, so a freed id
/// is never reused within a specification's edit lineage.
///
/// Identity is *not* part of structural equality: two nodes with different
/// ids but identical structure compare equal (see [`Meta`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Sentinel for nodes that have not been installed into a specification
    /// yet (convenience-constructor output, freshly parsed sub-terms).
    pub const UNASSIGNED: NodeId = NodeId(u32::MAX);

    /// Whether this id is the [`NodeId::UNASSIGNED`] sentinel.
    pub fn is_unassigned(&self) -> bool {
        *self == NodeId::UNASSIGNED
    }
}

impl Default for NodeId {
    fn default() -> Self {
        NodeId::UNASSIGNED
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unassigned() {
            f.write_str("n?")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

/// Per-node metadata carried by every [`Formula`] and [`Expr`] node: the
/// source [`Span`] plus the persistent [`NodeId`].
///
/// Structural equality and hashing deliberately ignore the id (they compare
/// the span only, preserving the pre-identity semantics of the AST): a
/// candidate produced by splicing a structurally identical subtree is *equal*
/// to the original even though its spliced nodes carry fresh ids.
#[derive(Debug, Clone, Copy)]
pub struct Meta {
    /// Source location of the node.
    pub span: Span,
    /// Persistent node identity (skipped in serialized form; reassigned by
    /// [`Spec::assign_ids`] after deserialization).
    pub id: NodeId,
}

// Serialized form is exactly the span's, so the on-disk JSON shape of every
// AST node is unchanged from when the slot held a bare `Span`. Ids are not
// serialized; deserialization leaves them unassigned (the `Spec`-level
// deserializer reassigns them in one pass).
impl Serialize for Meta {
    fn to_value(&self) -> serde::Value {
        self.span.to_value()
    }
}

impl Deserialize for Meta {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Meta::of(Span::from_value(v)?))
    }
}

impl Meta {
    /// Metadata for a synthesized node: empty span, unassigned id.
    pub fn synthetic() -> Meta {
        Meta {
            span: Span::synthetic(),
            id: NodeId::UNASSIGNED,
        }
    }

    /// Metadata carrying the given span with an unassigned id (the parser's
    /// constructor; ids are assigned in one pass after parsing).
    pub fn of(span: Span) -> Meta {
        Meta {
            span,
            id: NodeId::UNASSIGNED,
        }
    }
}

impl Default for Meta {
    fn default() -> Self {
        Meta::synthetic()
    }
}

impl From<Span> for Meta {
    fn from(span: Span) -> Meta {
        Meta::of(span)
    }
}

impl PartialEq for Meta {
    fn eq(&self, other: &Meta) -> bool {
        self.span == other.span
    }
}

impl Eq for Meta {}

impl std::hash::Hash for Meta {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.span.hash(state);
    }
}

/// Multiplicity keyword attached to a signature declaration (`one sig`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SigMult {
    /// Exactly one atom.
    One,
    /// At most one atom.
    Lone,
    /// At least one atom.
    Some,
}

/// Multiplicity on (the last column of) a field declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mult {
    /// Any number of atoms.
    Set,
    /// Exactly one atom.
    One,
    /// At most one atom.
    Lone,
    /// At least one atom.
    Some,
}

impl fmt::Display for Mult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Mult::Set => "set",
            Mult::One => "one",
            Mult::Lone => "lone",
            Mult::Some => "some",
        };
        f.write_str(s)
    }
}

/// A field (relation) declared inside a signature.
///
/// `keys: set Key` has `cols = ["Key"]` and `mult = Set`;
/// `lastKey: Room -> lone RoomKey` has `cols = ["Room", "RoomKey"]` and
/// `mult = Lone`. The arity of the declared relation is `1 + cols.len()`
/// (the implicit first column is the declaring signature).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Signature names of the columns after the implicit owner column.
    pub cols: Vec<String>,
    /// Multiplicity of the final column.
    pub mult: Mult,
    /// Source location of the whole declaration.
    pub span: Span,
}

impl FieldDecl {
    /// Arity of the relation the field denotes (including the owner column).
    pub fn arity(&self) -> usize {
        1 + self.cols.len()
    }
}

/// A signature declaration.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SigDecl {
    /// Signature name.
    pub name: String,
    /// Whether the signature is `abstract`.
    pub is_abstract: bool,
    /// Optional multiplicity keyword (`one`/`lone`/`some`).
    pub mult: Option<SigMult>,
    /// Parent signature for `extends`, if any.
    pub parent: Option<String>,
    /// Fields declared in the signature body.
    pub fields: Vec<FieldDecl>,
    /// Source location.
    pub span: Span,
}

/// Binary relational operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinExprOp {
    /// Set union `+`.
    Union,
    /// Set difference `-`.
    Diff,
    /// Set intersection `&`.
    Intersect,
    /// Relational join `.`.
    Join,
    /// Cartesian product `->`.
    Product,
    /// Relational override `++`.
    Override,
    /// Domain restriction `<:`.
    DomRestrict,
    /// Range restriction `:>`.
    RanRestrict,
}

impl BinExprOp {
    /// Concrete syntax for the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinExprOp::Union => "+",
            BinExprOp::Diff => "-",
            BinExprOp::Intersect => "&",
            BinExprOp::Join => ".",
            BinExprOp::Product => "->",
            BinExprOp::Override => "++",
            BinExprOp::DomRestrict => "<:",
            BinExprOp::RanRestrict => ":>",
        }
    }
}

/// Unary relational operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnExprOp {
    /// Transpose `~` (binary relations only).
    Transpose,
    /// Transitive closure `^` (binary relations only).
    Closure,
    /// Reflexive-transitive closure `*` (binary relations only).
    ReflClosure,
}

impl UnExprOp {
    /// Concrete syntax for the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            UnExprOp::Transpose => "~",
            UnExprOp::Closure => "^",
            UnExprOp::ReflClosure => "*",
        }
    }
}

/// A relational expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// Reference to a signature, field, or quantified variable.
    Ident(String, Meta),
    /// The universe of all atoms (`univ`).
    Univ(Meta),
    /// The identity relation over the universe (`iden`).
    Iden(Meta),
    /// The empty unary relation (`none`).
    None(Meta),
    /// Unary operator application.
    Unary(UnExprOp, Box<Expr>, Meta),
    /// Binary operator application.
    Binary(BinExprOp, Box<Expr>, Box<Expr>, Meta),
    /// Set comprehension `{ x: e | F }`.
    Comprehension(Vec<VarDecl>, Box<Formula>, Meta),
    /// Conditional expression `F => e1 else e2` in expression position.
    IfThenElse(Box<Formula>, Box<Expr>, Box<Expr>, Meta),
    /// Call of a named function with argument expressions.
    FunCall(String, Vec<Expr>, Meta),
}

impl Expr {
    /// The node's metadata (span + persistent id).
    pub fn meta(&self) -> Meta {
        match self {
            Expr::Ident(_, m)
            | Expr::Univ(m)
            | Expr::Iden(m)
            | Expr::None(m)
            | Expr::Unary(_, _, m)
            | Expr::Binary(_, _, _, m)
            | Expr::Comprehension(_, _, m)
            | Expr::IfThenElse(_, _, _, m)
            | Expr::FunCall(_, _, m) => *m,
        }
    }

    /// Mutable access to the node's metadata.
    pub fn meta_mut(&mut self) -> &mut Meta {
        match self {
            Expr::Ident(_, m)
            | Expr::Univ(m)
            | Expr::Iden(m)
            | Expr::None(m)
            | Expr::Unary(_, _, m)
            | Expr::Binary(_, _, _, m)
            | Expr::Comprehension(_, _, m)
            | Expr::IfThenElse(_, _, _, m)
            | Expr::FunCall(_, _, m) => m,
        }
    }

    /// Source location of the expression.
    pub fn span(&self) -> Span {
        self.meta().span
    }

    /// The node's persistent id ([`NodeId::UNASSIGNED`] until the node is
    /// installed into a specification).
    pub fn id(&self) -> NodeId {
        self.meta().id
    }

    /// Convenience constructor for an identifier with a synthetic span.
    pub fn ident(name: impl Into<String>) -> Expr {
        Expr::Ident(name.into(), Meta::synthetic())
    }

    /// Convenience constructor for a join `lhs.rhs` with a synthetic span.
    pub fn join(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(
            BinExprOp::Join,
            Box::new(lhs),
            Box::new(rhs),
            Meta::synthetic(),
        )
    }

    /// Convenience constructor for a binary operation with a synthetic span.
    pub fn binary(op: BinExprOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs), Meta::synthetic())
    }

    /// Convenience constructor for a unary operation with a synthetic span.
    pub fn unary(op: UnExprOp, inner: Expr) -> Expr {
        Expr::Unary(op, Box::new(inner), Meta::synthetic())
    }
}

/// Integer-valued expressions (cardinalities and literals).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntExpr {
    /// Cardinality `#e` of a relational expression.
    Card(Box<Expr>, Span),
    /// Integer literal.
    Lit(i64, Span),
}

impl IntExpr {
    /// Source location of the integer expression.
    pub fn span(&self) -> Span {
        match self {
            IntExpr::Card(_, s) | IntExpr::Lit(_, s) => *s,
        }
    }
}

/// Comparison operators between relational expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Subset `in`.
    In,
    /// Equality `=`.
    Eq,
    /// Disequality `!=`.
    Neq,
    /// Negated subset `!in` / `not in`.
    NotIn,
}

impl CmpOp {
    /// Concrete syntax for the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::In => "in",
            CmpOp::Eq => "=",
            CmpOp::Neq => "!=",
            CmpOp::NotIn => "not in",
        }
    }
}

/// Comparison operators between integer expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntCmpOp {
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `=<`
    Le,
    /// `>=`
    Ge,
}

impl IntCmpOp {
    /// Concrete syntax for the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            IntCmpOp::Eq => "=",
            IntCmpOp::Neq => "!=",
            IntCmpOp::Lt => "<",
            IntCmpOp::Gt => ">",
            IntCmpOp::Le => "=<",
            IntCmpOp::Ge => ">=",
        }
    }
}

/// Multiplicity predicates over expressions (`some e`, `no e`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MultOp {
    /// `some e`: the expression is non-empty.
    Some,
    /// `no e`: the expression is empty.
    No,
    /// `lone e`: the expression has at most one tuple.
    Lone,
    /// `one e`: the expression has exactly one tuple.
    One,
}

impl MultOp {
    /// Concrete syntax for the operator.
    pub fn keyword(&self) -> &'static str {
        match self {
            MultOp::Some => "some",
            MultOp::No => "no",
            MultOp::Lone => "lone",
            MultOp::One => "one",
        }
    }
}

/// Quantifiers over bound variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Quant {
    /// `all x: e | F`
    All,
    /// `some x: e | F`
    Some,
    /// `no x: e | F`
    No,
    /// `lone x: e | F`
    Lone,
    /// `one x: e | F`
    One,
}

impl Quant {
    /// Concrete syntax for the quantifier.
    pub fn keyword(&self) -> &'static str {
        match self {
            Quant::All => "all",
            Quant::Some => "some",
            Quant::No => "no",
            Quant::Lone => "lone",
            Quant::One => "one",
        }
    }
}

/// A quantified (or comprehension) variable binding `x: bound`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Bounding expression (must be unary).
    pub bound: Expr,
    /// Source location.
    pub span: Span,
}

impl VarDecl {
    /// Creates a variable declaration with a synthetic span.
    pub fn new(name: impl Into<String>, bound: Expr) -> Self {
        VarDecl {
            name: name.into(),
            bound,
            span: Span::synthetic(),
        }
    }
}

/// Binary logical connectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinFormOp {
    /// Conjunction `&&` / `and`.
    And,
    /// Disjunction `||` / `or`.
    Or,
    /// Implication `=>` / `implies`.
    Implies,
    /// Biconditional `<=>` / `iff`.
    Iff,
}

impl BinFormOp {
    /// Concrete syntax for the connective.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinFormOp::And => "&&",
            BinFormOp::Or => "||",
            BinFormOp::Implies => "=>",
            BinFormOp::Iff => "<=>",
        }
    }
}

/// A boolean-valued formula.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Formula {
    /// Comparison between relational expressions.
    Compare(CmpOp, Box<Expr>, Box<Expr>, Meta),
    /// Comparison between integer expressions.
    IntCompare(IntCmpOp, Box<IntExpr>, Box<IntExpr>, Meta),
    /// Multiplicity check on an expression.
    Mult(MultOp, Box<Expr>, Meta),
    /// Negation.
    Not(Box<Formula>, Meta),
    /// Binary connective.
    Binary(BinFormOp, Box<Formula>, Box<Formula>, Meta),
    /// Quantified formula.
    Quant(Quant, Vec<VarDecl>, Box<Formula>, Meta),
    /// `let x = e | F`
    Let(String, Box<Expr>, Box<Formula>, Meta),
    /// Call of a named predicate with argument expressions.
    PredCall(String, Vec<Expr>, Meta),
}

impl Formula {
    /// The node's metadata (span + persistent id).
    pub fn meta(&self) -> Meta {
        match self {
            Formula::Compare(_, _, _, m)
            | Formula::IntCompare(_, _, _, m)
            | Formula::Mult(_, _, m)
            | Formula::Not(_, m)
            | Formula::Binary(_, _, _, m)
            | Formula::Quant(_, _, _, m)
            | Formula::Let(_, _, _, m)
            | Formula::PredCall(_, _, m) => *m,
        }
    }

    /// Mutable access to the node's metadata.
    pub fn meta_mut(&mut self) -> &mut Meta {
        match self {
            Formula::Compare(_, _, _, m)
            | Formula::IntCompare(_, _, _, m)
            | Formula::Mult(_, _, m)
            | Formula::Not(_, m)
            | Formula::Binary(_, _, _, m)
            | Formula::Quant(_, _, _, m)
            | Formula::Let(_, _, _, m)
            | Formula::PredCall(_, _, m) => m,
        }
    }

    /// Source location of the formula.
    pub fn span(&self) -> Span {
        self.meta().span
    }

    /// The node's persistent id ([`NodeId::UNASSIGNED`] until the node is
    /// installed into a specification).
    pub fn id(&self) -> NodeId {
        self.meta().id
    }

    /// Builds the conjunction of the given formulas.
    ///
    /// Returns a trivially-true formula (`univ = univ`) when `fs` is empty.
    pub fn conjoin(fs: Vec<Formula>) -> Formula {
        let mut iter = fs.into_iter();
        match iter.next() {
            None => Formula::truth(),
            Some(first) => iter.fold(first, |acc, f| {
                Formula::Binary(
                    BinFormOp::And,
                    Box::new(acc),
                    Box::new(f),
                    Meta::synthetic(),
                )
            }),
        }
    }

    /// A trivially-true formula.
    pub fn truth() -> Formula {
        Formula::Compare(
            CmpOp::Eq,
            Box::new(Expr::Univ(Meta::synthetic())),
            Box::new(Expr::Univ(Meta::synthetic())),
            Meta::synthetic(),
        )
    }

    /// Convenience constructor for negation with a synthetic span.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f), Meta::synthetic())
    }

    /// Convenience constructor for a binary connective with a synthetic span.
    pub fn binary(op: BinFormOp, lhs: Formula, rhs: Formula) -> Formula {
        Formula::Binary(op, Box::new(lhs), Box::new(rhs), Meta::synthetic())
    }

    /// Convenience constructor for a comparison with a synthetic span.
    pub fn compare(op: CmpOp, lhs: Expr, rhs: Expr) -> Formula {
        Formula::Compare(op, Box::new(lhs), Box::new(rhs), Meta::synthetic())
    }
}

/// A named fact (always-true constraint block).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fact {
    /// Fact name (may be empty for anonymous facts).
    pub name: String,
    /// Conjoined body formulas.
    pub body: Vec<Formula>,
    /// Source location.
    pub span: Span,
}

/// A parameter of a predicate or function.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Bounding signature expression.
    pub bound: Expr,
    /// Source location.
    pub span: Span,
}

/// A predicate declaration.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PredDecl {
    /// Predicate name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Conjoined body formulas.
    pub body: Vec<Formula>,
    /// Source location.
    pub span: Span,
}

/// A function declaration.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FunDecl {
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Result multiplicity.
    pub result_mult: Mult,
    /// Result bounding expression.
    pub result: Expr,
    /// Body expression.
    pub body: Expr,
    /// Source location.
    pub span: Span,
}

/// An assertion declaration.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AssertDecl {
    /// Assertion name.
    pub name: String,
    /// Conjoined body formulas.
    pub body: Vec<Formula>,
    /// Source location.
    pub span: Span,
}

/// What a command executes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommandKind {
    /// `run p for N`: search for an instance satisfying predicate `p`.
    Run(String),
    /// `check a for N`: search for a counterexample to assertion `a`.
    Check(String),
}

/// A `run` or `check` command with a bounded scope.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Command {
    /// What to execute.
    pub kind: CommandKind,
    /// Uniform scope: the maximum number of atoms per top-level signature.
    pub scope: u32,
    /// Expected satisfiability recorded with `expect 0|1`, if any.
    pub expect: Option<bool>,
    /// Source location.
    pub span: Span,
}

impl Command {
    /// Name of the predicate or assertion the command targets.
    pub fn target(&self) -> &str {
        match &self.kind {
            CommandKind::Run(n) | CommandKind::Check(n) => n,
        }
    }

    /// Whether this is a `check` command.
    pub fn is_check(&self) -> bool {
        matches!(self.kind, CommandKind::Check(_))
    }
}

/// A complete μAlloy specification (one source file).
#[derive(Debug, Clone, Default)]
pub struct Spec {
    /// Optional module name.
    pub module: Option<String>,
    /// Signature declarations in source order.
    pub sigs: Vec<SigDecl>,
    /// Facts in source order.
    pub facts: Vec<Fact>,
    /// Predicate declarations in source order.
    pub preds: Vec<PredDecl>,
    /// Function declarations in source order.
    pub funs: Vec<FunDecl>,
    /// Assertions in source order.
    pub asserts: Vec<AssertDecl>,
    /// Commands in source order.
    pub commands: Vec<Command>,
    /// High-water mark for [`NodeId`] allocation: every id ever assigned in
    /// this spec's history is `< next_node_id`, and freed ids are never
    /// reused. Not part of structural equality, hashing, or serialization.
    pub next_node_id: u32,
}

// Hand-written (de)serialization: the wire format matches what the derive
// produced before `next_node_id` existed — the allocation mark and node ids
// are volatile, so round-tripping a spec through JSON yields freshly
// (re)assigned dense ids, the same as parsing its source.
impl Serialize for Spec {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("module".to_string(), self.module.to_value()),
            ("sigs".to_string(), self.sigs.to_value()),
            ("facts".to_string(), self.facts.to_value()),
            ("preds".to_string(), self.preds.to_value()),
            ("funs".to_string(), self.funs.to_value()),
            ("asserts".to_string(), self.asserts.to_value()),
            ("commands".to_string(), self.commands.to_value()),
        ])
    }
}

impl Deserialize for Spec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Map(m) = v else {
            return Err(serde::Error::custom("expected object for Spec"));
        };
        let mut spec = Spec {
            module: Deserialize::from_value(serde::field(m, "module")?)?,
            sigs: Deserialize::from_value(serde::field(m, "sigs")?)?,
            facts: Deserialize::from_value(serde::field(m, "facts")?)?,
            preds: Deserialize::from_value(serde::field(m, "preds")?)?,
            funs: Deserialize::from_value(serde::field(m, "funs")?)?,
            asserts: Deserialize::from_value(serde::field(m, "asserts")?)?,
            commands: Deserialize::from_value(serde::field(m, "commands")?)?,
            next_node_id: 0,
        };
        spec.assign_ids();
        Ok(spec)
    }
}

// Structural equality and hashing deliberately ignore `next_node_id` (an
// allocation high-water mark, not spec content). Node ids inside the AST are
// already excluded by `Meta`'s `PartialEq`/`Hash`.
impl PartialEq for Spec {
    fn eq(&self, other: &Spec) -> bool {
        self.module == other.module
            && self.sigs == other.sigs
            && self.facts == other.facts
            && self.preds == other.preds
            && self.funs == other.funs
            && self.asserts == other.asserts
            && self.commands == other.commands
    }
}
impl Eq for Spec {}

impl std::hash::Hash for Spec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.module.hash(state);
        self.sigs.hash(state);
        self.facts.hash(state);
        self.preds.hash(state);
        self.funs.hash(state);
        self.asserts.hash(state);
        self.commands.hash(state);
    }
}

impl Spec {
    /// Looks up a signature by name.
    pub fn sig(&self, name: &str) -> Option<&SigDecl> {
        self.sigs.iter().find(|s| s.name == name)
    }

    /// Looks up a predicate by name.
    pub fn pred(&self, name: &str) -> Option<&PredDecl> {
        self.preds.iter().find(|p| p.name == name)
    }

    /// Looks up a function by name.
    pub fn fun(&self, name: &str) -> Option<&FunDecl> {
        self.funs.iter().find(|f| f.name == name)
    }

    /// Looks up an assertion by name.
    pub fn assert(&self, name: &str) -> Option<&AssertDecl> {
        self.asserts.iter().find(|a| a.name == name)
    }

    /// Looks up a field by name, returning the declaring signature and the field.
    pub fn field(&self, name: &str) -> Option<(&SigDecl, &FieldDecl)> {
        self.sigs
            .iter()
            .find_map(|s| s.fields.iter().find(|f| f.name == name).map(|f| (s, f)))
    }

    /// All field declarations with their declaring signatures.
    pub fn fields(&self) -> impl Iterator<Item = (&SigDecl, &FieldDecl)> {
        self.sigs
            .iter()
            .flat_map(|s| s.fields.iter().map(move |f| (s, f)))
    }

    /// Direct children of the named signature in the `extends` hierarchy.
    pub fn children_of(&self, name: &str) -> Vec<&SigDecl> {
        self.sigs
            .iter()
            .filter(|s| s.parent.as_deref() == Some(name))
            .collect()
    }

    /// Top-level signatures (those without a parent).
    pub fn top_level_sigs(&self) -> impl Iterator<Item = &SigDecl> {
        self.sigs.iter().filter(|s| s.parent.is_none())
    }

    /// (Re)assigns dense pre-order [`NodeId`]s to every addressable
    /// `Formula`/`Expr` node and resets the allocation high-water mark.
    ///
    /// Called once at parse time; freshly parsed specs carry ids
    /// `0..n` in the canonical traversal order (fact bodies, then pred
    /// bodies, then fun bodies, then assert bodies). Structural edits via
    /// [`crate::walk::replace_node`] preserve the ids of untouched nodes and
    /// draw fresh ids from `next_node_id` — they never call this.
    pub fn assign_ids(&mut self) {
        crate::visit::assign_ids(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn span_len_and_empty() {
        assert_eq!(Span::new(2, 5).len(), 3);
        assert!(Span::synthetic().is_empty());
        assert!(!Span::new(0, 1).is_empty());
    }

    #[test]
    fn field_arity_counts_owner_column() {
        let f = FieldDecl {
            name: "lastKey".into(),
            cols: vec!["Room".into(), "RoomKey".into()],
            mult: Mult::Lone,
            span: Span::synthetic(),
        };
        assert_eq!(f.arity(), 3);
    }

    #[test]
    fn conjoin_empty_is_truth() {
        assert_eq!(Formula::conjoin(vec![]), Formula::truth());
    }

    #[test]
    fn conjoin_two_builds_and() {
        let f = Formula::conjoin(vec![Formula::truth(), Formula::truth()]);
        match f {
            Formula::Binary(BinFormOp::And, _, _, _) => {}
            other => panic!("expected conjunction, got {other:?}"),
        }
    }

    #[test]
    fn spec_lookups_find_declared_items() {
        let spec = Spec {
            sigs: vec![SigDecl {
                name: "A".into(),
                is_abstract: false,
                mult: None,
                parent: None,
                fields: vec![FieldDecl {
                    name: "f".into(),
                    cols: vec!["A".into()],
                    mult: Mult::Set,
                    span: Span::synthetic(),
                }],
                span: Span::synthetic(),
            }],
            ..Spec::default()
        };
        assert!(spec.sig("A").is_some());
        assert!(spec.sig("B").is_none());
        let (owner, field) = spec.field("f").expect("field f");
        assert_eq!(owner.name, "A");
        assert_eq!(field.mult, Mult::Set);
    }

    #[test]
    fn children_and_top_level() {
        let mk = |name: &str, parent: Option<&str>| SigDecl {
            name: name.into(),
            is_abstract: false,
            mult: None,
            parent: parent.map(String::from),
            fields: vec![],
            span: Span::synthetic(),
        };
        let spec = Spec {
            sigs: vec![
                mk("Key", None),
                mk("RoomKey", Some("Key")),
                mk("Room", None),
            ],
            ..Spec::default()
        };
        assert_eq!(spec.children_of("Key").len(), 1);
        assert_eq!(spec.top_level_sigs().count(), 2);
    }
}
