//! Static well-formedness checks for parsed specifications.
//!
//! The checker validates name resolution (signatures, fields, predicates,
//! functions, variables), call arities, the signature hierarchy (no cycles,
//! parents exist) and command targets. The repair tools run it on every
//! candidate before spending solver time.

use crate::ast::*;
use crate::error::CheckError;
use std::collections::{BTreeMap, BTreeSet};

/// Checks the specification, returning all errors found.
pub fn check_spec(spec: &Spec) -> Vec<CheckError> {
    let mut errs = Vec::new();
    let sig_names: BTreeSet<&str> = spec.sigs.iter().map(|s| s.name.as_str()).collect();

    // Duplicate declarations.
    let mut seen = BTreeSet::new();
    for sig in &spec.sigs {
        if !seen.insert(sig.name.as_str()) {
            errs.push(CheckError::new(
                format!("duplicate signature `{}`", sig.name),
                sig.span,
            ));
        }
    }

    // Parent resolution and hierarchy acyclicity.
    let parent: BTreeMap<&str, &str> = spec
        .sigs
        .iter()
        .filter_map(|s| s.parent.as_deref().map(|p| (s.name.as_str(), p)))
        .collect();
    for sig in &spec.sigs {
        if let Some(p) = &sig.parent {
            if !sig_names.contains(p.as_str()) {
                errs.push(CheckError::new(
                    format!("signature `{}` extends unknown signature `{p}`", sig.name),
                    sig.span,
                ));
            }
        }
    }
    for sig in &spec.sigs {
        let mut cur = sig.name.as_str();
        let mut steps = 0;
        while let Some(p) = parent.get(cur) {
            cur = p;
            steps += 1;
            if steps > spec.sigs.len() {
                errs.push(CheckError::new(
                    format!("cyclic `extends` chain through `{}`", sig.name),
                    sig.span,
                ));
                break;
            }
        }
    }

    // Field column resolution and duplicate field names.
    let mut field_names = BTreeSet::new();
    for sig in &spec.sigs {
        for f in &sig.fields {
            if !field_names.insert(f.name.clone()) {
                errs.push(CheckError::new(
                    format!("duplicate field `{}`", f.name),
                    f.span,
                ));
            }
            for c in &f.cols {
                if !sig_names.contains(c.as_str()) {
                    errs.push(CheckError::new(
                        format!("field `{}` references unknown signature `{c}`", f.name),
                        f.span,
                    ));
                }
            }
        }
    }

    // Global vocabulary for expression checking.
    let env = Env::new(spec);

    for fact in &spec.facts {
        for f in &fact.body {
            env.check_formula(f, &mut Scope::default(), &mut errs);
        }
    }
    for pred in &spec.preds {
        let mut scope = Scope::default();
        for p in &pred.params {
            env.check_expr(&p.bound, &mut scope, &mut errs);
            scope.vars.push(p.name.clone());
        }
        for f in &pred.body {
            env.check_formula(f, &mut scope, &mut errs);
        }
    }
    for fun in &spec.funs {
        let mut scope = Scope::default();
        for p in &fun.params {
            env.check_expr(&p.bound, &mut scope, &mut errs);
            scope.vars.push(p.name.clone());
        }
        env.check_expr(&fun.result, &mut scope, &mut errs);
        env.check_expr(&fun.body, &mut scope, &mut errs);
    }
    for a in &spec.asserts {
        for f in &a.body {
            env.check_formula(f, &mut Scope::default(), &mut errs);
        }
    }

    // Command targets.
    for cmd in &spec.commands {
        match &cmd.kind {
            CommandKind::Run(name) => {
                if spec.pred(name).is_none() {
                    errs.push(CheckError::new(
                        format!("`run` targets unknown predicate `{name}`"),
                        cmd.span,
                    ));
                }
            }
            CommandKind::Check(name) => {
                if spec.assert(name).is_none() {
                    errs.push(CheckError::new(
                        format!("`check` targets unknown assertion `{name}`"),
                        cmd.span,
                    ));
                }
            }
        }
    }

    errs
}

/// Convenience wrapper returning `Err` on the first check error.
pub fn ensure_well_formed(spec: &Spec) -> Result<(), CheckError> {
    match check_spec(spec).into_iter().next() {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

struct Env<'a> {
    spec: &'a Spec,
    sigs: BTreeSet<&'a str>,
    fields: BTreeMap<&'a str, usize>, // name -> arity
    preds: BTreeMap<&'a str, usize>,  // name -> #params
    funs: BTreeMap<&'a str, usize>,   // name -> #params
}

#[derive(Default)]
struct Scope {
    vars: Vec<String>,
}

impl<'a> Env<'a> {
    fn new(spec: &'a Spec) -> Self {
        Env {
            spec,
            sigs: spec.sigs.iter().map(|s| s.name.as_str()).collect(),
            fields: spec
                .fields()
                .map(|(_, f)| (f.name.as_str(), f.arity()))
                .collect(),
            preds: spec
                .preds
                .iter()
                .map(|p| (p.name.as_str(), p.params.len()))
                .collect(),
            funs: spec
                .funs
                .iter()
                .map(|f| (f.name.as_str(), f.params.len()))
                .collect(),
        }
    }

    fn check_formula(&self, f: &Formula, scope: &mut Scope, errs: &mut Vec<CheckError>) {
        match f {
            Formula::Compare(_, l, r, _) => {
                self.check_expr(l, scope, errs);
                self.check_expr(r, scope, errs);
            }
            Formula::IntCompare(_, l, r, _) => {
                for i in [l.as_ref(), r.as_ref()] {
                    if let IntExpr::Card(e, _) = i {
                        self.check_expr(e, scope, errs);
                    }
                }
            }
            Formula::Mult(_, e, _) => self.check_expr(e, scope, errs),
            Formula::Not(inner, _) => self.check_formula(inner, scope, errs),
            Formula::Binary(_, l, r, _) => {
                self.check_formula(l, scope, errs);
                self.check_formula(r, scope, errs);
            }
            Formula::Quant(_, decls, body, _) => {
                let base = scope.vars.len();
                for d in decls {
                    self.check_expr(&d.bound, scope, errs);
                    scope.vars.push(d.name.clone());
                }
                self.check_formula(body, scope, errs);
                scope.vars.truncate(base);
            }
            Formula::Let(name, e, body, _) => {
                self.check_expr(e, scope, errs);
                scope.vars.push(name.clone());
                self.check_formula(body, scope, errs);
                scope.vars.pop();
            }
            Formula::PredCall(name, args, span) => {
                match self.preds.get(name.as_str()) {
                    Some(&arity) if arity == args.len() => {}
                    Some(&arity) => errs.push(CheckError::new(
                        format!(
                            "predicate `{name}` expects {arity} argument(s), got {}",
                            args.len()
                        ),
                        span.span,
                    )),
                    None => errs.push(CheckError::new(
                        format!("call to unknown predicate `{name}`"),
                        span.span,
                    )),
                }
                for a in args {
                    self.check_expr(a, scope, errs);
                }
            }
        }
    }

    fn check_expr(&self, e: &Expr, scope: &mut Scope, errs: &mut Vec<CheckError>) {
        match e {
            Expr::Ident(name, span) => {
                let known = self.sigs.contains(name.as_str())
                    || self.fields.contains_key(name.as_str())
                    || scope.vars.iter().any(|v| v == name);
                if !known {
                    errs.push(CheckError::new(format!("unknown name `{name}`"), span.span));
                }
            }
            Expr::Univ(_) | Expr::Iden(_) | Expr::None(_) => {}
            Expr::Unary(_, inner, _) => self.check_expr(inner, scope, errs),
            Expr::Binary(_, l, r, _) => {
                self.check_expr(l, scope, errs);
                self.check_expr(r, scope, errs);
            }
            Expr::Comprehension(decls, body, _) => {
                let base = scope.vars.len();
                for d in decls {
                    self.check_expr(&d.bound, scope, errs);
                    scope.vars.push(d.name.clone());
                }
                self.check_formula(body, scope, errs);
                scope.vars.truncate(base);
            }
            Expr::IfThenElse(c, t, f, _) => {
                self.check_formula(c, scope, errs);
                self.check_expr(t, scope, errs);
                self.check_expr(f, scope, errs);
            }
            Expr::FunCall(name, args, span) => {
                // A named application is a function call when `name` is a
                // fun; otherwise it must be a box join on a field/sig/var.
                if let Some(&arity) = self.funs.get(name.as_str()) {
                    if arity != args.len() {
                        errs.push(CheckError::new(
                            format!(
                                "function `{name}` expects {arity} argument(s), got {}",
                                args.len()
                            ),
                            span.span,
                        ));
                    }
                } else {
                    let known = self.sigs.contains(name.as_str())
                        || self.fields.contains_key(name.as_str())
                        || scope.vars.iter().any(|v| v == name)
                        || self.spec.pred(name).is_some();
                    if !known {
                        errs.push(CheckError::new(
                            format!("unknown name `{name}` in application"),
                            span.span,
                        ));
                    }
                }
                for a in args {
                    self.check_expr(a, scope, errs);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_spec;

    #[test]
    fn accepts_well_formed_spec() {
        let spec = parse_spec(
            "sig A { f: set A } fact { all x: A | x.f in A } pred p[a: A] { some a } run p for 3",
        )
        .unwrap();
        assert!(check_spec(&spec).is_empty());
    }

    #[test]
    fn rejects_unknown_sig_in_field() {
        let spec = parse_spec("sig A { f: set B }").unwrap();
        assert!(!check_spec(&spec).is_empty());
    }

    #[test]
    fn rejects_unknown_parent() {
        let spec = parse_spec("sig A extends Z {}").unwrap();
        assert!(!check_spec(&spec).is_empty());
    }

    #[test]
    fn rejects_cyclic_hierarchy() {
        let spec = parse_spec("sig A extends B {} sig B extends A {}").unwrap();
        assert!(check_spec(&spec)
            .iter()
            .any(|e| e.message().contains("cyclic")));
    }

    #[test]
    fn rejects_duplicate_sigs_and_fields() {
        let spec = parse_spec("sig A {} sig A {}").unwrap();
        assert!(!check_spec(&spec).is_empty());
        let spec = parse_spec("sig A { f: set A } sig B { f: set A }").unwrap();
        assert!(check_spec(&spec)
            .iter()
            .any(|e| e.message().contains("duplicate field")));
    }

    #[test]
    fn rejects_unknown_name_in_formula() {
        let spec = parse_spec("sig A {} fact { some Zed }").unwrap();
        assert!(!check_spec(&spec).is_empty());
    }

    #[test]
    fn rejects_bad_pred_arity() {
        let spec = parse_spec("sig A {} pred p[a: A] { some a } fact { p }").unwrap();
        assert!(check_spec(&spec)
            .iter()
            .any(|e| e.message().contains("expects 1")));
    }

    #[test]
    fn rejects_unknown_command_target() {
        let spec = parse_spec("sig A {} pred p {} run q for 3").unwrap();
        assert!(!check_spec(&spec).is_empty());
        let spec = parse_spec("sig A {} check Nope for 3").unwrap();
        assert!(!check_spec(&spec).is_empty());
    }

    #[test]
    fn quantified_vars_are_in_scope() {
        let spec = parse_spec("sig A {} fact { all x: A | some x }").unwrap();
        assert!(check_spec(&spec).is_empty());
        // ... but not outside their binder.
        let spec = parse_spec("sig A {} fact { (all x: A | some x) && some x }").unwrap();
        assert!(!check_spec(&spec).is_empty());
    }

    #[test]
    fn let_binding_in_scope() {
        let spec =
            parse_spec("sig A { f: set A } fact { all a: A | let k = a.f | some k }").unwrap();
        assert!(check_spec(&spec).is_empty());
    }

    #[test]
    fn ensure_well_formed_returns_first_error() {
        let spec = parse_spec("sig A { f: set B }").unwrap();
        assert!(ensure_well_formed(&spec).is_err());
    }
}
