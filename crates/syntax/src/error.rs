//! Error types for the μAlloy front end.

use crate::ast::Span;
use std::error::Error;
use std::fmt;

/// A lexical or parse error with a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntaxError {
    message: String,
    span: Span,
}

impl SyntaxError {
    /// Creates a new syntax error.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        SyntaxError {
            message: message.into(),
            span,
        }
    }

    /// Human-readable description of the error.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Location of the offending text.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "syntax error at {}: {}", self.span, self.message)
    }
}

impl Error for SyntaxError {}

/// A semantic (name-resolution or arity) error found by [`crate::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    message: String,
    span: Span,
}

impl CheckError {
    /// Creates a new check error.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        CheckError {
            message: message.into(),
            span,
        }
    }

    /// Human-readable description of the error.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Location of the offending construct.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "check error at {}: {}", self.span, self.message)
    }
}

impl Error for CheckError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_span_and_message() {
        let e = SyntaxError::new("bad token", Span::new(3, 5));
        assert_eq!(e.to_string(), "syntax error at 3..5: bad token");
        let c = CheckError::new("unknown sig", Span::new(0, 2));
        assert_eq!(c.to_string(), "check error at 0..2: unknown sig");
    }
}
