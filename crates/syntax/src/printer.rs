//! Pretty-printer producing canonical μAlloy concrete syntax.
//!
//! The printer guarantees a parse round-trip: `parse(print(spec))` yields a
//! specification equal to `spec` up to spans. Two rendering styles are
//! provided:
//!
//! - [`print_spec`] — canonical style with one formula per line, used by the
//!   LLM-based repair pipeline (which regenerates whole specifications and
//!   therefore normalizes formatting);
//! - [`print_expr`] / [`print_formula`] — sub-term rendering used by the
//!   traditional tools for minimally-invasive textual splicing.

use crate::ast::*;
use crate::visit::Visitor;
use std::fmt::Write as _;

/// [`Visitor`] instance rendering the canonical whole-spec style.
///
/// The spec-level framing (declaration headers, body indentation, printing
/// order) lives in the overridden `visit_spec`; each top-level body node is
/// dispatched through `visit_formula`/`visit_expr`, which delegate to the
/// precedence-aware term renderers [`print_formula`]/[`print_expr`].
struct Printer {
    out: String,
}

impl Visitor for Printer {
    fn visit_spec(&mut self, spec: &Spec) {
        // Canonical output order: module, sigs, facts, funs, preds, asserts,
        // commands. (This deliberately differs from the id-assignment
        // traversal order, which is fixed independently of rendering.)
        if let Some(m) = &spec.module {
            let _ = writeln!(self.out, "module {m}");
        }
        for sig in &spec.sigs {
            print_sig(&mut self.out, sig);
        }
        for fact in &spec.facts {
            if fact.name.is_empty() {
                let _ = writeln!(self.out, "fact {{");
            } else {
                let _ = writeln!(self.out, "fact {} {{", fact.name);
            }
            for f in &fact.body {
                self.visit_formula(f);
            }
            let _ = writeln!(self.out, "}}");
        }
        for fun in &spec.funs {
            let params = print_params(&fun.params);
            let _ = writeln!(
                self.out,
                "fun {}{}: {} {} {{",
                fun.name,
                params,
                fun.result_mult,
                print_expr(&fun.result)
            );
            self.visit_expr(&fun.body);
            let _ = writeln!(self.out, "}}");
        }
        for pred in &spec.preds {
            let params = print_params(&pred.params);
            let _ = writeln!(self.out, "pred {}{} {{", pred.name, params);
            for f in &pred.body {
                self.visit_formula(f);
            }
            let _ = writeln!(self.out, "}}");
        }
        for a in &spec.asserts {
            let _ = writeln!(self.out, "assert {} {{", a.name);
            for f in &a.body {
                self.visit_formula(f);
            }
            let _ = writeln!(self.out, "}}");
        }
        for cmd in &spec.commands {
            let verb = if cmd.is_check() { "check" } else { "run" };
            let mut line = format!("{verb} {} for {}", cmd.target(), cmd.scope);
            if let Some(e) = cmd.expect {
                let _ = write!(line, " expect {}", if e { 1 } else { 0 });
            }
            let _ = writeln!(self.out, "{line}");
        }
    }

    fn visit_formula(&mut self, f: &Formula) {
        let _ = writeln!(self.out, "  {}", print_formula(f));
    }

    fn visit_expr(&mut self, e: &Expr) {
        let _ = writeln!(self.out, "  {}", print_expr(e));
    }
}

/// Renders a complete specification in canonical style.
pub fn print_spec(spec: &Spec) -> String {
    let mut p = Printer { out: String::new() };
    p.visit_spec(spec);
    p.out
}

fn print_sig(out: &mut String, sig: &SigDecl) {
    let mut header = String::new();
    if sig.is_abstract {
        header.push_str("abstract ");
    }
    match sig.mult {
        Some(SigMult::One) => header.push_str("one "),
        Some(SigMult::Lone) => header.push_str("lone "),
        Some(SigMult::Some) => header.push_str("some "),
        None => {}
    }
    let _ = write!(header, "sig {}", sig.name);
    if let Some(p) = &sig.parent {
        let _ = write!(header, " extends {p}");
    }
    if sig.fields.is_empty() {
        let _ = writeln!(out, "{header} {{}}");
        return;
    }
    let _ = writeln!(out, "{header} {{");
    for (i, f) in sig.fields.iter().enumerate() {
        let comma = if i + 1 < sig.fields.len() { "," } else { "" };
        let _ = writeln!(out, "  {}{comma}", print_field(f));
    }
    let _ = writeln!(out, "}}");
}

/// Renders a field declaration (without trailing comma).
pub fn print_field(f: &FieldDecl) -> String {
    let mut out = format!("{}: ", f.name);
    if f.cols.len() == 1 {
        let _ = write!(out, "{} {}", f.mult, f.cols[0]);
    } else {
        for (i, c) in f.cols.iter().enumerate() {
            if i > 0 {
                out.push_str(" -> ");
                if i + 1 == f.cols.len() && f.mult != Mult::Set {
                    let _ = write!(out, "{} ", f.mult);
                }
            }
            out.push_str(c);
        }
    }
    out
}

fn print_params(params: &[Param]) -> String {
    if params.is_empty() {
        return String::new();
    }
    let inner = params
        .iter()
        .map(|p| format!("{}: {}", p.name, print_expr(&p.bound)))
        .collect::<Vec<_>>()
        .join(", ");
    format!("[{inner}]")
}

// Precedence levels for expressions, loosest (0) to tightest.
fn expr_prec(e: &Expr) -> u8 {
    match e {
        Expr::Binary(op, _, _, _) => match op {
            BinExprOp::Union | BinExprOp::Diff => 1,
            BinExprOp::Override => 2,
            BinExprOp::Intersect => 3,
            BinExprOp::Product => 4,
            BinExprOp::DomRestrict | BinExprOp::RanRestrict => 5,
            BinExprOp::Join => 6,
        },
        Expr::Unary(_, _, _) => 7,
        _ => 8,
    }
}

/// Renders an expression with minimal parentheses.
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Ident(n, _) => n.clone(),
        Expr::Univ(_) => "univ".to_string(),
        Expr::Iden(_) => "iden".to_string(),
        Expr::None(_) => "none".to_string(),
        Expr::Unary(op, inner, _) => {
            let s = print_expr(inner);
            if expr_prec(inner) < expr_prec(e) {
                format!("{}({s})", op.symbol())
            } else {
                format!("{}{s}", op.symbol())
            }
        }
        Expr::Binary(op, lhs, rhs, _) => {
            let p = expr_prec(e);
            let ls = wrap(lhs, p, false);
            let rs = wrap(rhs, p, true);
            match op {
                BinExprOp::Join => format!("{ls}.{rs}"),
                BinExprOp::Product => format!("{ls} -> {rs}"),
                other => format!("{ls} {} {rs}", other.symbol()),
            }
        }
        Expr::Comprehension(decls, body, _) => {
            format!("{{ {} | {} }}", print_decls(decls), print_formula(body))
        }
        Expr::IfThenElse(c, t, f, _) => format!(
            "({} => {} else {})",
            print_formula(c),
            print_expr(t),
            print_expr(f)
        ),
        Expr::FunCall(name, args, _) => {
            let inner = args.iter().map(print_expr).collect::<Vec<_>>().join(", ");
            format!("{name}[{inner}]")
        }
    }
}

fn wrap(e: &Expr, parent_prec: u8, right: bool) -> String {
    let s = print_expr(e);
    let p = expr_prec(e);
    // Left-associative operators: parenthesize the right child at equal
    // precedence; always parenthesize strictly looser children.
    if p < parent_prec || (right && p == parent_prec) {
        format!("({s})")
    } else {
        s
    }
}

fn print_decls(decls: &[VarDecl]) -> String {
    // Group adjacent declarations sharing the same textual bound.
    let mut parts: Vec<String> = Vec::new();
    let mut i = 0;
    while i < decls.len() {
        let bound = print_expr(&decls[i].bound);
        let mut names = vec![decls[i].name.clone()];
        let mut j = i + 1;
        while j < decls.len() && print_expr(&decls[j].bound) == bound {
            names.push(decls[j].name.clone());
            j += 1;
        }
        parts.push(format!("{}: {}", names.join(", "), bound));
        i = j;
    }
    parts.join(", ")
}

// Precedence levels for formulas, loosest (0) to tightest.
fn form_prec(f: &Formula) -> u8 {
    match f {
        Formula::Binary(BinFormOp::Iff, _, _, _) => 1,
        Formula::Binary(BinFormOp::Implies, _, _, _) => 2,
        Formula::Binary(BinFormOp::Or, _, _, _) => 3,
        Formula::Binary(BinFormOp::And, _, _, _) => 4,
        Formula::Not(_, _) => 5,
        Formula::Quant(_, _, _, _) | Formula::Let(_, _, _, _) => 0,
        _ => 6,
    }
}

/// Renders a formula with minimal parentheses.
pub fn print_formula(f: &Formula) -> String {
    match f {
        Formula::Compare(op, lhs, rhs, _) => {
            format!("{} {} {}", print_expr(lhs), op.symbol(), print_expr(rhs))
        }
        Formula::IntCompare(op, lhs, rhs, _) => {
            format!("{} {} {}", print_int(lhs), op.symbol(), print_int(rhs))
        }
        Formula::Mult(op, e, _) => format!("{} {}", op.keyword(), print_expr(e)),
        Formula::Not(inner, _) => {
            let s = print_formula(inner);
            if form_prec(inner) <= form_prec(f) && form_prec(inner) != 6 {
                format!("!({s})")
            } else {
                format!("!{s}")
            }
        }
        Formula::Binary(op, lhs, rhs, _) => {
            let p = form_prec(f);
            // `=>` parses right-associatively; the other connectives parse
            // left-associatively. Parenthesize the child on the side the
            // parser would otherwise regroup.
            let assoc_right = *op == BinFormOp::Implies;
            let wrapf = |x: &Formula, right: bool| {
                let s = print_formula(x);
                let xp = form_prec(x);
                let regroups = if assoc_right { !right } else { right };
                if xp == 0 || xp < p || (regroups && xp == p) {
                    format!("({s})")
                } else {
                    s
                }
            };
            format!("{} {} {}", wrapf(lhs, false), op.symbol(), wrapf(rhs, true))
        }
        Formula::Quant(q, decls, body, _) => {
            format!(
                "{} {} | {}",
                q.keyword(),
                print_decls(decls),
                print_formula(body)
            )
        }
        Formula::Let(name, binding, body, _) => {
            format!(
                "let {} = {} | {}",
                name,
                print_expr(binding),
                print_formula(body)
            )
        }
        Formula::PredCall(name, args, _) => {
            if args.is_empty() {
                name.clone()
            } else {
                let inner = args.iter().map(print_expr).collect::<Vec<_>>().join(", ");
                format!("{name}[{inner}]")
            }
        }
    }
}

fn print_int(i: &IntExpr) -> String {
    match i {
        IntExpr::Card(e, _) => {
            let s = print_expr(e);
            if expr_prec(e) < 7 {
                format!("#({s})")
            } else {
                format!("#{s}")
            }
        }
        IntExpr::Lit(n, _) => n.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_formula, parse_spec};

    fn roundtrip_expr(src: &str) {
        let e = parse_expr(src).unwrap();
        let printed = print_expr(&e);
        let e2 = parse_expr(&printed).unwrap_or_else(|err| panic!("reparse `{printed}`: {err}"));
        assert_eq!(
            strip_expr(&e),
            strip_expr(&e2),
            "roundtrip of `{src}` via `{printed}`"
        );
    }

    fn roundtrip_formula(src: &str) {
        let f = parse_formula(src).unwrap();
        let printed = print_formula(&f);
        let f2 = parse_formula(&printed).unwrap_or_else(|err| panic!("reparse `{printed}`: {err}"));
        assert_eq!(
            crate::walk::strip_formula_spans(&f),
            crate::walk::strip_formula_spans(&f2),
            "roundtrip of `{src}` via `{printed}`"
        );
    }

    fn strip_expr(e: &Expr) -> Expr {
        crate::walk::strip_expr_spans(e)
    }

    #[test]
    fn expr_roundtrips() {
        for src in [
            "a",
            "a + b",
            "a - b & c",
            "a.f.g",
            "^r",
            "*r",
            "~r",
            "a -> b -> c",
            "(a + b).f",
            "a.(f + g)",
            "A <: f",
            "f :> B",
            "f ++ a -> b",
            "{ x: A | some x.f }",
            "lastKey[r]",
            "univ",
            "iden",
            "none",
            "a + b + c",
            "a - (b - c)",
        ] {
            roundtrip_expr(src);
        }
    }

    #[test]
    fn formula_roundtrips() {
        for src in [
            "some A",
            "no A.f",
            "lone a.f",
            "one FrontDesk",
            "a in B",
            "a not in B",
            "a = b",
            "a != b",
            "#A.f > 2",
            "#A = #B",
            "some A && no B",
            "some A || no B && one C",
            "some A => no B",
            "some A <=> no B",
            "!some A",
            "all x: A | some x.f",
            "all x, y: A | x = y",
            "some x: A, y: B | x.f = y",
            "let k = a.f | some k",
            "all x: A | (some x.f => x in B)",
            "checkIn[g, r]",
            "noop",
        ] {
            roundtrip_formula(src);
        }
    }

    #[test]
    fn spec_roundtrips() {
        let src = r#"
            module hotel
            abstract sig Key {}
            sig RoomKey extends Key {}
            sig Room { keys: set Key }
            sig Guest { gkeys: set Key }
            one sig FrontDesk {
                lastKey: Room -> lone RoomKey,
                occupant: Room -> lone Guest
            }
            fact HotelInvariant { all r: Room | some FrontDesk.lastKey[r] }
            pred checkIn[g: Guest, r: Room, k: RoomKey] {
                no FrontDesk.occupant[r]
                no g.gkeys
            }
            assert Safe { all r: Room | lone FrontDesk.occupant[r] }
            run checkIn for 3
            check Safe for 3 expect 0
        "#;
        let spec = parse_spec(src).unwrap();
        let printed = print_spec(&spec);
        let spec2 =
            parse_spec(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(
            crate::walk::strip_spec_spans(&spec),
            crate::walk::strip_spec_spans(&spec2)
        );
    }

    #[test]
    fn printer_is_deterministic() {
        let src = "sig A { f: set A } fact { all x: A | some x.f }";
        let spec = parse_spec(src).unwrap();
        assert_eq!(print_spec(&spec), print_spec(&spec));
    }

    #[test]
    fn field_printing() {
        let spec = parse_spec("sig A { f: A -> lone B, g: set B } sig B {}").unwrap();
        let a = spec.sig("A").unwrap();
        assert_eq!(print_field(&a.fields[0]), "f: A -> lone B");
        assert_eq!(print_field(&a.fields[1]), "g: set B");
    }
}
