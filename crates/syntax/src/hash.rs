//! Canonical Merkle subtree hashing over the μAlloy AST.
//!
//! Every [`Formula`]/[`Expr`] subtree gets a 128-bit FNV-1a hash computed
//! from structure and names only — **span- and id-insensitive**, but
//! **alpha-sensitive** (binder names are hashed literally, so renaming a
//! quantified variable changes the hash, exactly as it changes the canonical
//! print). Two specs have equal [`spec_fingerprint`]s iff their canonical
//! prints are equal (modulo 128-bit collisions), which makes the fingerprint
//! a drop-in replacement for the oracle's old print-the-whole-spec keys.
//!
//! [`SpecHasher`] additionally memoizes the per-node subtree hashes of one
//! spec and can produce the fingerprint of an edited candidate in
//! O(path + payload) via [`SpecHasher::fingerprint_replaced`] — the seam that
//! lets candidate validation skip re-printing whole specs.

use crate::ast::*;
use crate::walk::NodeRepl;
use std::collections::HashMap;
use std::fmt;

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013B;

/// A 128-bit canonical fingerprint of a spec or subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fingerprint(pub u128);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

// The vendored serde stub has no u128 support; fingerprints travel as fixed
// 32-digit hex strings.
impl serde::Serialize for Fingerprint {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl serde::Deserialize for Fingerprint {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Str(s) => u128::from_str_radix(s, 16)
                .map(Fingerprint)
                .map_err(|_| serde::Error::custom("expected hex fingerprint")),
            _ => Err(serde::Error::custom("expected string fingerprint")),
        }
    }
}

/// Incremental FNV-1a/128 state.
#[derive(Clone, Copy)]
struct Fnv(u128);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u128;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    fn u32v(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    fn i64v(&mut self, v: i64) {
        self.bytes(&v.to_le_bytes());
    }

    fn u128v(&mut self, v: u128) {
        self.bytes(&v.to_le_bytes());
    }

    fn strv(&mut self, s: &str) {
        self.u32v(s.len() as u32);
        self.bytes(s.as_bytes());
    }

    fn opt_str(&mut self, s: &Option<String>) {
        match s {
            None => self.byte(0),
            Some(s) => {
                self.byte(1);
                self.strv(s);
            }
        }
    }

    fn finish(self) -> u128 {
        self.0
    }
}

fn mult_byte(m: Mult) -> u8 {
    match m {
        Mult::Set => 0,
        Mult::One => 1,
        Mult::Lone => 2,
        Mult::Some => 3,
    }
}

fn sig_mult_byte(m: SigMult) -> u8 {
    match m {
        SigMult::One => 1,
        SigMult::Lone => 2,
        SigMult::Some => 3,
    }
}

// ------------------------------------------------------- per-node hashing

/// A node's addressable children in canonical order.
enum Child<'a> {
    F(&'a Formula),
    E(&'a Expr),
}

fn formula_children(f: &Formula) -> Vec<Child<'_>> {
    match f {
        Formula::Compare(_, l, r, _) => vec![Child::E(l), Child::E(r)],
        Formula::IntCompare(_, l, r, _) => {
            let mut out = Vec::new();
            for side in [l.as_ref(), r.as_ref()] {
                if let IntExpr::Card(e, _) = side {
                    out.push(Child::E(e));
                }
            }
            out
        }
        Formula::Mult(_, e, _) => vec![Child::E(e)],
        Formula::Not(inner, _) => vec![Child::F(inner)],
        Formula::Binary(_, l, r, _) => vec![Child::F(l), Child::F(r)],
        Formula::Quant(_, decls, body, _) => {
            let mut out: Vec<Child<'_>> = decls.iter().map(|d| Child::E(&d.bound)).collect();
            out.push(Child::F(body));
            out
        }
        Formula::Let(_, e, body, _) => vec![Child::E(e), Child::F(body)],
        Formula::PredCall(_, args, _) => args.iter().map(Child::E).collect(),
    }
}

fn expr_children(e: &Expr) -> Vec<Child<'_>> {
    match e {
        Expr::Ident(_, _) | Expr::Univ(_) | Expr::Iden(_) | Expr::None(_) => Vec::new(),
        Expr::Unary(_, inner, _) => vec![Child::E(inner)],
        Expr::Binary(_, l, r, _) => vec![Child::E(l), Child::E(r)],
        Expr::Comprehension(decls, body, _) => {
            let mut out: Vec<Child<'_>> = decls.iter().map(|d| Child::E(&d.bound)).collect();
            out.push(Child::F(body));
            out
        }
        Expr::IfThenElse(c, t, f, _) => vec![Child::F(c), Child::E(t), Child::E(f)],
        Expr::FunCall(_, args, _) => args.iter().map(Child::E).collect(),
    }
}

/// Hash of a formula node's own payload: variant tag, operators, names,
/// binder names (alpha-sensitivity), literals — never spans or ids.
fn formula_local(f: &Formula) -> u128 {
    let mut h = Fnv::new();
    match f {
        Formula::Compare(op, _, _, _) => {
            h.byte(0x01);
            h.strv(op.symbol());
        }
        Formula::IntCompare(op, l, r, _) => {
            h.byte(0x02);
            h.strv(op.symbol());
            for side in [l.as_ref(), r.as_ref()] {
                match side {
                    IntExpr::Card(_, _) => h.byte(b'C'),
                    IntExpr::Lit(n, _) => {
                        h.byte(b'L');
                        h.i64v(*n);
                    }
                }
            }
        }
        Formula::Mult(op, _, _) => {
            h.byte(0x03);
            h.strv(op.keyword());
        }
        Formula::Not(_, _) => h.byte(0x04),
        Formula::Binary(op, _, _, _) => {
            h.byte(0x05);
            h.strv(op.symbol());
        }
        Formula::Quant(q, decls, _, _) => {
            h.byte(0x06);
            h.strv(q.keyword());
            h.u32v(decls.len() as u32);
            for d in decls {
                h.strv(&d.name);
            }
        }
        Formula::Let(name, _, _, _) => {
            h.byte(0x07);
            h.strv(name);
        }
        Formula::PredCall(name, args, _) => {
            h.byte(0x08);
            h.strv(name);
            h.u32v(args.len() as u32);
        }
    }
    h.finish()
}

/// Hash of an expression node's own payload.
fn expr_local(e: &Expr) -> u128 {
    let mut h = Fnv::new();
    match e {
        Expr::Ident(name, _) => {
            h.byte(0x11);
            h.strv(name);
        }
        Expr::Univ(_) => h.byte(0x12),
        Expr::Iden(_) => h.byte(0x13),
        Expr::None(_) => h.byte(0x14),
        Expr::Unary(op, _, _) => {
            h.byte(0x15);
            h.strv(op.symbol());
        }
        Expr::Binary(op, _, _, _) => {
            h.byte(0x16);
            h.strv(op.symbol());
        }
        Expr::Comprehension(decls, _, _) => {
            h.byte(0x17);
            h.u32v(decls.len() as u32);
            for d in decls {
                h.strv(&d.name);
            }
        }
        Expr::IfThenElse(_, _, _, _) => h.byte(0x18),
        Expr::FunCall(name, args, _) => {
            h.byte(0x19);
            h.strv(name);
            h.u32v(args.len() as u32);
        }
    }
    h.finish()
}

/// Merkle combination of a node's local hash with its children's subtree
/// hashes. Both the full and the incremental paths go through here, so they
/// agree byte for byte.
fn combine(local: u128, children: impl IntoIterator<Item = u128>) -> u128 {
    let mut h = Fnv::new();
    h.u128v(local);
    for c in children {
        h.u128v(c);
    }
    h.finish()
}

/// Full (non-memoized) subtree hash of a formula.
pub fn formula_hash(f: &Formula) -> u128 {
    combine(
        formula_local(f),
        formula_children(f).iter().map(|c| match c {
            Child::F(x) => formula_hash(x),
            Child::E(x) => expr_hash(x),
        }),
    )
}

/// Full (non-memoized) subtree hash of an expression.
pub fn expr_hash(e: &Expr) -> u128 {
    combine(
        expr_local(e),
        expr_children(e).iter().map(|c| match c {
            Child::F(x) => formula_hash(x),
            Child::E(x) => expr_hash(x),
        }),
    )
}

// ----------------------------------------------------------- frame hashing

/// Hash of everything outside the addressable bodies: module name,
/// signatures, declaration headers (names, params, result bounds), body slot
/// counts and commands. An edit through `replace_node` never changes the
/// frame.
fn frame_hash(spec: &Spec) -> u128 {
    let mut h = Fnv::new();
    skeleton_into(&mut h, spec);
    h.u32v(spec.facts.len() as u32);
    for fact in &spec.facts {
        h.strv(&fact.name);
        h.u32v(fact.body.len() as u32);
    }
    h.u32v(spec.preds.len() as u32);
    for p in &spec.preds {
        h.strv(&p.name);
        h.u32v(p.params.len() as u32);
        for q in &p.params {
            h.strv(&q.name);
            h.u128v(expr_hash(&q.bound));
        }
        h.u32v(p.body.len() as u32);
    }
    h.u32v(spec.funs.len() as u32);
    for f in &spec.funs {
        h.strv(&f.name);
        h.u32v(f.params.len() as u32);
        for q in &f.params {
            h.strv(&q.name);
            h.u128v(expr_hash(&q.bound));
        }
        h.byte(mult_byte(f.result_mult));
        h.u128v(expr_hash(&f.result));
    }
    h.u32v(spec.asserts.len() as u32);
    for a in &spec.asserts {
        h.strv(&a.name);
        h.u32v(a.body.len() as u32);
    }
    h.u32v(spec.commands.len() as u32);
    for c in &spec.commands {
        match &c.kind {
            CommandKind::Run(n) => {
                h.byte(b'r');
                h.strv(n);
            }
            CommandKind::Check(n) => {
                h.byte(b'c');
                h.strv(n);
            }
        }
        h.u32v(c.scope);
        match c.expect {
            None => h.byte(2),
            Some(b) => h.byte(b as u8),
        }
    }
    h.finish()
}

fn spec_roots(spec: &Spec) -> impl Iterator<Item = Child<'_>> {
    spec.facts
        .iter()
        .flat_map(|f| f.body.iter().map(Child::F))
        .chain(spec.preds.iter().flat_map(|p| p.body.iter().map(Child::F)))
        .chain(spec.funs.iter().map(|f| Child::E(&f.body)))
        .chain(
            spec.asserts
                .iter()
                .flat_map(|a| a.body.iter().map(Child::F)),
        )
}

/// Hashes the signature skeleton (module name plus signature declarations
/// with their fields) into `h` — shared between [`frame_hash`] and
/// [`skeleton_fingerprint`] so the full fingerprint's byte layout is
/// unchanged by the split.
fn skeleton_into(h: &mut Fnv, spec: &Spec) {
    h.opt_str(&spec.module);
    h.u32v(spec.sigs.len() as u32);
    for sig in &spec.sigs {
        h.strv(&sig.name);
        h.byte(sig.is_abstract as u8);
        match sig.mult {
            None => h.byte(0),
            Some(m) => {
                h.byte(0x10);
                h.byte(sig_mult_byte(m));
            }
        }
        h.opt_str(&sig.parent);
        h.u32v(sig.fields.len() as u32);
        for f in &sig.fields {
            h.strv(&f.name);
            h.u32v(f.cols.len() as u32);
            for c in &f.cols {
                h.strv(c);
            }
            h.byte(mult_byte(f.mult));
        }
    }
}

/// Fingerprint of the signature skeleton alone — the part of a spec that
/// determines its universe, relation matrices and declaration constraints at
/// a given scope. Repair candidates differ only in fact/pred/fun/assert
/// bodies (and commands), so a whole search shares one skeleton fingerprint;
/// incremental oracle sessions key their persistent translations by it.
pub fn skeleton_fingerprint(spec: &Spec) -> Fingerprint {
    let mut h = Fnv::new();
    skeleton_into(&mut h, spec);
    Fingerprint(h.finish())
}

/// Full canonical fingerprint of a spec (frame + all body subtree hashes).
///
/// Span- and id-insensitive: equal iff the canonical prints are equal.
pub fn spec_fingerprint(spec: &Spec) -> Fingerprint {
    let mut h = Fnv::new();
    h.u128v(frame_hash(spec));
    for root in spec_roots(spec) {
        h.u128v(match root {
            Child::F(f) => formula_hash(f),
            Child::E(e) => expr_hash(e),
        });
    }
    Fingerprint(h.finish())
}

// ------------------------------------------------------------- SpecHasher

struct NodeInfo {
    local: u128,
    sub: u128,
    children: Vec<NodeId>,
    parent: Option<NodeId>,
    is_formula: bool,
}

/// Memoized Merkle hasher for one (id-assigned) spec.
///
/// Construction walks the spec once, recording per-node subtree hashes,
/// child lists and parent links keyed by persistent [`NodeId`]. After that,
/// the fingerprint of a candidate produced by
/// [`crate::walk::replace_node`]`(spec, id, payload)` is an
/// O(path + payload) rehash via [`SpecHasher::fingerprint_replaced`] — no
/// re-print, no full re-walk.
pub struct SpecHasher {
    frame: u128,
    roots: Vec<NodeId>,
    nodes: HashMap<NodeId, NodeInfo>,
    full: Fingerprint,
    /// False when the spec carried unassigned or duplicate ids; incremental
    /// rehashing is then unsound and callers must fall back to
    /// [`spec_fingerprint`].
    ids_ok: bool,
}

impl std::fmt::Debug for SpecHasher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpecHasher")
            .field("fingerprint", &self.full)
            .field("nodes", &self.nodes.len())
            .field("ids_ok", &self.ids_ok)
            .finish()
    }
}

impl SpecHasher {
    /// Builds the memo tables for `spec`.
    pub fn new(spec: &Spec) -> SpecHasher {
        let mut hasher = SpecHasher {
            frame: frame_hash(spec),
            roots: Vec::new(),
            nodes: HashMap::new(),
            full: Fingerprint(0),
            ids_ok: true,
        };
        let mut root_hashes = Vec::new();
        for root in spec_roots(spec) {
            let (id, sub) = match root {
                Child::F(f) => (f.id(), hasher.record_formula(f, None)),
                Child::E(e) => (e.id(), hasher.record_expr(e, None)),
            };
            hasher.roots.push(id);
            root_hashes.push(sub);
        }
        let mut h = Fnv::new();
        h.u128v(hasher.frame);
        for s in &root_hashes {
            h.u128v(*s);
        }
        hasher.full = Fingerprint(h.finish());
        hasher
    }

    fn record(&mut self, id: NodeId, info: NodeInfo) {
        if id.is_unassigned() || self.nodes.insert(id, info).is_some() {
            self.ids_ok = false;
        }
    }

    fn record_formula(&mut self, f: &Formula, parent: Option<NodeId>) -> u128 {
        let local = formula_local(f);
        let mut child_ids = Vec::new();
        let mut child_hashes = Vec::new();
        for c in formula_children(f) {
            match c {
                Child::F(x) => {
                    child_ids.push(x.id());
                    child_hashes.push(self.record_formula(x, Some(f.id())));
                }
                Child::E(x) => {
                    child_ids.push(x.id());
                    child_hashes.push(self.record_expr(x, Some(f.id())));
                }
            }
        }
        let sub = combine(local, child_hashes);
        self.record(
            f.id(),
            NodeInfo {
                local,
                sub,
                children: child_ids,
                parent,
                is_formula: true,
            },
        );
        sub
    }

    fn record_expr(&mut self, e: &Expr, parent: Option<NodeId>) -> u128 {
        let local = expr_local(e);
        let mut child_ids = Vec::new();
        let mut child_hashes = Vec::new();
        for c in expr_children(e) {
            match c {
                Child::F(x) => {
                    child_ids.push(x.id());
                    child_hashes.push(self.record_formula(x, Some(e.id())));
                }
                Child::E(x) => {
                    child_ids.push(x.id());
                    child_hashes.push(self.record_expr(x, Some(e.id())));
                }
            }
        }
        let sub = combine(local, child_hashes);
        self.record(
            e.id(),
            NodeInfo {
                local,
                sub,
                children: child_ids,
                parent,
                is_formula: false,
            },
        );
        sub
    }

    /// Fingerprint of the spec the hasher was built from; identical to
    /// [`spec_fingerprint`] on that spec.
    pub fn fingerprint(&self) -> Fingerprint {
        self.full
    }

    /// Memoized subtree hash of the node with the given id.
    pub fn subtree_hash(&self, id: NodeId) -> Option<u128> {
        self.nodes.get(&id).map(|n| n.sub)
    }

    /// Number of memoized nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Fingerprint of the candidate `replace_node(spec, target, payload)`
    /// would produce, computed by rehashing only the payload and the
    /// target-to-root path.
    ///
    /// Returns `None` when the target id is unknown, the payload kind does
    /// not match the node kind, or the base spec's ids were not well formed —
    /// callers fall back to a full [`spec_fingerprint`] of the edited spec.
    pub fn fingerprint_replaced(&self, target: NodeId, payload: &NodeRepl) -> Option<Fingerprint> {
        if !self.ids_ok {
            return None;
        }
        let info = self.nodes.get(&target)?;
        let mut cur_hash = match (payload, info.is_formula) {
            (NodeRepl::Formula(f), true) => formula_hash(f),
            (NodeRepl::Expr(e), false) => expr_hash(e),
            _ => return None,
        };
        let mut cur = target;
        while let Some(p) = self.nodes.get(&cur).and_then(|n| n.parent) {
            let pi = self.nodes.get(&p)?;
            let child_hashes: Vec<u128> = pi
                .children
                .iter()
                .map(|c| {
                    if *c == cur {
                        cur_hash
                    } else {
                        self.nodes[c].sub
                    }
                })
                .collect();
            cur_hash = combine(pi.local, child_hashes);
            cur = p;
        }
        let mut h = Fnv::new();
        h.u128v(self.frame);
        for r in &self.roots {
            h.u128v(if *r == cur {
                cur_hash
            } else {
                self.nodes[r].sub
            });
        }
        Some(Fingerprint(h.finish()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_spec;
    use crate::printer::print_spec;
    use crate::walk::{collect_sites, node_at, replace_node};

    #[test]
    fn span_insensitive() {
        let a = parse_spec("sig A { f: set A }\nfact { all x: A | x in x.f }").unwrap();
        let b =
            parse_spec("sig A  {  f :  set A }\n\n\nfact {\n  all x : A | x in x.f\n}").unwrap();
        assert_eq!(spec_fingerprint(&a), spec_fingerprint(&b));
    }

    #[test]
    fn id_insensitive() {
        let a = parse_spec("sig A {}\nfact { some A }").unwrap();
        let mut b = a.clone();
        // Shift every id; fingerprint must not move.
        let mut generator = crate::visit::NodeIdGenerator::starting_at(1000);
        for f in &mut b.facts[0].body {
            crate::visit::freshen_formula_ids(f, &mut generator);
        }
        assert_eq!(spec_fingerprint(&a), spec_fingerprint(&b));
    }

    #[test]
    fn alpha_sensitive() {
        let a = parse_spec("sig A { f: set A }\nfact { all x: A | some x.f }").unwrap();
        let b = parse_spec("sig A { f: set A }\nfact { all y: A | some y.f }").unwrap();
        assert_ne!(spec_fingerprint(&a), spec_fingerprint(&b));
        // And matches the canonical-print discipline.
        assert_ne!(print_spec(&a), print_spec(&b));
    }

    #[test]
    fn distinguishes_operator_and_structure() {
        let cases = [
            "fact { some A + B }",
            "fact { some A - B }",
            "fact { some A & B }",
            "fact { some A } fact { some B }",
            "fact { some A some B }",
        ];
        let header = "sig A {} sig B {}\n";
        let mut seen = std::collections::HashSet::new();
        for c in cases {
            let spec = parse_spec(&format!("{header}{c}")).unwrap();
            assert!(
                seen.insert(spec_fingerprint(&spec)),
                "collision for case {c}"
            );
        }
    }

    #[test]
    fn hasher_matches_full_fingerprint() {
        let spec = parse_spec(
            "sig A { f: set A }\n\
             fact Inv { all x: A | x in x.f }\n\
             pred p[a: A] { some a.f }\n\
             fun g[a: A]: set A { a.f }\n\
             assert Q { no A }\n\
             check Q for 3",
        )
        .unwrap();
        let hasher = SpecHasher::new(&spec);
        assert_eq!(hasher.fingerprint(), spec_fingerprint(&spec));
        assert_eq!(hasher.node_count(), collect_sites(&spec).len());
    }

    #[test]
    fn incremental_matches_full_on_every_site() {
        let spec = parse_spec(
            "sig A { f: set A }\n\
             fact Inv { all x: A | x in x.f }\n\
             pred p[a: A] { some a.f or no a.f }\n\
             assert Q { no A }\n\
             check Q for 3",
        )
        .unwrap();
        let hasher = SpecHasher::new(&spec);
        let payload_f = crate::parser::parse_formula("some A").unwrap();
        let payload_e = crate::parser::parse_expr("A.f").unwrap();
        for site in collect_sites(&spec) {
            let payload = if site.is_formula {
                NodeRepl::Formula(payload_f.clone())
            } else {
                NodeRepl::Expr(payload_e.clone())
            };
            let incremental = hasher.fingerprint_replaced(site.id, &payload).unwrap();
            let edited = replace_node(&spec, site.id, payload).unwrap();
            assert_eq!(
                incremental,
                spec_fingerprint(&edited),
                "mismatch at site {:?}",
                site.id
            );
        }
    }

    #[test]
    fn identity_replacement_keeps_fingerprint() {
        let spec = parse_spec("sig A { f: set A }\nfact { all x: A | x in x.f }").unwrap();
        let hasher = SpecHasher::new(&spec);
        for site in collect_sites(&spec) {
            let payload = node_at(&spec, site.id).unwrap();
            assert_eq!(
                hasher.fingerprint_replaced(site.id, &payload),
                Some(hasher.fingerprint())
            );
        }
    }

    #[test]
    fn wrong_kind_or_unknown_id_is_none() {
        let spec = parse_spec("sig A {}\nfact { some A }").unwrap();
        let hasher = SpecHasher::new(&spec);
        let sites = collect_sites(&spec);
        let fsite = sites.iter().find(|s| s.is_formula).unwrap();
        assert!(hasher
            .fingerprint_replaced(fsite.id, &NodeRepl::Expr(Expr::ident("A")))
            .is_none());
        assert!(hasher
            .fingerprint_replaced(NodeId(9999), &NodeRepl::Formula(Formula::truth()))
            .is_none());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(96))]

        /// hash-equal ⟺ canonical-print-equal — the exact contract the old
        /// `Oracle::fingerprint` (a full `print_spec`) provided.
        #[test]
        fn hash_equal_iff_print_equal(
            f in crate::testgen::arb_formula(3),
            g in crate::testgen::arb_formula(3),
        ) {
            let mk = |body: Formula| {
                let mut spec = Spec {
                    sigs: vec![SigDecl {
                        name: "A".into(),
                        is_abstract: false,
                        mult: None,
                        parent: None,
                        fields: vec![FieldDecl {
                            name: "f".into(),
                            cols: vec!["A".into()],
                            mult: Mult::Set,
                            span: Span::synthetic(),
                        }, FieldDecl {
                            name: "g".into(),
                            cols: vec!["A".into()],
                            mult: Mult::Set,
                            span: Span::synthetic(),
                        }],
                        span: Span::synthetic(),
                    }, SigDecl {
                        name: "B".into(),
                        is_abstract: false,
                        mult: None,
                        parent: None,
                        fields: vec![],
                        span: Span::synthetic(),
                    }],
                    facts: vec![Fact { name: "F".into(), body: vec![body], span: Span::synthetic() }],
                    ..Spec::default()
                };
                spec.assign_ids();
                spec
            };
            let a = mk(f);
            let b = mk(g);
            proptest::prop_assert_eq!(
                spec_fingerprint(&a) == spec_fingerprint(&b),
                print_spec(&a) == print_spec(&b)
            );
        }
    }
}
