//! ARepair: test-driven greedy mutation repair.
//!
//! Faithful to the original tool's architecture (Wang, Sullivan, Khurshid,
//! ASE'18): given a faulty model and an AUnit test suite, perform a greedy
//! search over candidate edits, keeping any edit that strictly increases the
//! number of passing tests, until all tests pass or the search stalls.
//!
//! The reproduction derives its test suites from the specification's own
//! commands (see [`crate::support::derive_tests`]); like the original, the
//! only success criterion is *the tests pass* — which makes ARepair prone to
//! overfitting, exactly the weakness the paper observes (REP 194/1974).

use mualloy_analyzer::TestSuite;
use mualloy_syntax::Spec;
use specrepair_core::{CancelToken, OutcomeReason, RepairContext, RepairOutcome, RepairTechnique};
use specrepair_mutation::MutationEngine;

use crate::support::CandidateLedger;

/// The ARepair technique.
#[derive(Debug, Clone)]
pub struct ARepair {
    /// How many tests to derive per failing command.
    pub tests_per_command: usize,
}

impl Default for ARepair {
    fn default() -> Self {
        // A single test per failing command: the weak suites the paper's
        // ARepair evaluation suffers from (cf. its 194/1974 REP score).
        ARepair {
            tests_per_command: 1,
        }
    }
}

/// Greedy hill-climbing over single mutations, driven by a test suite.
///
/// Returns `(best candidate, tests all pass, candidates explored)`.
pub(crate) fn greedy_test_repair(
    start: &Spec,
    suite: &TestSuite,
    max_candidates: usize,
    thorough: bool,
    ledger: &mut CandidateLedger,
    cancel: &CancelToken,
) -> (Spec, bool, usize) {
    let mut explored = 0usize;
    let mut current = start.clone();
    let (_, mut current_fail) = suite.run(&current);
    while current_fail > 0 && explored < max_candidates && !cancel.is_cancelled() {
        let mutation_span = specrepair_trace::span(
            "technique.mutation_gen",
            specrepair_trace::Phase::Orchestration,
        );
        let engine = MutationEngine::new(&current);
        let mutations = engine.all_mutations();
        if mutation_span.is_active() {
            mutation_span.attr_u64("mutations", mutations.len() as u64);
        }
        drop(mutation_span);
        // First-improvement hill climbing (as in the original ARepair: the
        // first strictly-improving edit is taken immediately — fast and
        // overfitting-prone). ICEBAR's refinement loop asks for `thorough`
        // best-improvement steps instead.
        let mut best: Option<(Spec, usize)> = None;
        for m in &mutations {
            if explored >= max_candidates {
                break;
            }
            let Some(mutant) = engine.apply(m) else {
                continue;
            };
            if !ledger.admit(&mutant) {
                continue;
            }
            explored += 1;
            let (_, fail) = suite.run(&mutant);
            if fail < current_fail && best.as_ref().is_none_or(|(_, bf)| fail < *bf) {
                let done = fail == 0;
                best = Some((mutant, fail));
                if done || !thorough {
                    break;
                }
            }
        }
        match best {
            Some((mutant, fail)) => {
                current = mutant;
                current_fail = fail;
            }
            None => break, // local optimum
        }
    }
    (current, current_fail == 0, explored)
}

impl RepairTechnique for ARepair {
    fn name(&self) -> &str {
        "ARepair"
    }

    fn repair(&self, ctx: &RepairContext) -> RepairOutcome {
        let suite = crate::support::derive_tests(
            ctx.oracle.service(),
            &ctx.faulty,
            self.tests_per_command,
            true,
        );
        if suite.is_empty() {
            return RepairOutcome::failure(self.name(), 0, 0);
        }
        let mut ledger = CandidateLedger::new();
        // Test-suite evaluations are ground evaluations (no solving), about
        // two orders of magnitude cheaper than an oracle validation, so the
        // greedy search gets a proportionally larger allowance.
        let greedy_budget = ctx.budget.max_candidates.saturating_mul(8);
        let (candidate, tests_pass, explored) = greedy_test_repair(
            &ctx.faulty,
            &suite,
            greedy_budget,
            false,
            &mut ledger,
            &ctx.cancel,
        );
        let source = mualloy_syntax::print_spec(&candidate);
        let reason = if tests_pass {
            OutcomeReason::Repaired
        } else {
            RepairOutcome::failure_reason_for(ctx, OutcomeReason::BudgetExhausted)
        };
        RepairOutcome {
            technique: self.name().to_string(),
            success: tests_pass,
            reason,
            candidate: Some(candidate),
            candidate_source: Some(source),
            candidates_explored: explored,
            rounds: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_analyzer::Analyzer;
    use specrepair_core::RepairBudget;

    fn ctx(src: &str) -> RepairContext {
        RepairContext::from_source(src, RepairBudget::default()).unwrap()
    }

    #[test]
    fn repairs_simple_connective_bug() {
        // `some N || no N` is a tautology; ground truth is acyclicity.
        // Counterexample-rejection tests should push the search towards a
        // constraint rejecting self-loop/cycle counterexamples.
        let faulty = "sig N { next: lone N } \
            fact Broken { all n: N | n in n.next || n not in n.next } \
            assert NoSelf { all n: N | n not in n.next } \
            check NoSelf for 3 expect 0";
        let out = ARepair::default().repair(&ctx(faulty));
        assert!(out.candidate.is_some());
        if out.success {
            // Tests pass; the candidate should reject the recorded cexs.
            let suite = crate::support::derive_tests(
                &mualloy_analyzer::Oracle::new(),
                &ctx(faulty).faulty,
                3,
                true,
            );
            assert!(suite.all_pass(out.candidate.as_ref().unwrap()));
        }
    }

    #[test]
    fn no_tests_means_failure() {
        // A spec with no commands derives no tests.
        let out = ARepair::default().repair(&ctx("sig A { f: set A } fact { some A }"));
        assert!(!out.success);
        assert_eq!(out.candidates_explored, 0);
    }

    #[test]
    fn overfits_rather_than_generalizes() {
        // ARepair's success criterion is its tests, not the oracle: craft a
        // case where passing the derived tests does not fix the oracle, and
        // assert ARepair's internal success need not imply oracle success.
        let faulty = "sig N { next: lone N, back: lone N } \
            fact Broken { some N || no N } \
            assert NoSelf { all n: N | n not in n.next } \
            assert NoBackSelf { all n: N | n not in n.back } \
            check NoSelf for 3 expect 0 \
            check NoBackSelf for 3 expect 0";
        let out = ARepair {
            tests_per_command: 1, // very weak suite: maximal overfitting
        }
        .repair(&ctx(faulty));
        if let (true, Some(c)) = (out.success, &out.candidate) {
            // Either outcome is legal, but on this weak suite the candidate
            // passing ARepair's tests usually does NOT satisfy the oracle.
            // The oracle itself must answer cleanly either way.
            let verdict = Analyzer::new(c.clone())
                .satisfies_oracle()
                .expect("oracle evaluation must not error on a parsed candidate");
            if verdict {
                // Generalized despite the weak suite: fine, just rare.
                assert!(out.candidates_explored >= 1);
            }
        }
        assert!(out.candidates_explored > 0);
    }

    #[test]
    fn admission_tests_pin_current_instances() {
        let faulty = "sig N { next: lone N } \
            fact Broken { all n: N | n in n.next || n not in n.next } \
            assert NoSelf { all n: N | n not in n.next } \
            check NoSelf for 3 expect 0";
        let spec = ctx(faulty).faulty;
        let oracle = mualloy_analyzer::Oracle::new();
        let with = crate::support::derive_tests(&oracle, &spec, 2, true);
        let without = crate::support::derive_tests(&oracle, &spec, 2, false);
        assert!(
            with.len() > without.len(),
            "admission tests should be added"
        );
        // Admission tests pass on the faulty spec itself (they pin its
        // current instances).
        let admission_only: Vec<_> = with
            .tests()
            .iter()
            .filter(|t| t.name.starts_with("admit-current"))
            .collect();
        assert!(!admission_only.is_empty());
        for t in admission_only {
            assert_eq!(t.run(&spec).ok(), Some(true));
        }
    }

    #[test]
    fn deterministic_given_same_context() {
        let faulty = "sig N {} fact Dead { no N } pred p { some N } run p for 3 expect 1";
        let a = ARepair::default().repair(&ctx(faulty));
        let b = ARepair::default().repair(&ctx(faulty));
        assert_eq!(a.success, b.success);
        assert_eq!(a.candidate_source, b.candidate_source);
    }

    #[test]
    fn witness_and_admission_tests_conflict_by_design() {
        // The dead fact's only current instance is the empty one; pinning it
        // while also demanding a non-empty witness leaves no single-mutation
        // repair, so ARepair overfits or stalls — its documented weakness.
        let faulty = "sig N {} fact Dead { no N } pred p { some N } run p for 3 expect 1";
        let out = ARepair::default().repair(&ctx(faulty));
        assert!(out.candidate.is_some());
        assert!(out.candidates_explored > 0);
        if let (true, Some(c)) = (out.success, &out.candidate) {
            // If the tests were satisfiable after all, the result may still
            // fail the real oracle (overfitting) — both outcomes are legal,
            // but the oracle call itself must not be silently discarded.
            Analyzer::new(c.clone())
                .satisfies_oracle()
                .expect("oracle evaluation must not error on a parsed candidate");
        }
    }

    #[test]
    fn respects_candidate_budget() {
        let faulty = "sig N { next: lone N } \
            fact Broken { all n: N | n in n.next || n not in n.next } \
            assert NoSelf { all n: N | n not in n.next } \
            check NoSelf for 3 expect 0";
        let tiny = RepairContext::from_source(
            faulty,
            RepairBudget {
                max_candidates: 5,
                max_rounds: 1,
            },
        )
        .unwrap();
        let out = ARepair::default().repair(&tiny);
        // Greedy runs on the cheap test-evaluation currency: 8× allowance.
        assert!(out.candidates_explored <= 40);
    }
}
