//! ICEBAR: iterative counterexample-based refinement around an ARepair core.
//!
//! Faithful to Gutiérrez Brida et al. (ASE'22): starting from a property
//! oracle (the specification's commands with `expect` annotations), run the
//! test-driven repair core; when the produced candidate passes its tests but
//! still violates the property oracle, extract fresh counterexamples from
//! the candidate, strengthen the test suite with them, and iterate.

use specrepair_core::{OutcomeReason, RepairContext, RepairOutcome, RepairTechnique};

use crate::arepair::greedy_test_repair;
use crate::support::{counterexample_tests, derive_tests, CandidateLedger};

/// The ICEBAR technique.
#[derive(Debug, Clone)]
pub struct Icebar {
    /// Tests derived per failing command in the initial suite.
    pub tests_per_command: usize,
    /// Counterexamples harvested per refinement round.
    pub cexs_per_round: usize,
}

impl Default for Icebar {
    fn default() -> Self {
        Icebar {
            tests_per_command: 3,
            cexs_per_round: 4,
        }
    }
}

impl RepairTechnique for Icebar {
    fn name(&self) -> &str {
        "ICEBAR"
    }

    fn repair(&self, ctx: &RepairContext) -> RepairOutcome {
        let oracle = ctx.oracle.service();
        let mut suite = derive_tests(oracle, &ctx.faulty, self.tests_per_command, false);
        if suite.is_empty() {
            return RepairOutcome::failure(self.name(), 0, 0);
        }
        let mut ledger = CandidateLedger::new();
        // Oracle validations are bounded by the round loop (one per round),
        // far below the candidate budget; the session still charges each.
        let mut session = ctx.validation_session();
        let mut explored_total = 0usize;
        let mut last_candidate = ctx.faulty.clone();
        // Greedy search runs on cheap ground evaluations; see ARepair for
        // the budget-currency rationale.
        let per_round_budget =
            (ctx.budget.max_candidates.saturating_mul(8) / ctx.budget.max_rounds.max(1)).max(1);

        for round in 1..=ctx.budget.max_rounds {
            if ctx.cancelled() {
                break;
            }
            let (candidate, tests_pass, explored) = greedy_test_repair(
                &ctx.faulty,
                &suite,
                per_round_budget,
                true,
                &mut ledger,
                &ctx.cancel,
            );
            explored_total += explored;
            last_candidate = candidate.clone();
            if !tests_pass {
                // The core could not even satisfy the tests: adding more
                // tests cannot help.
                break;
            }
            // Overfitting check against the property oracle.
            if session.validate(&candidate) == Some(true) {
                let source = mualloy_syntax::print_spec(&candidate);
                return RepairOutcome {
                    technique: self.name().to_string(),
                    success: true,
                    reason: OutcomeReason::Repaired,
                    candidate: Some(candidate),
                    candidate_source: Some(source),
                    candidates_explored: explored_total,
                    rounds: round,
                };
            }
            // Strengthen with counterexamples from the overfitted candidate.
            let new_tests = counterexample_tests(oracle, &candidate, self.cexs_per_round, round);
            if new_tests.is_empty() {
                break; // no reliable counterexamples to refine with
            }
            suite.extend(new_tests);
        }
        let source = mualloy_syntax::print_spec(&last_candidate);
        RepairOutcome {
            technique: self.name().to_string(),
            success: false,
            reason: RepairOutcome::failure_reason_for(ctx, OutcomeReason::BudgetExhausted),
            candidate: Some(last_candidate),
            candidate_source: Some(source),
            candidates_explored: explored_total,
            rounds: ctx.budget.max_rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_analyzer::Analyzer;
    use specrepair_core::RepairBudget;

    fn ctx(src: &str) -> RepairContext {
        RepairContext::from_source(src, RepairBudget::default()).unwrap()
    }

    #[test]
    fn repairs_tautological_fact() {
        let faulty = "sig N { next: lone N } \
            fact Broken { all n: N | n in n.next || n not in n.next } \
            assert NoSelf { all n: N | n not in n.next } \
            check NoSelf for 3 expect 0";
        let out = Icebar::default().repair(&ctx(faulty));
        assert!(
            out.success,
            "ICEBAR should iterate to an oracle-passing fix"
        );
        let c = out.candidate.unwrap();
        assert!(Analyzer::new(c).satisfies_oracle().unwrap());
    }

    #[test]
    fn success_implies_oracle_not_just_tests() {
        let faulty = "sig N { next: lone N, back: lone N } \
            fact Broken { some N || no N } \
            assert NoSelf { all n: N | n not in n.next } \
            assert NoBackSelf { all n: N | n not in n.back } \
            check NoSelf for 3 expect 0 \
            check NoBackSelf for 3 expect 0";
        let out = Icebar::default().repair(&ctx(faulty));
        if let Some(c) = &out.candidate {
            if out.success {
                assert!(Analyzer::new(c.clone()).satisfies_oracle().unwrap());
            }
        }
    }

    #[test]
    fn rounds_are_bounded() {
        let faulty = "sig N { next: lone N } \
            fact Broken { all n: N | n in n.next || n not in n.next } \
            assert NoSelf { all n: N | n not in n.next } \
            check NoSelf for 3 expect 0";
        let tight = RepairContext::from_source(
            faulty,
            RepairBudget {
                max_candidates: 30,
                max_rounds: 2,
            },
        )
        .unwrap();
        let out = Icebar::default().repair(&tight);
        assert!(out.rounds <= 2);
        assert!(out.candidates_explored <= 30 + 4 /* oracle validations */);
    }

    #[test]
    fn no_tests_means_failure() {
        let out = Icebar::default().repair(&ctx("sig A { f: set A }"));
        assert!(!out.success);
        assert_eq!(out.rounds, 0);
    }
}
