//! # specrepair-traditional
//!
//! From-scratch reproductions of the four traditional Alloy repair tools
//! compared in the study:
//!
//! | Tool | Strategy | Oracle |
//! |------|----------|--------|
//! | [`ARepair`] | greedy, test-driven mutation search | AUnit tests only (overfits) |
//! | [`Icebar`]  | counterexample-driven iterative test strengthening around the ARepair core | tests + property oracle |
//! | [`BeAFix`]  | bounded-exhaustive mutation search with pruning | property oracle |
//! | [`Atr`]     | fault localization + repair templates, pruned by counterexample/instance evidence | property oracle |
//!
//! All four implement [`specrepair_core::RepairTechnique`] and validate
//! candidates against the *specification's own* commands — never against
//! the ground truth, which only the metrics layer sees.
//!
//! # Example
//!
//! ```
//! use specrepair_core::{RepairContext, RepairBudget, RepairTechnique};
//! use specrepair_traditional::Atr;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ctx = RepairContext::from_source(
//!     "sig N {} fact Dead { no N } pred p { some N } run p for 3 expect 1",
//!     RepairBudget::default(),
//! )?;
//! let outcome = Atr::default().repair(&ctx);
//! assert!(outcome.success);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod arepair;
pub mod atr;
pub mod beafix;
pub mod icebar;
pub mod support;

pub use arepair::ARepair;
pub use atr::Atr;
pub use beafix::BeAFix;
pub use icebar::Icebar;

/// Constructs the study's four traditional techniques with their default
/// configurations, boxed for uniform handling.
pub fn default_suite() -> Vec<Box<dyn specrepair_core::RepairTechnique>> {
    vec![
        Box::new(ARepair::default()),
        Box::new(Icebar::default()),
        Box::new(BeAFix::default()),
        Box::new(Atr::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use specrepair_core::{RepairBudget, RepairContext};

    #[test]
    fn suite_contains_the_four_tools() {
        let names: Vec<String> = default_suite()
            .iter()
            .map(|t| t.name().to_string())
            .collect();
        assert_eq!(names, vec!["ARepair", "ICEBAR", "BeAFix", "ATR"]);
    }

    #[test]
    fn every_tool_handles_a_trivial_fault() {
        let faulty = "sig N {} fact Dead { no N } pred p { some N } run p for 3 expect 1";
        let ctx = RepairContext::from_source(faulty, RepairBudget::default()).unwrap();
        for tool in default_suite() {
            let out = tool.repair(&ctx);
            assert_eq!(out.technique, tool.name());
            // The oracle-driven tools find this single-mutation fault;
            // ARepair may overfit to its pinned instances (by design) but
            // must still produce a candidate.
            if tool.name() == "ARepair" {
                assert!(out.candidate.is_some());
            } else {
                assert!(out.success, "{} failed the trivial fault", tool.name());
            }
        }
    }
}
