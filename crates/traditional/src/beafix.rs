//! BeAFix: bounded-exhaustive mutation search with pruning.
//!
//! Faithful to Gutiérrez Brida et al. (ICSE'21): the tool systematically
//! explores the space of mutants up to a fixed edit depth, validating
//! candidates against the specification's property oracle (assertions and
//! `expect`-annotated commands, no tests needed). Pruning keeps the search
//! feasible: structural duplicates are skipped, ill-formed mutants are
//! discarded before any solving, and the depth-2 stage mutates only the
//! constraint sites the depth-1 stage touched (BeAFix's "suspicious
//! location" restriction).

use mualloy_syntax::ast::Spec;
use mualloy_syntax::{check_spec, spec_fingerprint, Fingerprint, SpecHasher};
use specrepair_core::{
    localization::constraint_sites, OracleSession, OutcomeReason, RepairContext, RepairOutcome,
    RepairTechnique,
};
use specrepair_mutation::MutationEngine;

use crate::support::CandidateLedger;

/// The BeAFix technique.
#[derive(Debug, Clone)]
pub struct BeAFix {
    /// Maximum stacked-edit depth (the original evaluates 1 and 2).
    pub max_depth: usize,
}

impl Default for BeAFix {
    fn default() -> Self {
        BeAFix { max_depth: 2 }
    }
}

impl BeAFix {
    fn try_candidate(
        &self,
        candidate: Spec,
        key: Fingerprint,
        ledger: &mut CandidateLedger,
        session: &mut OracleSession<'_>,
    ) -> Option<Result<Spec, Spec>> {
        if session.exhausted() {
            return None; // out of budget: abort search
        }
        if !ledger.admit(&candidate) || !check_spec(&candidate).is_empty() {
            return Some(Err(candidate)); // pruned without validation
        }
        match session.validate_keyed(&candidate, key) {
            Some(true) => Some(Ok(candidate)),
            _ => Some(Err(candidate)),
        }
    }
}

impl RepairTechnique for BeAFix {
    fn name(&self) -> &str {
        "BeAFix"
    }

    fn repair(&self, ctx: &RepairContext) -> RepairOutcome {
        let mut ledger = CandidateLedger::new();
        let mut session = ctx.validation_session();

        // Depth 1: every single mutation, in deterministic order.
        let mutation_span = specrepair_trace::span(
            "technique.mutation_gen",
            specrepair_trace::Phase::Orchestration,
        );
        let engine = MutationEngine::new(&ctx.faulty);
        let mutations = engine.all_mutations();
        if mutation_span.is_active() {
            mutation_span.attr_u64("mutations", mutations.len() as u64);
            mutation_span.attr_u64("depth", 1);
        }
        drop(mutation_span);
        for m in &mutations {
            let Some(mutant) = engine.apply(m) else {
                continue;
            };
            // Depth-1 mutants are single-node rewrites of the faulty spec:
            // their fingerprint is an O(path) incremental rehash.
            let key = ctx.fingerprint_edit(&mutant, m.site, &m.repl);
            match self.try_candidate(mutant, key, &mut ledger, &mut session) {
                Some(Ok(fixed)) => {
                    return RepairOutcome::success_with(self.name(), fixed, session.validated(), 1)
                }
                Some(Err(_)) => {}
                None => {
                    return RepairOutcome::failure(self.name(), session.validated(), 1).with_reason(
                        RepairOutcome::failure_reason_for(ctx, OutcomeReason::BudgetExhausted),
                    )
                }
            }
        }

        if self.max_depth >= 2 {
            // Depth 2, restricted to constraint sites (facts/preds bodies):
            // stack a second mutation on each depth-1 mutant.
            let suspicious: Vec<_> = constraint_sites(&ctx.faulty)
                .iter()
                .map(|s| s.span)
                .collect();
            for m1 in &mutations {
                // Restriction: the first edit must touch a constraint site.
                if !suspicious
                    .iter()
                    .any(|s| m1.span.start < s.end && s.start < m1.span.end)
                {
                    continue;
                }
                let Some(level1) = engine.apply(m1) else {
                    continue;
                };
                let mutation_span = specrepair_trace::span(
                    "technique.mutation_gen",
                    specrepair_trace::Phase::Orchestration,
                );
                let engine2 = MutationEngine::new(&level1);
                let level2_mutations = engine2.all_mutations();
                if mutation_span.is_active() {
                    mutation_span.attr_u64("mutations", level2_mutations.len() as u64);
                    mutation_span.attr_u64("depth", 2);
                }
                drop(mutation_span);
                // One memoized hasher per level-1 mutant amortizes over all
                // of its level-2 rewrites.
                let hasher2 = SpecHasher::new(&level1);
                for m2 in level2_mutations {
                    let Some(level2) = engine2.apply(&m2) else {
                        continue;
                    };
                    let key = hasher2
                        .fingerprint_replaced(m2.site, &m2.repl)
                        .unwrap_or_else(|| spec_fingerprint(&level2));
                    match self.try_candidate(level2, key, &mut ledger, &mut session) {
                        Some(Ok(fixed)) => {
                            return RepairOutcome::success_with(
                                self.name(),
                                fixed,
                                session.validated(),
                                2,
                            )
                        }
                        Some(Err(_)) => {}
                        None => {
                            return RepairOutcome::failure(self.name(), session.validated(), 2)
                                .with_reason(RepairOutcome::failure_reason_for(
                                    ctx,
                                    OutcomeReason::BudgetExhausted,
                                ))
                        }
                    }
                }
            }
        }

        RepairOutcome::failure(self.name(), session.validated(), self.max_depth).with_reason(
            RepairOutcome::failure_reason_for(ctx, OutcomeReason::BudgetExhausted),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_analyzer::Analyzer;
    use specrepair_core::RepairBudget;

    fn ctx(src: &str) -> RepairContext {
        RepairContext::from_source(src, RepairBudget::default()).unwrap()
    }

    #[test]
    fn fixes_single_operator_bug() {
        // `some n` should be `no n` style bug: quantifier swapped.
        let faulty = "sig N { next: lone N } \
            fact Acyclic { some n: N | n in n.^next } \
            pred hasNode { some N } \
            assert NoSelf { all n: N | n not in n.next } \
            run hasNode for 3 expect 1 \
            check NoSelf for 3 expect 0";
        let out = BeAFix::default().repair(&ctx(faulty));
        assert!(
            out.success,
            "single quantifier swap is in the depth-1 space"
        );
        assert!(Analyzer::new(out.candidate.unwrap())
            .satisfies_oracle()
            .unwrap());
        assert_eq!(out.rounds, 1);
    }

    #[test]
    fn depth_two_fixes_stacked_bug() {
        // Two stacked edits: quantifier swapped AND comparison negated.
        let faulty = "sig N { next: lone N } \
            fact Acyclic { some n: N | n not in n.^next } \
            pred hasEdge { some next } \
            assert NoSelf { all n: N | n not in n.next } \
            run hasEdge for 3 expect 1 \
            check NoSelf for 3 expect 0";
        let out = BeAFix::default().repair(&ctx(faulty));
        // Fixable at depth ≤ 2 (possibly depth 1 via a different edit).
        assert!(out.success);
        assert!(Analyzer::new(out.candidate.unwrap())
            .satisfies_oracle()
            .unwrap());
    }

    #[test]
    fn budget_exhaustion_fails_gracefully() {
        let faulty = "sig N { next: lone N } \
            fact Acyclic { some n: N | n in n.^next } \
            assert NoSelf { all n: N | n not in n.next } \
            check NoSelf for 3 expect 0";
        let tight = RepairContext::from_source(
            faulty,
            RepairBudget {
                max_candidates: 2,
                max_rounds: 1,
            },
        )
        .unwrap();
        let out = BeAFix::default().repair(&tight);
        assert!(out.candidates_explored <= 2);
    }

    #[test]
    fn already_correct_spec_found_immediately() {
        // A "faulty" spec that actually satisfies its oracle: BeAFix's
        // depth-1 scan will hit an oracle-passing mutant quickly (possibly
        // the equivalent of the original).
        let fine = "sig N { next: lone N } \
            fact { no n: N | n in n.^next } \
            assert NoSelf { all n: N | n not in n.next } \
            check NoSelf for 3 expect 0";
        let out = BeAFix::default().repair(&ctx(fine));
        assert!(out.success);
    }

    #[test]
    fn unfixable_within_budget_returns_failure_without_candidate() {
        // A `check … expect 1` on a tautology can never be satisfied:
        // assertion bodies are outside the mutation space.
        let faulty = "sig A {} fact F { no A } \
            assert Tautology { no none } \
            check Tautology for 2 expect 1";
        let out = BeAFix::default().repair(&ctx(faulty));
        assert!(!out.success);
        assert!(out.candidate.is_none());
    }
}
