//! ATR: template-based repair driven by counterexample/instance analysis.
//!
//! Faithful to Zheng et al. (ISSTA'22): ATR (a) localizes suspicious
//! constraints by analyzing the differences between counterexamples and
//! satisfying instances, (b) instantiates repair candidates from predefined
//! templates over the specification's vocabulary, and (c) prunes the
//! candidate space cheaply by requiring every candidate to reject the cached
//! counterexamples and keep admitting the cached satisfying instances before
//! any full validation is spent on it.

use mualloy_analyzer::Oracle;
use mualloy_relational::{assert_body, pred_as_existential, Evaluator, Instance};
use mualloy_syntax::ast::*;
use mualloy_syntax::walk::{node_at, replace_node, NodeRepl, NodeSite};
use mualloy_syntax::Fingerprint;
use specrepair_core::{
    localization::{constraint_sites, localize_with},
    OutcomeReason, RepairContext, RepairOutcome, RepairTechnique,
};
use specrepair_mutation::{MutationEngine, Vocabulary};

use crate::support::CandidateLedger;

/// The ATR technique.
#[derive(Debug, Clone)]
pub struct Atr {
    /// How many top-ranked suspicious sites to attempt.
    pub top_sites: usize,
    /// Counterexamples/instances cached for pruning.
    pub cache_per_command: usize,
    /// Cap on synthesized template instantiations per site.
    pub max_templates_per_site: usize,
}

impl Default for Atr {
    fn default() -> Self {
        Atr {
            top_sites: 6,
            cache_per_command: 3,
            max_templates_per_site: 160,
        }
    }
}

/// Cached evidence used for candidate screening.
struct Evidence {
    /// Counterexamples that must be *rejected* by a repaired spec, paired
    /// with the name of the violated assertion.
    rejected: Vec<(String, Instance)>,
    /// Witnesses that must remain admitted, paired with the predicate name.
    admitted: Vec<(String, Instance)>,
}

fn gather_evidence(oracle: &Oracle, spec: &Spec, per_command: usize) -> Evidence {
    let mut rejected = Vec::new();
    let mut admitted = Vec::new();
    if let Ok(outcomes) = oracle.execute_all(spec) {
        for out in outcomes {
            match &out.command.kind {
                CommandKind::Check(name) if out.sat && !out.matches_expectation() => {
                    if let Ok(cexs) =
                        oracle.counterexamples(spec, name, out.command.scope, per_command)
                    {
                        rejected.extend(cexs.into_iter().map(|c| (name.clone(), c)));
                    }
                }
                CommandKind::Run(name) if out.sat && out.matches_expectation() => {
                    if let Some(inst) = out.instance {
                        admitted.push((name.clone(), inst));
                    }
                }
                _ => {}
            }
        }
    }
    Evidence { rejected, admitted }
}

/// Screening verdict: how a candidate fares against the cached evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Screen {
    /// Rejects every counterexample and keeps every witness.
    Strong,
    /// Rejects every counterexample but loses a witness. Witnesses were
    /// produced under the *faulty* spec, so losing one is only a soft
    /// signal — such candidates are validated after the strong ones.
    Weak,
    /// Still admits a counterexample: discarded without validation.
    Fail,
}

/// Cheap screen judged by ground evaluation (no solving).
fn screen(candidate: &Spec, evidence: &Evidence) -> Screen {
    if !rejects_counterexamples(candidate, evidence) {
        return Screen::Fail;
    }
    if keeps_witnesses(candidate, evidence) {
        Screen::Strong
    } else {
        Screen::Weak
    }
}

fn rejects_counterexamples(candidate: &Spec, evidence: &Evidence) -> bool {
    for (assert_name, cex) in &evidence.rejected {
        // Rejection: NOT (facts && !assert) on the counterexample.
        let Ok(body) = assert_body(candidate, assert_name) else {
            return false;
        };
        let ev = Evaluator::new(cex);
        let facts_hold = candidate.facts.iter().all(|f| {
            f.body.iter().all(|g| {
                mualloy_relational::elaborate_formula(candidate, g)
                    .ok()
                    .and_then(|e| ev.formula(&e).ok())
                    .unwrap_or(false)
            })
        });
        let assert_holds = ev.formula(&body).unwrap_or(false);
        if facts_hold && !assert_holds {
            return false; // the counterexample would still be admitted
        }
    }
    true
}

fn keeps_witnesses(candidate: &Spec, evidence: &Evidence) -> bool {
    for (pred_name, inst) in &evidence.admitted {
        let Ok(formula) = pred_as_existential(candidate, pred_name) else {
            return false;
        };
        let ev = Evaluator::new(inst);
        let facts_hold = candidate.facts.iter().all(|f| {
            f.body.iter().all(|g| {
                mualloy_relational::elaborate_formula(candidate, g)
                    .ok()
                    .and_then(|e| ev.formula(&e).ok())
                    .unwrap_or(false)
            })
        });
        if !(facts_hold && ev.formula(&formula).unwrap_or(false)) {
            return false; // a known-good witness was lost
        }
    }
    true
}

// ATR's predefined repair templates live in
// [`specrepair_mutation::synthesis`], shared with the synthetic LLM (which
// models the same synthesis capability); see that module for the grammar.
use specrepair_mutation::synthesis::{synthesis_mutations, template_formulas};

impl RepairTechnique for Atr {
    fn name(&self) -> &str {
        "ATR"
    }

    fn repair(&self, ctx: &RepairContext) -> RepairOutcome {
        let oracle = ctx.oracle.service();
        let mut ledger = CandidateLedger::new();
        let mut session = ctx.validation_session();
        let evidence = gather_evidence(oracle, &ctx.faulty, self.cache_per_command);
        let vocab = Vocabulary::of(&ctx.faulty);

        // Ranked suspicious sites; fall back to all constraint sites.
        let loc = localize_with(oracle, &ctx.faulty);
        let all_sites = constraint_sites(&ctx.faulty);
        let ranked_ids = loc.top_sites(self.top_sites);
        let sites: Vec<&NodeSite> = if ranked_ids.is_empty() {
            all_sites.iter().take(self.top_sites).collect()
        } else {
            ranked_ids
                .iter()
                .filter_map(|id| all_sites.iter().find(|s| s.id == *id))
                .collect()
        };

        let mutation_span = specrepair_trace::span(
            "technique.mutation_gen",
            specrepair_trace::Phase::Orchestration,
        );
        let engine = MutationEngine::new(&ctx.faulty);
        drop(mutation_span);
        for site in sites {
            // (a) mutation-level candidates at the site and its subtree.
            // Each candidate is a single-node rewrite of the faulty spec, so
            // it carries its incrementally-rehashed canonical fingerprint.
            let mut candidates: Vec<(Spec, Fingerprint)> = Vec::new();
            for m in engine.all_mutations() {
                // Only mutations within the suspicious site's span.
                if m.span.start >= site.span.start
                    && m.span.end <= site.span.end.max(site.span.start + 1)
                {
                    if let Some(mutant) = engine.apply(&m) {
                        let key = ctx.fingerprint_edit(&mutant, m.site, &m.repl);
                        candidates.push((mutant, key));
                    }
                }
            }
            // (b) whole-constraint template replacements and template
            // strengthenings (conjunct additions) at the site.
            if let Some(NodeRepl::Formula(_)) = node_at(&ctx.faulty, site.id) {
                for tf in template_formulas(&vocab, site, self.max_templates_per_site / 2) {
                    let payload = NodeRepl::Formula(tf);
                    if let Some(cand) = replace_node(&ctx.faulty, site.id, payload.clone()) {
                        let key = ctx.fingerprint_edit(&cand, site.id, &payload);
                        candidates.push((cand, key));
                    }
                }
                for m in synthesis_mutations(
                    &ctx.faulty,
                    &vocab,
                    std::slice::from_ref(site),
                    self.max_templates_per_site / 2,
                ) {
                    if let Some(cand) = replace_node(&ctx.faulty, m.site, m.repl.clone()) {
                        let key = ctx.fingerprint_edit(&cand, m.site, &m.repl);
                        candidates.push((cand, key));
                    }
                }
            }
            // Screen candidates cheaply, then validate strong ones first:
            // witnesses recorded under the faulty spec may themselves be
            // tainted, so weak candidates stay eligible, just deprioritized.
            let mut strong = Vec::new();
            let mut weak = Vec::new();
            for (cand, key) in candidates {
                if !ledger.admit(&cand) || !mualloy_syntax::check_spec(&cand).is_empty() {
                    continue;
                }
                match screen(&cand, &evidence) {
                    Screen::Strong => strong.push((cand, key)),
                    Screen::Weak => weak.push((cand, key)),
                    Screen::Fail => {}
                }
            }
            for (cand, key) in strong.into_iter().chain(weak) {
                match session.validate_keyed(&cand, key) {
                    None => {
                        return RepairOutcome::failure(self.name(), session.validated(), 1)
                            .with_reason(RepairOutcome::failure_reason_for(
                                ctx,
                                OutcomeReason::BudgetExhausted,
                            ))
                    }
                    Some(true) => {
                        return RepairOutcome::success_with(
                            self.name(),
                            cand,
                            session.validated(),
                            1,
                        )
                    }
                    Some(false) => {}
                }
            }
        }
        RepairOutcome::failure(self.name(), session.validated(), 1).with_reason(
            RepairOutcome::failure_reason_for(ctx, OutcomeReason::BudgetExhausted),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_analyzer::Analyzer;
    use specrepair_core::RepairBudget;

    fn ctx(src: &str) -> RepairContext {
        RepairContext::from_source(src, RepairBudget::default()).unwrap()
    }

    #[test]
    fn fixes_dead_fact() {
        let faulty = "sig N {} fact Dead { no N } pred p { some N } run p for 3 expect 1";
        let out = Atr::default().repair(&ctx(faulty));
        assert!(out.success);
        let c = out.candidate.unwrap();
        assert!(Analyzer::new(c).satisfies_oracle().unwrap());
    }

    #[test]
    fn fixes_quantifier_swap_bug() {
        let faulty = "sig N { next: lone N } \
            fact Acyclic { some n: N | n in n.^next } \
            pred hasNode { some N } \
            assert NoSelf { all n: N | n not in n.next } \
            run hasNode for 3 expect 1 \
            check NoSelf for 3 expect 0";
        let out = Atr::default().repair(&ctx(faulty));
        assert!(out.success);
    }

    #[test]
    fn screen_rejects_candidates_that_keep_counterexamples() {
        let faulty = mualloy_syntax::parse_spec(
            "sig N { next: lone N } \
             fact Broken { all n: N | n in n.next || n not in n.next } \
             assert NoSelf { all n: N | n not in n.next } \
             check NoSelf for 3 expect 0",
        )
        .unwrap();
        let evidence = gather_evidence(&Oracle::new(), &faulty, 2);
        assert!(!evidence.rejected.is_empty());
        // The faulty spec itself fails its own screen.
        assert_eq!(screen(&faulty, &evidence), Screen::Fail);
        // The ground truth passes.
        let fixed = mualloy_syntax::parse_spec(
            "sig N { next: lone N } \
             fact Fixed { no n: N | n in n.^next } \
             assert NoSelf { all n: N | n not in n.next } \
             check NoSelf for 3 expect 0",
        )
        .unwrap();
        assert_ne!(screen(&fixed, &evidence), Screen::Fail);
    }

    #[test]
    fn template_pool_is_bounded_and_varied() {
        let spec =
            mualloy_syntax::parse_spec("sig A { f: set A } fact { all x: A | x in x.f }").unwrap();
        let vocab = Vocabulary::of(&spec);
        let sites = constraint_sites(&spec);
        let templates = template_formulas(&vocab, &sites[0], 50);
        assert!(!templates.is_empty());
        assert!(templates.len() <= 50);
        // Contains both multiplicity and comparison shapes.
        assert!(templates
            .iter()
            .any(|f| matches!(f, Formula::Mult(_, _, _))));
    }

    #[test]
    fn respects_budget() {
        let faulty = "sig N { next: lone N } \
            fact Broken { all n: N | n in n.next || n not in n.next } \
            assert NoSelf { all n: N | n not in n.next } \
            check NoSelf for 3 expect 0";
        let tight = RepairContext::from_source(
            faulty,
            RepairBudget {
                max_candidates: 3,
                max_rounds: 1,
            },
        )
        .unwrap();
        let out = Atr::default().repair(&tight);
        assert!(out.candidates_explored <= 3);
    }

    #[test]
    fn unfixable_spec_reports_failure() {
        // `check Tautology … expect 1` demands a counterexample to a
        // tautology; assertion bodies are never mutated, so no edit to the
        // facts or predicates can ever satisfy this oracle.
        let faulty = "sig A {} fact F { no A } \
            assert Tautology { no none } \
            check Tautology for 2 expect 1";
        let out = Atr::default().repair(&ctx(faulty));
        assert!(!out.success);
    }
}
