//! Shared machinery for the traditional repair tools: structural candidate
//! deduplication and derivation of AUnit tests from a specification's own
//! commands. Oracle validation and its budget accounting live in
//! [`specrepair_core::OracleSession`] — the shared memoizing oracle
//! charges one budget unit per validated candidate.

use mualloy_analyzer::{AUnitTest, Oracle, TestSuite};
use mualloy_relational::{assert_body, pred_as_existential};
use mualloy_syntax::ast::*;
use mualloy_syntax::walk::strip_spec_spans;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

/// Deduplicates structurally-identical candidates.
#[derive(Debug, Default)]
pub struct CandidateLedger {
    seen: HashSet<u64>,
}

impl CandidateLedger {
    /// Creates an empty ledger.
    pub fn new() -> CandidateLedger {
        CandidateLedger::default()
    }

    /// Registers a candidate; returns `false` when it is a structural
    /// duplicate of one already seen (and should be skipped for free).
    pub fn admit(&mut self, candidate: &Spec) -> bool {
        let mut hasher = DefaultHasher::new();
        strip_spec_spans(candidate).hash(&mut hasher);
        self.seen.insert(hasher.finish())
    }
}

/// Derives an AUnit test suite from a specification's commands — the
/// reproduction's stand-in for the user-provided suites the original
/// ARepair consumes.
///
/// - a failing `check … expect 0` contributes its counterexample as a test
///   requiring `facts && !assert` to be *false* on that valuation (the
///   counterexample must stop being admitted);
/// - a failing `run … expect 1` contributes a facts-free witness of the
///   predicate as a test requiring `facts && pred` to be *true*;
/// - a passing `run` contributes its witness as a regression test;
/// - with `admission_tests`, instances the *faulty* specification admits
///   are pinned as must-stay-admitted valuations. These are tainted by the
///   bug — the intended repair often has to exclude them — and are the
///   overfitting trap the paper blames for ARepair's low REP scores.
///   ICEBAR's oracle-driven refinement does not use them.
pub fn derive_tests(
    oracle: &Oracle,
    spec: &Spec,
    per_command: usize,
    admission_tests: bool,
) -> TestSuite {
    let span = specrepair_trace::span(
        "technique.test_derivation",
        specrepair_trace::Phase::Orchestration,
    );
    if span.is_active() {
        span.attr_u64("per_command", per_command as u64);
        span.attr_bool("admission_tests", admission_tests);
    }
    let mut suite = TestSuite::new();
    let Ok(outcomes) = oracle.execute_all(spec) else {
        return suite;
    };
    for out in outcomes {
        match (&out.command.kind, out.matches_expectation()) {
            (CommandKind::Check(name), false) if out.sat => {
                // Unexpected counterexamples: they must be rejected.
                let Ok(body) = assert_body(spec, name) else {
                    continue;
                };
                let negated = Formula::not(body);
                if let Ok(cexs) = oracle.counterexamples(spec, name, out.command.scope, per_command)
                {
                    for (i, cex) in cexs.into_iter().enumerate() {
                        suite.push(AUnitTest::new(
                            format!("reject-cex-{name}-{i}"),
                            cex,
                            negated.clone(),
                            false,
                        ));
                    }
                }
            }
            (CommandKind::Run(name), false) if !out.sat => {
                // Unexpectedly unsatisfiable run: manufacture witnesses from
                // a facts-free copy (ARepair's overfitting trap).
                let mut relaxed = spec.clone();
                relaxed.facts.clear();
                let Ok(formula) = pred_as_existential(&relaxed, name) else {
                    continue;
                };
                if let Ok(insts) =
                    oracle.enumerate(&relaxed, &formula, out.command.scope, per_command)
                {
                    for (i, inst) in insts.into_iter().enumerate() {
                        suite.push(AUnitTest::new(
                            format!("admit-witness-{name}-{i}"),
                            inst,
                            formula.clone(),
                            true,
                        ));
                    }
                }
            }
            (CommandKind::Run(name), true) if out.sat => {
                // Regression: keep admitting the current witness.
                let Ok(formula) = pred_as_existential(spec, name) else {
                    continue;
                };
                if let Some(inst) = out.instance {
                    suite.push(AUnitTest::new(
                        format!("regression-{name}"),
                        inst,
                        formula,
                        true,
                    ));
                }
            }
            _ => {}
        }
    }
    if admission_tests && !suite.is_empty() {
        // Pin a couple of currently-admitted instances (tainted by the
        // fault) as must-stay-admitted valuations.
        if let Ok(insts) = oracle.enumerate(spec, &Formula::truth(), default_scope(spec), 3) {
            for (i, inst) in insts.into_iter().enumerate() {
                suite.push(AUnitTest::new(
                    format!("admit-current-{i}"),
                    inst,
                    Formula::truth(),
                    true,
                ));
            }
        }
    }
    suite
}

/// The largest command scope declared in the spec (3 when none).
fn default_scope(spec: &Spec) -> u32 {
    spec.commands.iter().map(|c| c.scope).max().unwrap_or(3)
}

/// Derives *strengthening* tests from a candidate's current failures, used
/// by ICEBAR's refinement loop. Unlike [`derive_tests`] this only adds
/// counterexample-rejection tests (the reliable kind).
pub fn counterexample_tests(
    oracle: &Oracle,
    candidate: &Spec,
    per_command: usize,
    round: usize,
) -> Vec<AUnitTest> {
    let span = specrepair_trace::span(
        "technique.test_derivation",
        specrepair_trace::Phase::Orchestration,
    );
    if span.is_active() {
        span.attr_u64("per_command", per_command as u64);
        span.attr_u64("round", round as u64);
    }
    let mut tests = Vec::new();
    let Ok(outcomes) = oracle.execute_all(candidate) else {
        return tests;
    };
    for out in outcomes {
        if let (CommandKind::Check(name), false) = (&out.command.kind, out.matches_expectation()) {
            if !out.sat {
                continue;
            }
            let Ok(body) = assert_body(candidate, name) else {
                continue;
            };
            let negated = Formula::not(body);
            if let Ok(cexs) =
                oracle.counterexamples(candidate, name, out.command.scope, per_command)
            {
                for (i, cex) in cexs.into_iter().enumerate() {
                    tests.push(AUnitTest::new(
                        format!("icebar-r{round}-{name}-{i}"),
                        cex,
                        negated.clone(),
                        false,
                    ));
                }
            }
        }
    }
    tests
}

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_syntax::parse_spec;

    const FAULTY: &str = "sig N { next: lone N } \
        fact Broken { some N || no N } \
        assert NoSelf { all n: N | n not in n.next } \
        check NoSelf for 3 expect 0";

    #[test]
    fn ledger_dedups_structural_clones() {
        let spec = parse_spec(FAULTY).unwrap();
        let mut ledger = CandidateLedger::new();
        assert!(ledger.admit(&spec));
        assert!(!ledger.admit(&spec.clone()));
    }

    #[test]
    fn session_validation_counts_and_judges() {
        let good = parse_spec(
            "sig N { next: lone N } fact { no n: N | n in n.^next } \
             assert NoSelf { all n: N | n not in n.next } check NoSelf for 3 expect 0",
        )
        .unwrap();
        let bad = parse_spec(FAULTY).unwrap();
        let handle = specrepair_core::OracleHandle::fresh();
        let mut session = handle.session(5);
        assert_eq!(session.validate(&good), Some(true));
        assert_eq!(session.validate(&bad), Some(false));
        assert_eq!(session.validated(), 2);
    }

    #[test]
    fn derive_tests_rejects_counterexamples() {
        let spec = parse_spec(FAULTY).unwrap();
        let suite = derive_tests(&Oracle::new(), &spec, 2, false);
        assert!(!suite.is_empty());
        // The faulty spec fails its own derived tests…
        assert!(!suite.all_pass(&spec));
        // …but the correct spec passes them.
        let fixed =
            parse_spec(&FAULTY.replace("some N || no N", "no n: N | n in n.^next")).unwrap();
        assert!(suite.all_pass(&fixed));
    }

    #[test]
    fn derive_tests_handles_unsat_run() {
        let spec = parse_spec("sig N {} fact Dead { no N } pred p { some N } run p for 3 expect 1")
            .unwrap();
        let suite = derive_tests(&Oracle::new(), &spec, 2, false);
        assert!(!suite.is_empty(), "witness tests from the facts-free spec");
        assert!(!suite.all_pass(&spec));
    }

    #[test]
    fn counterexample_tests_strengthen() {
        let spec = parse_spec(FAULTY).unwrap();
        let tests = counterexample_tests(&Oracle::new(), &spec, 3, 1);
        assert!(!tests.is_empty());
        for t in &tests {
            assert!(!t.expect);
            assert!(t.name.starts_with("icebar-r1-"));
        }
    }

    #[test]
    fn correct_spec_produces_only_regressions() {
        let good = parse_spec(
            "sig N { next: lone N } fact { no n: N | n in n.^next } \
             pred hasEdge { some next } run hasEdge for 3 expect 1",
        )
        .unwrap();
        let suite = derive_tests(&Oracle::new(), &good, 2, false);
        assert!(suite
            .tests()
            .iter()
            .all(|t| t.name.starts_with("regression-")));
        assert!(suite.all_pass(&good));
    }
}
