//! Integration: the incremental oracle subsystem agrees with cold solving
//! at every layer.
//!
//! - SAT layer (property-based): an [`IncrementalSession`] answers exactly
//!   what a fresh [`Solver`] answers for every root in a random mutation
//!   sequence, and every SAT witness it returns actually satisfies the
//!   root under circuit evaluation.
//! - Analyzer layer: an incremental [`Oracle`] and a cold one return the
//!   same verdict for a family of candidate mutations, while the
//!   incremental one demonstrably reuses clauses across candidates.

use mualloy_analyzer::Oracle;
use mualloy_sat::{BoolRef, Circuit, IncrementalSession, SolveResult, Solver};
use mualloy_syntax::parse_spec;
use proptest::prelude::*;

const NUM_INPUTS: usize = 4;

/// A random expression as a straight-line gate program over the inputs:
/// each step picks an op and two earlier nodes, the last node is the root.
type Program = Vec<(u8, usize, usize)>;

fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec((0u8..3, 0usize..64, 0usize..64), 1..20)
}

/// Builds `program` into the circuit over the shared inputs.
fn build(c: &mut Circuit, inputs: &[BoolRef], program: &Program) -> BoolRef {
    let mut nodes: Vec<BoolRef> = inputs.to_vec();
    for &(op, a, b) in program {
        let a = nodes[a % nodes.len()];
        let b = nodes[b % nodes.len()];
        nodes.push(match op {
            0 => !a,
            1 => c.and(a, b),
            _ => c.or(a, b),
        });
    }
    *nodes.last().unwrap()
}

/// Decodes a session model into circuit-input values.
fn inputs_of(session: &IncrementalSession, model: &[bool]) -> Vec<bool> {
    session
        .input_lits()
        .iter()
        .map(|l| model[l.var().index()] == l.is_positive())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// One session over a random skeleton conjoined with a sequence of
    /// random mutated fragments: each check answers what a cold solver
    /// answers, and SAT witnesses evaluate true.
    #[test]
    fn session_agrees_with_cold_solver(
        skeleton in arb_program(),
        variants in proptest::collection::vec(arb_program(), 1..6),
    ) {
        let mut c = Circuit::new();
        let inputs: Vec<BoolRef> = (0..NUM_INPUTS).map(|_| c.input()).collect();
        let skeleton = build(&mut c, &inputs, &skeleton);
        let mut session = IncrementalSession::new();
        for variant in &variants {
            let fragment = build(&mut c, &inputs, variant);
            let root = c.and(skeleton, fragment);
            let incremental = session.check(&c, root);
            let mut cold = Solver::new();
            let _ = c.encode(root, &mut cold);
            prop_assert_eq!(incremental.is_sat(), cold.solve().is_sat());
            if let SolveResult::Sat(model) = &incremental {
                // Pad: inputs the encoder never materialized default false.
                let mut vals = inputs_of(&session, model);
                vals.resize(NUM_INPUTS, false);
                prop_assert!(c.eval(root, &vals), "witness must satisfy the root");
            }
        }
        prop_assert_eq!(session.stats().checks, variants.len() as u64);
    }
}

const FAULTY: &str = "sig N { next: lone N } \
    fact Acyclic { no n: N | n in n.^next } \
    pred somePath { some n: N | some n.next } \
    assert NoSelfLoop { all n: N | n not in n.next } \
    run somePath for 3 expect 1 \
    check NoSelfLoop for 3 expect 0";

#[test]
fn oracle_incremental_and_cold_verdicts_agree() {
    let incremental = Oracle::new();
    let cold = Oracle::new();
    cold.disable_incremental();
    assert!(incremental.incremental_enabled());
    assert!(!cold.incremental_enabled());

    // Candidate mutations of one faulty spec, the shape every repair
    // search produces: same skeleton, varied fact/assert/pred bodies.
    let variants = [
        FAULTY.to_string(),
        FAULTY.replace("no n: N | n in n.^next", "some N || no N"),
        FAULTY.replace("all n: N | n not in n.next", "no N"),
        FAULTY.replace("some n: N | some n.next", "no next"),
        FAULTY.replace("expect 0", "expect 1"),
    ];
    for src in &variants {
        let spec = parse_spec(src).unwrap();
        assert_eq!(
            incremental.satisfies_oracle(&spec).unwrap(),
            cold.satisfies_oracle(&spec).unwrap(),
            "verdicts must agree on `{src}`"
        );
    }

    let stats = incremental.incremental_stats();
    assert!(
        stats.checks > 0,
        "engine must have answered checks: {stats:?}"
    );
    assert_eq!(
        stats.fallbacks, 0,
        "no candidate should fall back: {stats:?}"
    );
    assert!(
        stats.clause_reuse_rate() > 0.0,
        "later candidates must reuse earlier clauses: {stats:?}"
    );
    let cold_stats = cold.incremental_stats();
    assert_eq!(
        cold_stats.checks, 0,
        "a disabled engine must never run: {cold_stats:?}"
    );
}
