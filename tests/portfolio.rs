//! Integration: the racing portfolio scheduler end to end.
//!
//! The contract under test is the tentpole's determinism claim: racing a
//! roster at N workers produces byte-identical `SpecRecord`s to the
//! one-worker sequential fallback chain, which itself equals the
//! `UnionHybrid` composition of the same members — so the portfolio
//! reproduces the Table II union rows while only the wall-clock changes.
//! Alongside it: a deliberately-slow entrant is *observably* cancelled (its
//! oracle call count stops growing once a faster entrant wins), and a
//! `FaultyLm`-afflicted entrant loses the race instead of stalling it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use proptest::prelude::*;
use specrepair_benchmarks::RepairProblem;
use specrepair_core::{
    CancelToken, OracleHandle, RepairBudget, RepairContext, RepairOutcome, RepairTechnique,
    UnionHybrid,
};
use specrepair_faults::FaultPlan;
use specrepair_llm::{
    FaultyLm, FeedbackSetting, MultiRound, PromptSetting, ResilientLm, RetryPolicy, SingleRound,
    SyntheticLm,
};
use specrepair_portfolio::{Entrant, Portfolio};
use specrepair_study::runner::{hints_for_with, record_from};
use specrepair_study::{portfolio, RosterId, StudyConfig, TechniqueId};
use specrepair_traditional::ARepair;

/// The shared smoke corpus, generated once.
fn problems() -> &'static Vec<RepairProblem> {
    static PROBLEMS: OnceLock<Vec<RepairProblem>> = OnceLock::new();
    PROBLEMS.get_or_init(|| specrepair_benchmarks::full_study(0.002))
}

fn config(seed: u64) -> StudyConfig {
    StudyConfig {
        scale: 0.002,
        seed,
        ..StudyConfig::default()
    }
}

/// Races `roster` on `problem` at the given worker count and scores the
/// merged outcome into the `SpecRecord` the study would emit.
fn record_at(
    roster: RosterId,
    problem: &RepairProblem,
    config: &StudyConfig,
    workers: usize,
) -> String {
    let raced = portfolio::race(
        &OracleHandle::fresh(),
        roster,
        problem,
        config,
        Some(workers),
    );
    let record = record_from(problem, roster.label(), &raced.outcome);
    serde_json::to_string(&record).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Determinism: the same roster + seed yields byte-identical records at
    /// one worker (the sequential fallback chain) and at eight.
    #[test]
    fn one_vs_eight_workers_is_byte_identical(
        seed in any::<u64>(),
        problem_index in 0usize..64,
        roster_index in 0usize..3,
    ) {
        let roster = [
            RosterId::ArepairSrLoc,
            RosterId::ArepairMrAuto,
            RosterId::Traditional,
        ][roster_index];
        let problems = problems();
        let problem = &problems[problem_index % problems.len()];
        let config = config(seed);
        let sequential = record_at(roster, problem, &config, 1);
        let racing = record_at(roster, problem, &config, 8);
        prop_assert_eq!(sequential, racing);
    }
}

/// The full 12-technique roster is deterministic too, over every smoke
/// problem (non-proptest so it runs the whole sample exactly once).
#[test]
fn all_techniques_roster_is_deterministic_across_the_sample() {
    let config = config(42);
    for problem in problems() {
        assert_eq!(
            record_at(RosterId::All, problem, &config, 1),
            record_at(RosterId::All, problem, &config, 8),
            "divergence on {}",
            problem.id
        );
    }
}

/// Wraps a technique so it always runs under its own calibrated budget —
/// how the portfolio treats entrants, applied here to `UnionHybrid` arms so
/// the two compositions are comparable member-for-member.
struct Budgeted<T> {
    inner: T,
    budget: RepairBudget,
}

impl<T: RepairTechnique> RepairTechnique for Budgeted<T> {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn repair(&self, ctx: &RepairContext) -> RepairOutcome {
        let ctx = RepairContext {
            faulty: ctx.faulty.clone(),
            source: ctx.source.clone(),
            budget: self.budget,
            oracle: ctx.oracle.clone(),
            hasher: ctx.hasher.clone(),
            cancel: ctx.cancel.clone(),
        };
        self.inner.repair(&ctx)
    }
}

/// The acceptance criterion: the portfolio's REP vector equals the
/// sequential `UnionHybrid` union of the same roster — checked field by
/// field on the whole smoke sample, not just REP.
#[test]
fn portfolio_equals_the_union_hybrid_of_its_roster() {
    let config = config(42);
    let roster = RosterId::ArepairSrLoc;
    for problem in problems() {
        let oracle = OracleHandle::fresh();
        let raced = portfolio::race(&oracle, roster, problem, &config, Some(4));
        let portfolio_record = record_from(problem, roster.label(), &raced.outcome);

        // The same pair as a sequential UnionHybrid, each arm under the
        // member's calibrated budget and the same shared oracle.
        let oracle = OracleHandle::fresh();
        let hybrid = UnionHybrid::new(
            Budgeted {
                inner: ARepair::default(),
                budget: config.budget_for(TechniqueId::ARepair),
            },
            Budgeted {
                inner: SingleRound::new(PromptSetting::Loc, config.seed)
                    .with_hints(hints_for_with(oracle.service(), problem))
                    .with_lm(ResilientLm::synthetic()),
                budget: config.budget_for(TechniqueId::Single(PromptSetting::Loc)),
            },
        );
        let ctx = RepairContext::new(problem.faulty.clone(), RepairBudget::default())
            .with_source(&problem.faulty_source)
            .with_oracle(oracle.clone())
            .with_cancel(CancelToken::none());
        let union = hybrid.repair(&ctx);
        let union_record = record_from(problem, roster.label(), &union);

        assert_eq!(
            serde_json::to_string(&portfolio_record).unwrap(),
            serde_json::to_string(&union_record).unwrap(),
            "portfolio and UnionHybrid diverged on {}",
            problem.id
        );
    }
}

/// A deliberately-slow entrant is observably cancelled: once the fast
/// entrant wins, the slow one's oracle call count stops growing (well short
/// of the bound it would otherwise reach).
#[test]
fn slow_entrant_is_observably_cancelled() {
    const BOUND: usize = 100_000;
    let problem = &problems()[0];
    let oracle = OracleHandle::fresh();
    let ctx = RepairContext::new(problem.faulty.clone(), RepairBudget::default())
        .with_source(&problem.faulty_source)
        .with_oracle(oracle.clone())
        .with_cancel(CancelToken::none());
    let slow_calls = AtomicUsize::new(0);
    let entrants = vec![
        Entrant::new("fast-win", RepairBudget::default(), |c: &RepairContext| {
            std::thread::sleep(Duration::from_millis(10));
            RepairOutcome::success_with("fast-win", c.faulty.clone(), 1, 1)
        }),
        Entrant::new("slow", RepairBudget::default(), |c: &RepairContext| {
            let mut n = 0;
            while !c.cancelled() && n < BOUND {
                let _ = c.oracle.service().failing_commands(&c.faulty);
                n += 1;
                slow_calls.store(n, Ordering::SeqCst);
            }
            RepairOutcome::failure("slow", n, 1)
        }),
    ];
    let out = Portfolio::new("P").with_workers(2).race(&ctx, entrants);
    assert_eq!(out.winner, Some(0));
    assert!(
        out.entrants[1].cancelled_at_ms.is_some(),
        "slow entrant was never cancelled: {:?}",
        out.entrants[1]
    );
    let calls_at_finish = slow_calls.load(Ordering::SeqCst);
    assert!(
        calls_at_finish < BOUND,
        "slow entrant ran to its bound despite the cancellation"
    );
    // The race has fully joined: the count is frozen — no zombie worker
    // keeps hammering the oracle after the merged outcome is returned.
    let queries = |s: mualloy_analyzer::OracleCacheStats| s.hits + s.misses;
    let frozen = queries(oracle.stats());
    std::thread::sleep(Duration::from_millis(25));
    assert_eq!(queries(oracle.stats()), frozen);
    assert_eq!(slow_calls.load(Ordering::SeqCst), calls_at_finish);
}

/// Chaos-compat: an entrant whose LM transport always faults exhausts its
/// retries, fails, and thereby *loses* the race — it neither stalls the
/// scheduler nor poisons the merged outcome.
#[test]
fn faulty_lm_entrant_loses_instead_of_stalling() {
    let problem = &problems()[0];
    let oracle = OracleHandle::fresh();
    let ctx = RepairContext::new(problem.faulty.clone(), RepairBudget::default())
        .with_source(&problem.faulty_source)
        .with_oracle(oracle.clone())
        .with_cancel(CancelToken::none());
    let afflicted_lm = ResilientLm::over(FaultyLm::new(
        SyntheticLm::default(),
        FaultPlan::new(0xBAD, 1.0),
    ))
    .with_policy(RetryPolicy::snappy().with_max_retries(3));
    let afflicted = MultiRound::new(FeedbackSetting::Auto, 7).with_lm(afflicted_lm);
    let entrants = vec![
        Entrant::new(
            "afflicted",
            RepairBudget::default(),
            move |c: &RepairContext| afflicted.repair(c),
        ),
        Entrant::new("healthy", RepairBudget::default(), |c: &RepairContext| {
            RepairOutcome::success_with("healthy", c.faulty.clone(), 1, 1)
        }),
    ];
    let out = Portfolio::new("P").with_workers(2).race(&ctx, entrants);
    assert!(
        !out.entrants[0].success,
        "a 100%-fault LM must not produce a success: {:?}",
        out.entrants[0]
    );
    assert_eq!(out.winner, Some(1), "the healthy entrant wins the race");
    assert!(out.outcome.success);
}
