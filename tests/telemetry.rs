//! Integration tests for the unified telemetry subsystem over real TCP:
//! the Prometheus exposition endpoint reconciling exactly with the legacy
//! JSON document, the time-series history ring (sampling, monotone
//! indices, drain-time JSONL dump), and the router's fleet-wide
//! `/cluster/metrics` aggregation with a killed shard reported stale.

use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use specrepair_server::server::{roundtrip, spawn, ShardConfig};
use specrepair_server::service::push_json_string;
use specrepair_server::{router, RouterConfig, ServerConfig, ServerHandle};
use specrepair_telemetry::{prom, Sample, SampleValue, Snapshot};

const FAULTY: &str = "sig N { next: lone N } \
    fact { some n: N | n in n.next } \
    assert NoSelf { all n: N | n not in n.next } \
    check NoSelf for 3 expect 0";

fn repair_body(spec: &str, technique: &str) -> String {
    let mut escaped = String::new();
    push_json_string(spec, &mut escaped);
    format!("{{\"spec\":{escaped},\"technique\":\"{technique}\"}}")
}

fn call(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connecting");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    roundtrip(&mut stream, method, path, body).expect("a well-formed response")
}

/// A unique scratch file under the system temp dir.
fn temp_file(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "specrepaird-telemetry-{name}-{}",
        std::process::id()
    ))
}

/// The counter sample with this exact series id, or a panic naming it.
fn counter_value(samples: &[Sample], id: &str) -> u64 {
    let sample = samples
        .iter()
        .find(|s| s.id() == id)
        .unwrap_or_else(|| panic!("no sample {id}"));
    match sample.value {
        SampleValue::Counter(n) => n,
        ref other => panic!("{id} is not a counter: {other:?}"),
    }
}

/// Reads `pointer` out of a JSON document, failing with the path.
fn json_field<'a>(value: &'a serde::Value, pointer: &[&str]) -> &'a serde::Value {
    let mut cursor = value;
    for key in pointer {
        let serde::Value::Map(map) = cursor else {
            panic!("{pointer:?}: not a map at {key}");
        };
        cursor = &map
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("{pointer:?}: no {key}"))
            .1;
    }
    cursor
}

fn json_u64(value: &serde::Value, pointer: &[&str]) -> u64 {
    match json_field(value, pointer) {
        serde::Value::U64(n) => *n,
        serde::Value::I64(n) => *n as u64,
        other => panic!("{pointer:?}: not an integer: {other:?}"),
    }
}

#[test]
fn prom_exposition_reconciles_exactly_with_the_json_document() {
    let handle = spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    })
    .expect("binding an ephemeral port");
    let addr = handle.addr().to_string();

    // Two repairs of the same spec: a miss, then an oracle-cache hit.
    for _ in 0..2 {
        let (status, body) = call(&addr, "POST", "/repair", &repair_body(FAULTY, "ATR"));
        assert_eq!(status, 200, "{body}");
    }

    let (status, json_body) = call(&addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let (status, prom_body) = call(&addr, "GET", "/metrics/prom", "");
    assert_eq!(status, 200);
    assert!(prom_body.starts_with("# HELP"), "{prom_body}");

    // The exposition parses back into the same sample list the JSON
    // snapshot produces: the two endpoints are views of one registry.
    let snapshot = Snapshot::from_json(&json_body).expect("JSON document decodes");
    let samples = prom::parse(&prom_body).expect("exposition parses");
    assert_eq!(
        counter_value(&samples, "specrepair_oracle_hits_total"),
        snapshot.oracle_cache.hits
    );
    assert_eq!(
        counter_value(&samples, "specrepair_oracle_misses_total"),
        snapshot.oracle_cache.misses
    );
    // The typed decoder does not recover per-endpoint request rows, so
    // this comparison reads the raw JSON document.
    let repair_ok = "specrepair_requests_total{endpoint=\"repair\",status=\"200\"}";
    let json_doc: serde::Value = serde_json::from_str(&json_body).expect("metrics is JSON");
    let json_repair_ok = json_u64(&json_doc, &["requests", "repair", "200"]);
    assert_eq!(counter_value(&samples, repair_ok), json_repair_ok);
    assert!(json_repair_ok >= 2, "both repairs were counted");
    // Histograms survive the text round trip with full bucket fidelity.
    let latency = samples
        .iter()
        .find(|s| s.id() == "specrepair_repair_latency_us{technique=\"ATR\"}")
        .expect("the ATR latency histogram is exposed");
    match &latency.value {
        SampleValue::Histogram(h) => {
            assert!(h.count() >= 2, "both repairs recorded a latency");
            assert!(h.sum_micros() > 0);
        }
        other => panic!("latency series is not a histogram: {other:?}"),
    }

    handle.shutdown();
    handle.join();
}

#[test]
fn history_ring_samples_monotonically_and_dumps_on_drain() {
    // A daemon without the flag answers the endpoint with enabled: false.
    let plain = spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    })
    .expect("binding an ephemeral port");
    let (status, body) = call(&plain.addr().to_string(), "GET", "/metrics/history", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"enabled\": false"), "{body}");
    plain.shutdown();
    plain.join();

    let dump = temp_file("history.jsonl");
    let _ = std::fs::remove_file(&dump);
    let handle = spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        metrics_history_interval_ms: 25,
        metrics_history_capacity: 64,
        metrics_history_file: Some(dump.clone()),
        ..ServerConfig::default()
    })
    .expect("binding an ephemeral port");
    let addr = handle.addr().to_string();

    let (status, body) = call(&addr, "POST", "/repair", &repair_body(FAULTY, "ATR"));
    assert_eq!(status, 200, "{body}");
    std::thread::sleep(Duration::from_millis(150));

    let (status, body) = call(&addr, "GET", "/metrics/history", "");
    assert_eq!(status, 200);
    let doc: serde::Value = serde_json::from_str(&body).expect("history is JSON");
    assert_eq!(json_field(&doc, &["enabled"]), &serde::Value::Bool(true));
    assert_eq!(json_u64(&doc, &["interval_ms"]), 25);
    let serde::Value::Seq(samples) = json_field(&doc, &["samples"]) else {
        panic!("samples is not a list: {body}");
    };
    assert!(samples.len() >= 2, "expected >= 2 samples in {body}");
    // Sample indices are the deterministic tick numbers: strictly
    // increasing, and counters never move backwards between ticks.
    let mut last_index = None;
    let mut last_requests = 0.0f64;
    for sample in samples {
        let index = json_u64(sample, &["index"]);
        assert!(last_index.is_none_or(|prev| index > prev), "{body}");
        last_index = Some(index);
        let serde::Value::Map(values) = json_field(sample, &["values"]) else {
            panic!("values is not a map: {body}");
        };
        let requests: f64 = values
            .iter()
            .filter(|(k, _)| k.starts_with("specrepair_requests_total"))
            .map(|(_, v)| match v {
                serde::Value::F64(n) => *n,
                serde::Value::U64(n) => *n as f64,
                other => panic!("not a number: {other:?}"),
            })
            .sum();
        assert!(requests >= last_requests, "a counter went backwards");
        last_requests = requests;
    }

    // Drain writes the ring to the JSONL file, one sample per line.
    handle.shutdown();
    handle.join();
    let dumped = std::fs::read_to_string(&dump).expect("the drain dump exists");
    assert!(!dumped.trim().is_empty(), "the dump is empty");
    for line in dumped.lines() {
        let parsed: serde::Value = serde_json::from_str(line).expect("each line is JSON");
        json_u64(&parsed, &["index"]);
    }
    let _ = std::fs::remove_file(&dump);
}

#[test]
fn cluster_metrics_aggregates_shards_and_marks_dead_ones_stale() {
    // Two shards on reserved ports plus a router, as tests/cluster.rs.
    let reservations: Vec<TcpListener> = (0..2)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserving a port"))
        .collect();
    let peers: Vec<String> = reservations
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect();
    let mut shards: Vec<Option<ServerHandle>> = Vec::new();
    for (shard_id, reservation) in reservations.into_iter().enumerate() {
        drop(reservation);
        let handle = spawn(ServerConfig {
            addr: peers[shard_id].clone(),
            shard: Some(ShardConfig {
                shard_id,
                peers: peers.clone(),
            }),
            ..ServerConfig::default()
        })
        .expect("shard binds its reserved port");
        shards.push(Some(handle));
    }
    let router = router::spawn_router(RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: peers.clone(),
        ..RouterConfig::default()
    })
    .expect("router binds an ephemeral port");
    let router_addr = router.addr().to_string();

    let (status, body) = call(&router_addr, "POST", "/repair", &repair_body(FAULTY, "ATR"));
    assert_eq!(status, 200, "{body}");
    // Shard 1 also cold-solves a spec nobody has seen: the ring assigns
    // the routed spec to a port-dependent owner, so this pins a miss on
    // the shard that survives the kill below either way.
    let faulty_m = FAULTY
        .replace(" N ", " M ")
        .replace("N |", "M |")
        .replace(": N", ": M");
    let (status, body) = call(&peers[1], "POST", "/repair", &repair_body(&faulty_m, "ATR"));
    assert_eq!(status, 200, "{body}");

    // The fleet counter is the sum of what each shard exposes itself.
    let mut want_hits = 0u64;
    for peer in &peers {
        let (status, exposition) = call(peer, "GET", "/metrics/prom", "");
        assert_eq!(status, 200);
        let samples = prom::parse(&exposition).expect("shard exposition parses");
        want_hits += counter_value(&samples, "specrepair_oracle_misses_total");
    }
    let (status, body) = call(&router_addr, "GET", "/cluster/metrics", "");
    assert_eq!(status, 200);
    let doc: serde::Value = serde_json::from_str(&body).expect("fleet document is JSON");
    assert_eq!(json_u64(&doc, &["shards_total"]), 2);
    assert_eq!(json_u64(&doc, &["shards_ok"]), 2);
    assert_eq!(json_u64(&doc, &["shards_stale"]), 0);
    assert_eq!(
        json_u64(&doc, &["counters", "specrepair_oracle_misses_total"]),
        want_hits
    );

    // Kill one shard: its scrape fails, it is labeled stale, and the
    // aggregate keeps serving from the survivor.
    let dead = shards[0].take().expect("shard 0 running");
    dead.shutdown();
    dead.join();
    let (status, body) = call(&router_addr, "GET", "/cluster/metrics", "");
    assert_eq!(status, 200);
    let doc: serde::Value = serde_json::from_str(&body).expect("fleet document is JSON");
    assert_eq!(json_u64(&doc, &["shards_total"]), 2);
    assert_eq!(json_u64(&doc, &["shards_ok"]), 1);
    assert_eq!(json_u64(&doc, &["shards_stale"]), 1);
    assert_eq!(
        json_field(&doc, &["shards", peers[0].as_str(), "stale"]),
        &serde::Value::Bool(true)
    );
    let serde::Value::Str(error) = json_field(&doc, &["shards", peers[0].as_str(), "error"]) else {
        panic!("stale shard carries no error: {body}");
    };
    assert!(!error.is_empty());
    assert_eq!(
        json_field(&doc, &["shards", peers[1].as_str(), "stale"]),
        &serde::Value::Bool(false)
    );
    // Aggregated counters are still present (now from one shard only).
    assert!(
        json_u64(&doc, &["counters", "specrepair_oracle_misses_total"]) >= 1,
        "{body}"
    );

    router.shutdown();
    router.join();
    for shard in shards.iter_mut().filter_map(Option::take) {
        shard.shutdown();
        shard.join();
    }
}
