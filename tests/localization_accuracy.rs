//! Integration: fault-localization quality over the benchmark corpora.
//!
//! The injected faults carry their true spans, so we can score the
//! FLACK-style localizer the way the localization literature does: by the
//! rank of the first reported site that overlaps a true fault location.

use specrepair_core::{first_hit_rank, localization::constraint_sites, localize};

#[test]
fn localizer_ranks_true_fault_sites_highly() {
    let problems = specrepair_benchmarks::full_study(0.004);
    let mut localized = 0usize;
    let mut top3_hits = 0usize;
    let mut scored = 0usize;
    for p in &problems {
        let loc = localize(&p.faulty);
        if loc.ranked.is_empty() {
            continue;
        }
        scored += 1;
        if let Some(rank) = first_hit_rank(&loc, &p.fault_spans) {
            localized += 1;
            if rank <= 3 {
                top3_hits += 1;
            }
        }
    }
    assert!(
        scored * 2 >= problems.len(),
        "localizer should usually rank something"
    );
    // At least half of the localizable faults should be hit at all, and a
    // meaningful share within the top 3 (the hybrid pipelines rely on this).
    assert!(
        localized * 2 >= scored,
        "only {localized}/{scored} faults were localized at any rank"
    );
    assert!(
        top3_hits * 3 >= localized,
        "only {top3_hits}/{localized} localized faults were in the top 3"
    );
}

#[test]
fn localization_scores_are_ordered_and_positive() {
    for p in specrepair_benchmarks::arepair(0.2) {
        let loc = localize(&p.faulty);
        for w in loc.ranked.windows(2) {
            assert!(w[0].score >= w[1].score, "{}", p.id);
        }
        for s in &loc.ranked {
            assert!(s.score > 0.0, "{}", p.id);
        }
    }
}

#[test]
fn constraint_sites_cover_facts_and_preds_only() {
    for p in specrepair_benchmarks::arepair(0.2) {
        let sites = constraint_sites(&p.faulty);
        assert!(!sites.is_empty(), "{}", p.id);
        for s in &sites {
            assert!(
                matches!(
                    s.owner.0,
                    mualloy_syntax::OwnerKind::Fact | mualloy_syntax::OwnerKind::Pred
                ),
                "{}",
                p.id
            );
        }
    }
}

#[test]
fn deleted_constraints_are_localizable_via_vocabulary() {
    // A deletion fault leaves a trivially-true formula behind; the
    // under-constraint scorer must still rank sites (by vocabulary overlap
    // with the violated assertion), not return an empty ranking.
    let problems = specrepair_benchmarks::alloy4fun(0.02);
    let deletions: Vec<_> = problems
        .iter()
        .filter(|p| p.edits.iter().any(|e| e == "delete constraint"))
        .collect();
    assert!(
        !deletions.is_empty(),
        "difficulty mix must include deletions"
    );
    let mut ranked_any = 0;
    for p in &deletions {
        if !localize(&p.faulty).ranked.is_empty() {
            ranked_any += 1;
        }
    }
    assert!(
        ranked_any * 2 >= deletions.len(),
        "only {ranked_any}/{} deletion faults produced a ranking",
        deletions.len()
    );
}
