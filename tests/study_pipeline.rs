//! Integration: the full study pipeline regenerates all paper artifacts at
//! smoke scale with internally consistent numbers.

use specrepair_study::{ablation, fig2, fig3, runner, table1, table2, StudyConfig, TechniqueId};

fn smoke() -> (
    Vec<specrepair_benchmarks::RepairProblem>,
    runner::StudyResults,
) {
    runner::run_full_study(&StudyConfig {
        scale: 0.004,
        seed: 21,
        ..StudyConfig::default()
    })
}

#[test]
fn all_artifacts_build_from_one_run() {
    let (problems, results) = smoke();

    // Table I.
    let t1 = table1::build(&results);
    assert_eq!(t1.rows.last().unwrap().total_specs, problems.len());
    let text = table1::render(&t1);
    for needle in [
        "classroom",
        "graphs",
        "trash",
        "student",
        "Summary",
        "Total",
    ] {
        assert!(text.contains(needle), "table1 missing {needle}");
    }

    // Figure 2.
    let f2 = fig2::build(&results);
    assert_eq!(f2.bars.len(), 12);

    // Figure 3.
    let f3 = fig3::build(&results);
    assert_eq!(f3.samples, problems.len());
    // Traditional tools correlate strongly with one another (Finding 3).
    if let Some(r) = f3.correlation("ICEBAR", "ATR") {
        assert!(
            r > 0.0,
            "ICEBAR/ATR correlation should be positive, got {r}"
        );
    }

    // Table II + Figure 4.
    let t2 = table2::build(&results);
    assert_eq!(t2.rows.len(), 32);
    let best = t2.best().unwrap();
    assert!(best.total_unique <= problems.len());
    // Every hybrid's count matches a recount from the rep vectors.
    for row in &t2.rows {
        let tv = results.rep_vector(&row.traditional);
        let lv = results.rep_vector(&row.llm);
        let union = tv.iter().zip(&lv).filter(|(a, b)| **a || **b).count();
        assert_eq!(union, row.total_unique);
    }

    // Table II's per-technique columns agree with Table I's totals.
    let t1_total = t1.rows.last().unwrap();
    for (i, id) in TechniqueId::all().iter().enumerate() {
        let from_rows = results.rep_count(id.label(), None);
        assert_eq!(t1_total.rep[i], from_rows);
    }
}

#[test]
fn hybrids_beat_their_constituents_in_aggregate() {
    let (_, results) = smoke();
    let t2 = table2::build(&results);
    for row in &t2.rows {
        assert!(row.total_unique >= row.traditional_repairs);
        assert!(row.total_unique >= row.llm_repairs);
    }
}

#[test]
fn ablation_runs_on_a_subsample() {
    let problems = specrepair_benchmarks::arepair(0.2);
    let a = ablation::run(
        &problems,
        &StudyConfig {
            scale: 0.2,
            seed: 21,
            ..StudyConfig::default()
        },
    );
    assert_eq!(a.arms.len(), 3);
    assert!(a.arms.iter().all(|arm| arm.repaired <= a.total_specs));
}

#[test]
fn cached_study_is_byte_identical_to_uncached() {
    // The shared memoizing oracle must be a pure performance layer: running
    // the full study with the cache on and off must produce the same
    // results to the byte, while the cached run actually hits the cache.
    let problems = specrepair_benchmarks::full_study(0.003);
    let config = StudyConfig {
        scale: 0.003,
        seed: 17,
        ..StudyConfig::default()
    };
    let (cached, stats_on) = runner::run_study_cached(&problems, &config, true);
    let (uncached, stats_off) = runner::run_study_cached(&problems, &config, false);
    assert_eq!(
        serde_json::to_string(&cached).unwrap(),
        serde_json::to_string(&uncached).unwrap(),
        "oracle caching changed study results"
    );
    let (stats_on, stats_off) = (stats_on.cache, stats_off.cache);
    assert!(stats_on.hits > 0, "cached run never hit the memo table");
    assert!(stats_on.hit_rate() > 0.0);
    assert_eq!(stats_off.hits, 0, "disabled cache must never report hits");
    assert!(
        stats_on.solver_invocations < stats_off.solver_invocations,
        "caching should save solver invocations ({} vs {})",
        stats_on.solver_invocations,
        stats_off.solver_invocations
    );
}

#[test]
fn dedup_study_is_byte_identical_to_no_dedup() {
    // The global candidate-dedup registry must be a pure performance
    // layer, exactly like the oracle cache: running the study with dedup
    // on and off must produce byte-identical results, while the dedup-on
    // run actually absorbs duplicate candidates.
    let problems = specrepair_benchmarks::full_study(0.003);
    let config = StudyConfig {
        scale: 0.003,
        seed: 17,
        ..StudyConfig::default()
    };
    assert!(config.dedup, "dedup must default on");
    let control = StudyConfig {
        dedup: false,
        ..config
    };
    let (with_dedup, stats_on) = runner::run_study_cached(&problems, &config, true);
    let (without, stats_off) = runner::run_study_cached(&problems, &control, true);
    assert_eq!(
        serde_json::to_string(&with_dedup).unwrap(),
        serde_json::to_string(&without).unwrap(),
        "candidate dedup changed study results"
    );
    assert!(
        stats_on.dedup.hits > 0,
        "dedup-on run never absorbed a duplicate candidate"
    );
    assert!(stats_on.dedup.dedup_rate() > 0.0);
    assert_eq!(
        stats_off.dedup.hits + stats_off.dedup.misses,
        0,
        "disabled dedup must never count validations"
    );
    // Deduped validations skip the oracle entirely, so the dedup-on run
    // issues strictly fewer oracle queries.
    assert!(
        stats_on.cache.hits + stats_on.cache.misses < stats_off.cache.hits + stats_off.cache.misses,
        "dedup should shed oracle queries ({} vs {})",
        stats_on.cache.hits + stats_on.cache.misses,
        stats_off.cache.hits + stats_off.cache.misses
    );
}

#[test]
fn records_serialize_to_json() {
    let (_, results) = runner::run_full_study(&StudyConfig {
        scale: 0.002,
        seed: 3,
        ..StudyConfig::default()
    });
    let json = serde_json::to_string(&results).unwrap();
    let back: runner::StudyResults = serde_json::from_str(&json).unwrap();
    assert_eq!(back.records.len(), results.records.len());
}
