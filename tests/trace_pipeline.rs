//! Integration: tracing a smoke-scale study produces parseable exporter
//! artifacts whose per-phase attribution reconciles with the cells'
//! wall-clock, and whose root span ids are the deterministic function of
//! the cell seed that `--resume` comparisons rely on.
//!
//! This binary holds a single test: the span collector is process-global,
//! so a second concurrently-running test would interleave spans.

use std::collections::HashSet;

use serde::Value;
use specrepair_study::{runner, StudyConfig, TechniqueId};
use specrepair_trace as trace;

#[test]
fn traced_study_exports_parse_and_reconcile() {
    trace::set_enabled(true);
    let config = StudyConfig {
        scale: 0.003,
        seed: 7,
        ..StudyConfig::default()
    };
    let (problems, results) = runner::run_full_study(&config);
    trace::set_enabled(false);
    let spans = trace::take_spans();
    assert_eq!(results.records.len(), problems.len() * 12);
    assert!(!spans.is_empty(), "a traced study must produce spans");

    // Root span ids are pure functions of the cell seed: every
    // (problem, technique) cell's root is exactly where the id formula
    // says it is, so traces from reruns and resumes line up.
    let ids: HashSet<u64> = spans.iter().map(|s| s.id).collect();
    for problem in &problems {
        for id in TechniqueId::all() {
            let root = trace::root_span_id(config.cell_seed_for(&problem.id, id.label()));
            assert!(
                ids.contains(&root),
                "missing deterministic root span for {} / {}",
                problem.id,
                id.label()
            );
        }
    }

    // The span taxonomy reaches every layer: solver, oracle, technique.
    let names: HashSet<&str> = spans.iter().map(|s| s.name).collect();
    for expected in ["cell", "sat.solve", "technique.oracle_check"] {
        assert!(
            names.contains(expected),
            "no `{expected}` span in {names:?}"
        );
    }

    // Chrome trace JSON parses, and carries one "X" event per span.
    let chrome = trace::chrome_trace_json(&spans);
    let doc: Value = serde_json::from_str(&chrome).expect("chrome trace must be valid JSON");
    let Value::Map(doc) = doc else {
        panic!("chrome trace is not an object")
    };
    let Some((_, Value::Seq(events))) = doc.iter().find(|(k, _)| k == "traceEvents") else {
        panic!("chrome trace has no traceEvents array")
    };
    let complete_events = events
        .iter()
        .filter(|e| match e {
            Value::Map(fields) => fields
                .iter()
                .any(|(k, v)| k == "ph" && matches!(v, Value::Str(s) if s == "X")),
            _ => false,
        })
        .count();
    assert_eq!(complete_events, spans.len());

    // Folded stacks: every line is `frame(;frame)* <micros>`.
    let folded = trace::folded_stacks(&spans);
    assert!(!folded.is_empty());
    for line in folded.lines() {
        let (stack, micros) = line.rsplit_once(' ').expect("folded line has a value");
        assert!(!stack.is_empty());
        micros.parse::<u64>().expect("folded value is integral µs");
    }
    assert!(
        folded.contains("cell:"),
        "roots are labelled with techniques"
    );

    // Phase breakdown: one aggregate row per technique, percentages sum
    // to ~100, and attributed time reconciles with the cells' wall-clock
    // within 5% (single-threaded cells are exactly partitioned; the
    // tolerance leaves room for clamping on degenerate timings).
    let breakdown = trace::phase_breakdown(&spans);
    assert_eq!(breakdown.techniques.len(), 12);
    assert_eq!(breakdown.cells.len(), problems.len() * 12);
    for row in &breakdown.techniques {
        assert!(row.wall_ms > 0.0, "{}: zero wall-clock", row.technique);
        let pct_sum: f64 = row.phase_pct.iter().sum();
        assert!(
            (pct_sum - 100.0).abs() < 0.5,
            "{}: phase percentages sum to {pct_sum}",
            row.technique
        );
        let drift = (row.attributed_ms - row.wall_ms).abs() / row.wall_ms;
        assert!(
            drift < 0.05,
            "{}: attributed {} ms vs wall {} ms ({}% drift)",
            row.technique,
            row.attributed_ms,
            row.wall_ms,
            drift * 100.0
        );
    }

    // Both breakdown renderers emit non-trivial artifacts.
    let txt = trace::render_breakdown_txt(&breakdown);
    assert!(txt.contains("technique"));
    let json = trace::render_breakdown_json(&breakdown);
    serde_json::from_str::<Value>(&json).expect("breakdown JSON must parse");
}
