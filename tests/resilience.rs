//! Integration: deterministic fault injection, the resilient LM transport
//! and crash-safe study resume.
//!
//! The contract under test is the repo's chaos-engineering invariant: with
//! every injected fault transient (retryable) and the retry budget sized to
//! the worst fault burst, a chaotic study run is *byte-identical* to a
//! fault-free one — the resilience layer is a pure availability layer, not
//! a source of nondeterminism. Likewise a run killed mid-way and resumed
//! from its journal must regenerate the same artifacts to the byte.

use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::sync::OnceLock;

use proptest::prelude::*;
use specrepair_benchmarks::RepairProblem;
use specrepair_core::OutcomeReason;
use specrepair_faults::FaultPlan;
use specrepair_study::{journal, runner, table1, table2, StudyConfig};

/// The shared smoke corpus plus its fault-free reference results, computed
/// once — proptest cases re-run only the chaotic side.
fn reference() -> &'static (Vec<RepairProblem>, StudyConfig, String) {
    static REF: OnceLock<(Vec<RepairProblem>, StudyConfig, String)> = OnceLock::new();
    REF.get_or_init(|| {
        let config = StudyConfig {
            scale: 0.002,
            seed: 9,
            ..StudyConfig::default()
        };
        let problems = specrepair_benchmarks::full_study(config.scale);
        let (results, _) = runner::run_study_cached(&problems, &config, true);
        let json = serde_json::to_string(&results).unwrap();
        (problems, config, json)
    })
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("specrepair-resilience-tests");
    fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}.jsonl", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A fault plan is a pure function of its seed: same seed, same
    /// schedule, and the advertised worst burst really bounds every run of
    /// consecutive faults in the window.
    #[test]
    fn fault_plans_are_deterministic_and_burst_bounded(
        seed in any::<u64>(),
        rate_pct in 5u32..95,
    ) {
        let rate = rate_pct as f64 / 100.0;
        let a = FaultPlan::new(seed, rate);
        let b = FaultPlan::new(seed, rate);
        let schedule: Vec<_> = (0..512).map(|i| a.fault_at(i)).collect();
        prop_assert_eq!(&schedule, &(0..512).map(|i| b.fault_at(i)).collect::<Vec<_>>());
        let bound = a.max_consecutive_faults(512);
        let mut run = 0usize;
        for kind in &schedule {
            run = if kind.is_some() { run + 1 } else { 0 };
            prop_assert!(run <= bound, "burst {run} exceeds advertised bound {bound}");
        }
    }

    /// The tentpole property: a study run under an arbitrary transient
    /// fault schedule produces byte-identical results to the fault-free
    /// run — retries absorb every injected fault without perturbing the
    /// techniques' RNG streams.
    #[test]
    fn chaotic_study_is_byte_identical_to_fault_free(
        fault_seed in any::<u64>(),
        rate_pct in 5u32..40,
    ) {
        let rate = rate_pct as f64 / 100.0;
        let (problems, config, clean) = reference();
        let chaotic_config = config.with_faults(rate, fault_seed);
        let (results, _) = runner::run_study_cached(problems, &chaotic_config, true);
        prop_assert_eq!(clean, &serde_json::to_string(&results).unwrap());
    }
}

/// The paper-level acceptance check: at a ≥10% transient fault rate the
/// study subset completes with zero crashed cells and the same REP/TM/SM
/// tables as the fault-free run.
#[test]
fn ten_percent_faults_leave_tables_unchanged_and_nothing_crashed() {
    let (problems, config, _) = reference();
    let (clean, _) = runner::run_study_cached(problems, config, true);
    let (chaotic, _) = runner::run_study_cached(problems, &config.with_faults(0.10, 0xD1CE), true);

    assert!(
        chaotic
            .records
            .iter()
            .all(|r| r.reason != OutcomeReason::Crashed),
        "fault injection must be absorbed, never crash a cell"
    );
    assert_eq!(
        table1::render(&table1::build(&clean)),
        table1::render(&table1::build(&chaotic)),
        "REP table changed under 10% transient faults"
    );
    assert_eq!(
        table2::render(&table2::build(&clean)),
        table2::render(&table2::build(&chaotic)),
        "hybrid table changed under 10% transient faults"
    );
}

/// Outcome reasons distinguish "the model had nothing more to say" from
/// transport failure and repair success (the conflation this PR removed).
#[test]
fn outcome_reasons_are_consistent_with_success() {
    let (_, _, clean) = reference();
    let results: runner::StudyResults = serde_json::from_str(clean).unwrap();
    assert!(!results.records.is_empty());
    for r in &results.records {
        assert_eq!(
            r.reason == OutcomeReason::Repaired,
            r.internal_success,
            "record {}/{} reports reason {:?} with internal_success={}",
            r.problem,
            r.technique,
            r.reason,
            r.internal_success
        );
        assert_ne!(r.reason, OutcomeReason::Crashed, "clean run crashed a cell");
    }
}

/// Kill -9 simulation: truncate a journal mid-record, resume, and require
/// byte-identical results and artifacts plus a journal that now covers
/// every cell.
#[test]
fn killed_run_resumes_to_byte_identical_artifacts() {
    let config = StudyConfig {
        scale: 0.003,
        seed: 17,
        ..StudyConfig::default()
    };
    let problems = specrepair_benchmarks::full_study(config.scale);

    // Uninterrupted reference run, journaled.
    let full_path = tmp("full");
    let j = journal::StudyJournal::create(&full_path, &config, problems.len()).unwrap();
    let (reference, _) =
        runner::run_study_journaled(&problems, &config, true, Some(&j), &HashMap::new());
    drop(j);

    // Simulate the kill: keep the header and the first half of the journal,
    // then a torn final line (a record cut mid-write, no newline).
    let text = fs::read_to_string(&full_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let keep = 1 + (lines.len() - 1) / 2;
    assert!(keep > 1, "need at least one completed cell to resume from");
    let killed_path = tmp("killed");
    {
        let mut f = fs::File::create(&killed_path).unwrap();
        for line in &lines[..keep] {
            writeln!(f, "{line}").unwrap();
        }
        f.write_all(b"{\"problem\":\"torn-mid-wri").unwrap();
    }

    // Resume exactly as the binary does: load, verify, skip done cells.
    let loaded = journal::load(&killed_path).unwrap();
    let header = loaded.header.as_ref().expect("journal header survives");
    assert!(header.config.same_run(&config));
    assert_eq!(loaded.malformed, 1, "the torn tail is counted, not fatal");
    let done = loaded.done_cells();
    assert!(!done.is_empty());
    assert!(done.len() < problems.len() * 12, "the kill left work to do");

    let j = journal::StudyJournal::append_to(&killed_path).unwrap();
    let (resumed, _) = runner::run_study_journaled(&problems, &config, true, Some(&j), &done);
    drop(j);

    assert_eq!(
        serde_json::to_string(&reference).unwrap(),
        serde_json::to_string(&resumed).unwrap(),
        "resumed results differ from the uninterrupted run"
    );
    assert_eq!(
        table1::render(&table1::build(&reference)),
        table1::render(&table1::build(&resumed))
    );

    // After the resume the journal holds every cell.
    let final_cells = journal::load(&killed_path).unwrap().done_cells();
    assert_eq!(final_cells.len(), problems.len() * 12);

    fs::remove_file(&full_path).ok();
    fs::remove_file(&killed_path).ok();
}
