//! Cross-crate integration: every technique repairs (or gracefully fails
//! on) real benchmark problems, end to end through parser, analyzer,
//! mutation, repair and metrics.

use mualloy_analyzer::Analyzer;
use specrepair_benchmarks::arepair;
use specrepair_core::{
    preserves_oracle_surface, CancelToken, OracleHandle, RepairBudget, RepairContext,
    RepairTechnique, UnionHybrid,
};
use specrepair_llm::{FeedbackSetting, MultiRound, PromptSetting, SingleRound};
use specrepair_metrics::{candidate_metrics, rep};
use specrepair_study::runner::hints_for;
use specrepair_traditional::{default_suite, Atr};

fn problems() -> Vec<specrepair_benchmarks::RepairProblem> {
    arepair(0.3)
}

fn budget() -> RepairBudget {
    RepairBudget {
        max_candidates: 60,
        max_rounds: 4,
    }
}

fn ctx_for(p: &specrepair_benchmarks::RepairProblem) -> RepairContext {
    RepairContext::new(p.faulty.clone(), budget())
        .with_source(&p.faulty_source)
        .with_oracle(OracleHandle::fresh())
        .with_cancel(CancelToken::none())
}

#[test]
fn traditional_tools_produce_verifiable_repairs() {
    let problems = problems();
    assert!(!problems.is_empty());
    let mut any_repaired = false;
    for tool in default_suite() {
        for p in &problems {
            let out = tool.repair(&ctx_for(p));
            if out.success && tool.name() != "ARepair" {
                // Oracle-validated success must hold up under re-analysis.
                let c = out
                    .candidate
                    .as_ref()
                    .expect("successful outcome has candidate");
                assert!(
                    Analyzer::new(c.clone()).satisfies_oracle().unwrap(),
                    "{} claimed success on {} but candidate fails oracle",
                    tool.name(),
                    p.id
                );
                any_repaired = true;
            }
        }
    }
    assert!(any_repaired, "no traditional tool repaired anything");
}

#[test]
fn successful_oracle_repairs_imply_rep_one() {
    // Because every benchmark command carries an expect annotation that the
    // ground truth satisfies, oracle success must coincide with REP = 1.
    let problems = problems();
    let tool = Atr::default();
    for p in &problems {
        let out = tool.repair(&ctx_for(p));
        if out.success {
            assert_eq!(
                rep(&p.truth, out.candidate_source.as_deref()),
                1,
                "oracle-passing ATR candidate for {} must be equisatisfiable",
                p.id
            );
        }
    }
}

#[test]
fn llm_pipelines_respect_the_oracle_surface() {
    let problems = problems();
    for p in problems.iter().take(6) {
        let hints = hints_for(p);
        for setting in [PromptSetting::Loc, PromptSetting::None] {
            let out = SingleRound::new(setting, 3)
                .with_hints(hints.clone())
                .repair(&ctx_for(p));
            if let (true, Some(c)) = (out.success, &out.candidate) {
                assert!(preserves_oracle_surface(&p.faulty, c));
            }
        }
        let out = MultiRound::new(FeedbackSetting::Generic, 3).repair(&ctx_for(p));
        if let (true, Some(c)) = (out.success, &out.candidate) {
            assert!(preserves_oracle_surface(&p.faulty, c));
            assert!(Analyzer::new(c.clone()).satisfies_oracle().unwrap());
        }
    }
}

#[test]
fn hybrid_union_dominates_both_constituents() {
    let problems = problems();
    let mut trad_only = 0;
    let mut llm_only = 0;
    let mut hybrid = 0;
    for p in &problems {
        let ctx = ctx_for(p);
        let t = Atr::default().repair(&ctx);
        let l = MultiRound::new(FeedbackSetting::None, 5).repair(&ctx);
        let h = UnionHybrid::new(Atr::default(), MultiRound::new(FeedbackSetting::None, 5))
            .repair(&ctx);
        trad_only += usize::from(rep(&p.truth, t.candidate_source.as_deref()) == 1);
        llm_only += usize::from(rep(&p.truth, l.candidate_source.as_deref()) == 1);
        hybrid += usize::from(rep(&p.truth, h.candidate_source.as_deref()) == 1);
    }
    assert!(
        hybrid >= trad_only.max(llm_only),
        "hybrid {hybrid} must dominate ATR {trad_only} and MR {llm_only}"
    );
}

#[test]
fn metrics_are_consistent_for_all_techniques() {
    let problems = problems();
    let p = &problems[0];
    let hints = hints_for(p);
    let mut techniques: Vec<Box<dyn RepairTechnique>> = default_suite();
    techniques.extend(specrepair_llm::default_suite(hints, 1));
    for t in techniques {
        let out = t.repair(&ctx_for(p));
        let m = candidate_metrics(&p.truth, &p.truth_source, out.candidate_source.as_deref());
        if let Some(tm) = m.tm {
            assert!((0.0..=1.0).contains(&tm), "{}: TM {}", t.name(), tm);
        }
        if let Some(sm) = m.sm {
            assert!((0.0..=1.0).contains(&sm), "{}: SM {}", t.name(), sm);
        }
        if m.rep == 1 {
            assert!(out.candidate_source.is_some());
        }
    }
}
