//! Integration: the generated corpora match the paper's structure and
//! every entry upholds the benchmark invariants.

use mualloy_analyzer::Analyzer;
use specrepair_benchmarks::{a4f, alloy4fun, arepair, arepair_bench, full_study};

#[test]
fn paper_counts_at_full_scale_sum_correctly() {
    // Structural constants (cheap): the corpora definitions match Table I.
    let a4f_total: usize = a4f::DOMAIN_COUNTS.iter().map(|(_, n)| n).sum();
    assert_eq!(a4f_total, 1936);
    let arep_total: usize = arepair_bench::PROBLEM_COUNTS.iter().map(|(_, n)| n).sum();
    assert_eq!(arep_total, 38);
    assert_eq!(a4f_total + arep_total, 1974);
}

#[test]
fn arepair_corpus_is_exact_and_complete() {
    let problems = arepair(1.0);
    assert_eq!(problems.len(), 38);
    for (name, count) in arepair_bench::PROBLEM_COUNTS {
        let got = problems.iter().filter(|p| p.domain == name).count();
        assert_eq!(got, count, "problem {name}");
    }
}

#[test]
fn scaled_a4f_preserves_domain_proportions() {
    let problems = alloy4fun(0.01);
    for (domain, full_count) in a4f::DOMAIN_COUNTS {
        let got = problems.iter().filter(|p| p.domain == domain).count();
        let expected = ((full_count as f64) * 0.01).round().max(1.0) as usize;
        assert_eq!(got, expected, "domain {domain}");
    }
}

#[test]
fn every_entry_upholds_the_benchmark_invariants() {
    for p in full_study(0.004) {
        // Parses and checks (both sides).
        assert!(mualloy_syntax::check_spec(&p.truth).is_empty(), "{}", p.id);
        assert!(mualloy_syntax::check_spec(&p.faulty).is_empty(), "{}", p.id);
        // The truth satisfies its oracle; the fault violates it.
        assert!(
            Analyzer::new(p.truth.clone()).satisfies_oracle().unwrap(),
            "{} truth",
            p.id
        );
        assert!(
            !Analyzer::new(p.faulty.clone()).satisfies_oracle().unwrap(),
            "{} fault",
            p.id
        );
        // Fault metadata is present and spans point into the truth text.
        assert!(!p.edits.is_empty(), "{}", p.id);
        assert_eq!(p.edits.len(), p.fault_spans.len(), "{}", p.id);
        // Sources round-trip.
        assert!(mualloy_syntax::parse_spec(&p.faulty_source).is_ok());
        assert!(mualloy_syntax::parse_spec(&p.truth_source).is_ok());
        // Oracle surface preserved: injection never touches asserts/commands.
        assert!(
            specrepair_core::preserves_oracle_surface(&p.truth, &p.faulty),
            "{} mutated the oracle surface",
            p.id
        );
    }
}

#[test]
fn generation_is_reproducible() {
    let a = full_study(0.003);
    let b = full_study(0.003);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.faulty_source, y.faulty_source);
        assert_eq!(x.edits, y.edits);
    }
}

#[test]
fn fault_difficulty_mix_is_present() {
    // The injector's difficulty classes must all appear in a decent sample:
    // single-edit, double-edit and constraint-deletion faults.
    let problems = alloy4fun(0.02);
    let singles = problems
        .iter()
        .filter(|p| p.edits.len() == 1 && p.edits[0] != "delete constraint")
        .count();
    let doubles = problems.iter().filter(|p| p.edits.len() == 2).count();
    let deletions = problems
        .iter()
        .filter(|p| p.edits.iter().any(|e| e == "delete constraint"))
        .count();
    assert!(singles > 0, "no single-edit faults");
    assert!(doubles > 0, "no double-edit faults");
    assert!(deletions > 0, "no deletion faults");
}
