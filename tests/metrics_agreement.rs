//! Integration: the three study metrics agree with independent semantic
//! ground truth across crates (analyzer ⟷ metrics ⟷ benchmarks).

use mualloy_analyzer::{compare, Analyzer};
use specrepair_benchmarks::full_study;
use specrepair_metrics::{candidate_metrics, rep, sentence_bleu, syntax_match};

#[test]
fn rep_equals_oracle_verdict_on_benchmark_entries() {
    // Every benchmark command carries an `expect` annotation satisfied by
    // the ground truth, so REP(candidate) == candidate-satisfies-oracle.
    for p in full_study(0.003) {
        // The faulty spec fails its oracle, so REP must be 0 ...
        assert_eq!(rep(&p.truth, Some(&p.faulty_source)), 0, "{}", p.id);
        // ... and the ground truth itself scores 1.
        assert_eq!(rep(&p.truth, Some(&p.truth_source)), 1, "{}", p.id);
    }
}

#[test]
fn equisat_report_details_mismatches() {
    let problems = full_study(0.003);
    let p = &problems[0];
    let report = compare(&p.truth, &p.faulty).unwrap();
    assert_eq!(report.rep(), 0);
    assert!(report.mismatches().count() > 0);
    // And the command list matches the ground truth's commands.
    assert_eq!(report.comparisons.len(), p.truth.commands.len());
}

#[test]
fn similarity_of_faulty_vs_truth_is_high_but_imperfect() {
    // Injected faults are small edits: TM/SM should be high (the texts are
    // near-identical) yet below 1 for operator-level faults.
    let mut below_one = 0;
    let mut total = 0;
    for p in full_study(0.003) {
        let m = candidate_metrics(&p.truth, &p.truth_source, Some(&p.faulty_source));
        assert_eq!(m.rep, 0);
        let tm = m.tm.unwrap();
        let sm = m.sm.unwrap();
        assert!(tm > 0.3, "{}: TM {tm}", p.id);
        assert!(sm > 0.3, "{}: SM {sm}", p.id);
        total += 1;
        if sm < 1.0 {
            below_one += 1;
        }
    }
    assert!(below_one * 2 > total, "most faults should change the tree");
}

#[test]
fn tm_and_sm_disagree_in_the_expected_direction_on_reformatting() {
    // Canonical re-rendering changes only whitespace and paragraph order:
    // SM (parse trees) stays exactly 1.0, while TM (an order-sensitive
    // n-gram measure) may dip slightly when paragraphs are regrouped but
    // must stay high — this is precisely the TM-vs-SM gap Figure 2 reports.
    let mut tms = Vec::new();
    for p in full_study(0.002) {
        let reformatted = mualloy_syntax::print_spec(&p.truth);
        let sm = syntax_match(&p.truth_source, &reformatted);
        assert!((sm - 1.0).abs() < 1e-9, "{}: SM {sm}", p.id);
        let tm = sentence_bleu(&p.truth_source, &reformatted);
        assert!(tm > 0.5, "{}: TM {tm}", p.id);
        assert!(
            tm <= sm + 1e-9,
            "{}: TM {tm} should not exceed SM {sm}",
            p.id
        );
        tms.push(tm);
    }
    let mean_tm = tms.iter().sum::<f64>() / tms.len() as f64;
    assert!(mean_tm > 0.85, "mean TM under re-rendering was {mean_tm}");
}

#[test]
fn analyzer_and_evaluator_agree_on_witnesses() {
    // For each failing check of each faulty spec, the counterexample the
    // analyzer returns must indeed violate the assertion per the ground
    // evaluator (exercised through Analyzer::evaluate).
    for p in full_study(0.002) {
        let analyzer = Analyzer::new(p.faulty.clone());
        for outcome in analyzer.failing_commands().unwrap() {
            if !outcome.command.is_check() || !outcome.sat {
                continue;
            }
            let name = outcome.command.target();
            let cex = outcome.instance.as_ref().expect("sat check has witness");
            let body =
                mualloy_syntax::ast::Formula::conjoin(p.faulty.assert(name).unwrap().body.clone());
            let holds = analyzer.evaluate(cex, &body).unwrap();
            assert!(
                !holds,
                "{}: counterexample satisfies assertion {name}",
                p.id
            );
        }
    }
}
