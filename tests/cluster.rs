//! Integration tests for the distributed oracle cluster: real shards and a
//! real router on ephemeral TCP ports, driven with the same client calls
//! `specrepaird loadgen` uses.
//!
//! Covers the headline invariant (a routed `/repair` answer is
//! byte-identical to a single-node daemon's, at any shard count), the
//! verdict-exchange plane (PUT/GET through the router land on the owning
//! shard and warm *other* clients, including a non-owner shard reading
//! through its remote tier), and the failure mode (killing a shard trips
//! the router into degraded local solves that still produce the canonical
//! answer).

use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use mualloy_analyzer::Oracle;
use mualloy_syntax::Fingerprint;
use specrepair_cluster::ShardRing;
use specrepair_server::server::{roundtrip, spawn, ShardConfig};
use specrepair_server::service::push_json_string;
use specrepair_server::{router, RouterConfig, ServerConfig, ServerHandle};

const FAULTY: &str = "sig N { next: lone N } \
    fact { some n: N | n in n.next } \
    assert NoSelf { all n: N | n not in n.next } \
    check NoSelf for 3 expect 0";

/// A family of distinct-but-equivalent faulty specs: renaming the sig
/// changes the canonical fingerprint, which spreads the family across the
/// ring without changing what a repair has to do.
fn spec_variant(name: &str) -> String {
    format!(
        "sig {name} {{ next: lone {name} }} \
         fact {{ some n: {name} | n in n.next }} \
         assert NoSelf {{ all n: {name} | n not in n.next }} \
         check NoSelf for 3 expect 0"
    )
}

fn fingerprint(spec: &str) -> Fingerprint {
    Oracle::fingerprint(&mualloy_syntax::parse_spec(spec).expect("test spec parses"))
}

fn repair_body(spec: &str, technique: &str) -> String {
    let mut escaped = String::new();
    push_json_string(spec, &mut escaped);
    format!("{{\"spec\":{escaped},\"technique\":\"{technique}\"}}")
}

fn call(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connecting");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    roundtrip(&mut stream, method, path, body).expect("a well-formed response")
}

/// Drops the nondeterministic wall-clock field; everything else in a
/// repair response is part of the byte-identity contract.
fn strip_duration(body: &str) -> String {
    let serde::Value::Map(map) = serde_json::from_str(body).expect("response is JSON") else {
        panic!("response is not an object: {body}");
    };
    let kept: Vec<_> = map
        .into_iter()
        .filter(|(k, _)| k != "duration_ms")
        .collect();
    serde_json::to_string(&serde::Value::Map(kept)).unwrap()
}

fn metric(addr: &str, pointer: &[&str]) -> f64 {
    let (status, body) = call(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let value: serde::Value = serde_json::from_str(&body).expect("metrics is JSON");
    let mut cursor = &value;
    for key in pointer {
        let serde::Value::Map(map) = cursor else {
            panic!("{pointer:?}: not a map at {key} in {body}");
        };
        cursor = &map
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("{pointer:?}: no {key} in {body}"))
            .1;
    }
    match cursor {
        serde::Value::U64(n) => *n as f64,
        serde::Value::I64(n) => *n as f64,
        serde::Value::F64(n) => *n,
        serde::Value::Bool(b) => u8::from(*b) as f64,
        other => panic!("{pointer:?}: not a number: {other:?}"),
    }
}

/// A booted cluster: `n` shards plus one router, all on ephemeral ports.
struct Cluster {
    peers: Vec<String>,
    shards: Vec<Option<ServerHandle>>,
    router: Option<router::RouterHandle>,
    router_addr: String,
}

impl Cluster {
    /// Reserves `n` ephemeral ports (the peer list must be complete before
    /// the first shard boots), then releases each reservation just before
    /// the shard binds it.
    fn boot(n: usize) -> Cluster {
        let reservations: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserving a port"))
            .collect();
        let peers: Vec<String> = reservations
            .iter()
            .map(|l| l.local_addr().unwrap().to_string())
            .collect();
        let mut shards = Vec::new();
        for (shard_id, reservation) in reservations.into_iter().enumerate() {
            drop(reservation);
            let handle = spawn(ServerConfig {
                addr: peers[shard_id].clone(),
                shard: Some(ShardConfig {
                    shard_id,
                    peers: peers.clone(),
                }),
                ..ServerConfig::default()
            })
            .expect("shard binds its reserved port");
            shards.push(Some(handle));
        }
        let router = router::spawn_router(RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: peers.clone(),
            ..RouterConfig::default()
        })
        .expect("router binds an ephemeral port");
        let router_addr = router.addr().to_string();
        Cluster {
            peers,
            shards,
            router: Some(router),
            router_addr,
        }
    }

    fn ring(&self) -> ShardRing {
        ShardRing::from_addrs(&self.peers)
    }

    /// Shuts one shard down mid-test — the failure the router must absorb.
    fn kill_shard(&mut self, index: usize) {
        let handle = self.shards[index].take().expect("shard still running");
        handle.shutdown();
        handle.join();
    }

    fn drain(mut self) {
        if let Some(router) = self.router.take() {
            router.shutdown();
            router.join();
        }
        for shard in self.shards.iter_mut().filter_map(Option::take) {
            shard.shutdown();
            shard.join();
        }
    }
}

fn boot_single_node() -> (ServerHandle, String) {
    let handle = spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    })
    .expect("binding an ephemeral port");
    let addr = handle.addr().to_string();
    (handle, addr)
}

#[test]
fn routed_repairs_are_byte_identical_to_single_node_at_any_shard_count() {
    let cases: Vec<(String, &str)> = vec![
        (FAULTY.to_string(), "ATR"),
        (spec_variant("M"), "BeAFix"),
        (spec_variant("Link"), "ATR"),
        ("definitely not alloy".to_string(), "ATR"),
    ];

    // The ground truth: one plain daemon, no cluster anywhere.
    let (single, single_addr) = boot_single_node();
    let baseline: Vec<(u16, String)> = cases
        .iter()
        .map(|(spec, technique)| {
            let (status, body) = call(
                &single_addr,
                "POST",
                "/repair",
                &repair_body(spec, technique),
            );
            let body = if status == 200 {
                strip_duration(&body)
            } else {
                body
            };
            (status, body)
        })
        .collect();
    single.shutdown();
    single.join();

    // The same requests through a router must relay the same bytes,
    // whether one shard owns everything or three split the keyspace.
    for shard_count in [1, 3] {
        let cluster = Cluster::boot(shard_count);
        for ((spec, technique), (want_status, want_body)) in cases.iter().zip(&baseline) {
            let (status, body) = call(
                &cluster.router_addr,
                "POST",
                "/repair",
                &repair_body(spec, technique),
            );
            assert_eq!(status, *want_status, "{shard_count} shard(s): {body}");
            let body = if status == 200 {
                strip_duration(&body)
            } else {
                body
            };
            assert_eq!(
                body, *want_body,
                "{shard_count} shard(s): routed answer drifted from single-node"
            );
        }
        // Nothing above was a degraded answer: every shard was healthy.
        assert_eq!(
            metric(&cluster.router_addr, &["cluster", "degraded_local_solves"]),
            0.0
        );
        cluster.drain();
    }
}

#[test]
fn verdicts_warm_the_owning_shard_and_cross_client_reads() {
    let cluster = Cluster::boot(3);
    let ring = cluster.ring();

    // An injected verdict routes to the owner and is readable through the
    // router *and* directly on the owning shard — two different clients.
    let injected = fingerprint(&spec_variant("Seeded"));
    let (status, body) = call(
        &cluster.router_addr,
        "PUT",
        &format!("/verdict/{injected}"),
        "1",
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"stored\":true"), "{body}");
    let (status, body) = call(
        &cluster.router_addr,
        "GET",
        &format!("/verdict/{injected}"),
        "",
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"verdict\":true"), "{body}");
    let owner_addr = &ring.owner(injected).addr;
    let (status, body) = call(owner_addr, "GET", &format!("/verdict/{injected}"), "");
    assert_eq!(status, 200, "owner shard does not hold the verdict: {body}");

    // A repair solved through the router memoizes its verdicts on the
    // owning shard; a *non-owner* shard asked the same question afterwards
    // answers off the cluster's remote tier instead of its own solver.
    let spec = spec_variant("Shared");
    let key = fingerprint(&spec);
    let owner = ring.owner_index(key);
    let (status, body) = call(
        &cluster.router_addr,
        "POST",
        "/repair",
        &repair_body(&spec, "ATR"),
    );
    assert_eq!(status, 200, "{body}");
    let non_owner = (owner + 1) % cluster.peers.len();
    let non_owner_addr = cluster.peers[non_owner].clone();
    let before = metric(&non_owner_addr, &["cluster", "remote_hits"]);
    let (status, body) = call(
        &non_owner_addr,
        "POST",
        "/repair",
        &repair_body(&spec, "ATR"),
    );
    assert_eq!(status, 200, "{body}");
    let after = metric(&non_owner_addr, &["cluster", "remote_hits"]);
    assert!(
        after > before,
        "non-owner shard never read the remote tier: {before} -> {after}"
    );

    cluster.drain();
}

#[test]
fn killing_the_owning_shard_degrades_to_a_correct_local_solve() {
    let spec = spec_variant("Victim");
    let body = repair_body(&spec, "ATR");

    // What the answer must look like, cluster or not.
    let (single, single_addr) = boot_single_node();
    let (status, want) = call(&single_addr, "POST", "/repair", &body);
    assert_eq!(status, 200, "{want}");
    let want = strip_duration(&want);
    single.shutdown();
    single.join();

    let mut cluster = Cluster::boot(3);
    let key = fingerprint(&spec);
    let owner = cluster.ring().owner_index(key);
    cluster.kill_shard(owner);

    // The router retries, gives up on the dead owner, and solves locally —
    // same deterministic pipeline, same bytes.
    let (status, got) = call(&cluster.router_addr, "POST", "/repair", &body);
    assert_eq!(status, 200, "{got}");
    assert_eq!(strip_duration(&got), want, "degraded answer drifted");
    assert!(
        metric(&cluster.router_addr, &["cluster", "degraded_local_solves"]) >= 1.0,
        "the degraded solve was not counted"
    );

    // The verdict plane degrades too: a PUT for a key the dead shard owns
    // lands in the router's own memo and reads back as degraded.
    let (status, reply) = call(&cluster.router_addr, "PUT", &format!("/verdict/{key}"), "0");
    assert_eq!(status, 200, "{reply}");
    assert!(reply.contains("\"degraded\":true"), "{reply}");
    let (status, reply) = call(&cluster.router_addr, "GET", &format!("/verdict/{key}"), "");
    assert_eq!(status, 200, "{reply}");
    assert!(reply.contains("\"source\":\"degraded\""), "{reply}");

    // And the router is still healthy for the rest of the keyspace.
    let (status, _) = call(&cluster.router_addr, "GET", "/healthz", "");
    assert_eq!(status, 200);

    cluster.drain();
}
