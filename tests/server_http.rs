//! Integration tests for `specrepaird`: a real daemon on an ephemeral
//! port, driven over real TCP sockets.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use specrepair_server::server::{read_response, roundtrip, spawn};
use specrepair_server::service::push_json_string;
use specrepair_server::ServerConfig;

const FAULTY: &str = "sig N { next: lone N } \
    fact { some n: N | n in n.next } \
    assert NoSelf { all n: N | n not in n.next } \
    check NoSelf for 3 expect 0";

fn boot(config: ServerConfig) -> (specrepair_server::ServerHandle, String) {
    let handle = spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..config
    })
    .expect("binding an ephemeral port");
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn call(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connecting to the daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    roundtrip(&mut stream, method, path, body).expect("a well-formed response")
}

fn repair_body(technique: &str, extra: &str) -> String {
    let mut spec = String::new();
    push_json_string(FAULTY, &mut spec);
    format!("{{\"spec\":{spec},\"technique\":\"{technique}\"{extra}}}")
}

fn metric(addr: &str, pointer: &[&str]) -> f64 {
    let (status, body) = call(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let value: serde::Value = serde_json::from_str(&body).expect("metrics is JSON");
    let mut cursor = &value;
    for key in pointer {
        let serde::Value::Map(map) = cursor else {
            panic!("{pointer:?}: not a map at {key} in {body}");
        };
        cursor = &map
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("{pointer:?}: no {key} in {body}"))
            .1;
    }
    match cursor {
        serde::Value::U64(n) => *n as f64,
        serde::Value::I64(n) => *n as f64,
        serde::Value::F64(n) => *n,
        other => panic!("{pointer:?}: not a number: {other:?}"),
    }
}

#[test]
fn health_techniques_and_routing() {
    let (handle, addr) = boot(ServerConfig::default());
    let (status, body) = call(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\""));

    let (status, body) = call(&addr, "GET", "/techniques", "");
    assert_eq!(status, 200);
    for label in [
        "ARepair",
        "ICEBAR",
        "BeAFix",
        "ATR",
        "Multi-Round_Auto",
        "Portfolio_All",
        "Portfolio_Traditional",
    ] {
        assert!(body.contains(label), "{body}");
    }

    let (status, _) = call(&addr, "GET", "/nowhere", "");
    assert_eq!(status, 404);
    let (status, _) = call(&addr, "GET", "/repair", "");
    assert_eq!(status, 405);

    handle.shutdown();
    handle.join();
}

#[test]
fn malformed_bodies_are_400() {
    let (handle, addr) = boot(ServerConfig::default());
    let (status, body) = call(&addr, "POST", "/repair", "this is not json");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("error"));

    let (status, body) = call(&addr, "POST", "/repair", "{\"technique\":\"ATR\"}");
    assert_eq!(status, 400);
    assert!(body.contains("spec"), "{body}");

    // Garbage that is not even HTTP also gets a 400 before the connection
    // is dropped.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(b"complete nonsense\r\n\r\n").unwrap();
    let mut reader = std::io::BufReader::new(stream);
    let (status, _) = read_response(&mut reader).unwrap();
    assert_eq!(status, 400);

    handle.shutdown();
    handle.join();
}

#[test]
fn concurrent_repairs_reconcile_with_metrics_and_cache_warms() {
    let (handle, addr) = boot(ServerConfig {
        workers: 4,
        queue_capacity: 64,
        ..ServerConfig::default()
    });

    let techniques = ["ATR", "BeAFix", "Single-Round_None", "Multi-Round_None"];
    let wave = |expect_success: bool| {
        std::thread::scope(|scope| {
            for technique in techniques {
                let addr = &addr;
                scope.spawn(move || {
                    let (status, body) = call(addr, "POST", "/repair", &repair_body(technique, ""));
                    assert_eq!(status, 200, "{technique}: {body}");
                    assert!(body.contains("\"technique\":"), "{body}");
                    if expect_success {
                        assert!(
                            body.contains(&format!("\"technique\":\"{technique}\"")),
                            "{body}"
                        );
                    }
                });
            }
        });
    };

    wave(true);
    let repairs_after_first = metric(&addr, &["requests", "repair", "200"]);
    assert_eq!(repairs_after_first as usize, techniques.len());
    assert!(metric(&addr, &["latency_ms", "ATR", "count"]) >= 1.0);
    let hit_rate_first = metric(&addr, &["oracle_cache", "hit_rate"]);

    // Identical second wave: every candidate was already memoized, so the
    // cache hit rate must strictly rise.
    wave(true);
    let repairs_after_second = metric(&addr, &["requests", "repair", "200"]);
    assert_eq!(repairs_after_second as usize, 2 * techniques.len());
    let hit_rate_second = metric(&addr, &["oracle_cache", "hit_rate"]);
    assert!(
        hit_rate_second > hit_rate_first,
        "cache did not warm: {hit_rate_first} -> {hit_rate_second}"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn portfolio_repair_over_http_reports_entrants_and_per_entrant_metrics() {
    let (handle, addr) = boot(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let portfolio = "Portfolio_ARepair+Single-Round_Loc";
    let (status, body) = call(&addr, "POST", "/repair", &repair_body(portfolio, ""));
    assert_eq!(status, 200, "{body}");
    assert!(
        body.contains(&format!("\"technique\":\"{portfolio}\"")),
        "{body}"
    );
    assert!(body.contains("\"entrants\""), "{body}");
    assert!(body.contains("\"cancelled_at_ms\""), "{body}");

    // The race itself and every entrant that ran get latency rows.
    assert!(metric(&addr, &["latency_ms", portfolio, "count"]) >= 1.0);
    let (status, metrics_body) = call(&addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        metrics_body.contains(&format!("{portfolio}/ARepair")),
        "no per-entrant latency row:\n{metrics_body}"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn millisecond_deadline_times_out_rather_than_hanging() {
    let (handle, addr) = boot(ServerConfig::default());
    let (status, body) = call(
        &addr,
        "POST",
        "/repair",
        &repair_body("Multi-Round_Auto", ",\"deadline_ms\":1"),
    );
    assert_eq!(status, 504, "{body}");
    assert!(body.contains("\"timed_out\":true"), "{body}");
    assert!(metric(&addr, &["deadline_exceeded_total"]) >= 1.0);

    handle.shutdown();
    handle.join();
}

#[test]
fn full_queue_sheds_with_503_and_retry_after() {
    // One worker, capacity one. An idle connection occupies the worker
    // (it blocks on the keep-alive read until its idle timeout), a second
    // idle connection fills the single queue slot, and every further
    // connection must be shed at admission.
    let (handle, addr) = boot(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    });

    let blocker = TcpStream::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    let parked = TcpStream::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(200));

    let mut shed = 0;
    for _ in 0..3 {
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n")
            .unwrap();
        let mut reader = std::io::BufReader::new(stream);
        let (status, body) = read_response(&mut reader).unwrap();
        if status == 503 {
            assert!(body.contains("retry"), "{body}");
            shed += 1;
        }
    }
    assert!(shed >= 1, "no connection was shed");

    // Release the worker and the queue slot, then confirm the shed counter.
    drop(blocker);
    drop(parked);
    std::thread::sleep(Duration::from_millis(300));
    assert!(metric(&addr, &["shed_total"]) >= 1.0);

    handle.shutdown();
    handle.join();
}

#[test]
fn shutdown_drains_and_joins() {
    let (handle, addr) = boot(ServerConfig::default());
    let (status, _) = call(&addr, "POST", "/repair", &repair_body("ATR", ""));
    assert_eq!(status, 200);

    let (status, body) = call(&addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    assert!(body.contains("draining"));
    handle.join();

    // The listener is gone: new connections are refused (or reset).
    assert!(
        TcpStream::connect(&addr).is_err() || call_may_fail(&addr, "GET", "/healthz").is_none(),
        "daemon still accepting after drain"
    );
}

fn call_may_fail(addr: &str, method: &str, path: &str) -> Option<(u16, String)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
    roundtrip(&mut stream, method, path, "").ok()
}

#[test]
fn shutdown_file_stops_the_daemon() {
    let dir = std::env::temp_dir().join(format!("specrepaird-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("stop");
    let _ = std::fs::remove_file(&file);

    let (handle, addr) = boot(ServerConfig {
        shutdown_file: Some(file.clone()),
        ..ServerConfig::default()
    });
    let (status, _) = call(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200);

    std::fs::write(&file, "stop").unwrap();
    handle.join();
    let _ = std::fs::remove_file(&file);
    let _ = std::fs::remove_dir(&dir);
}
