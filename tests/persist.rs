//! Integration tests for the persistent verdict tier: a real daemon on an
//! ephemeral port, a real cache directory, driven over real TCP sockets.
//!
//! Covers the warm-boot path (verdicts survive a drain and serve the next
//! process), corruption quarantine (a damaged record never takes the daemon
//! down), chaotic-disk degradation (the breaker keeps the daemon serving
//! memory-only, and the drain-time seal heals the log), and the
//! singleflight `collapsed` counter surfacing in `GET /metrics`.

use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use specrepair_server::server::{roundtrip, spawn};
use specrepair_server::service::push_json_string;
use specrepair_server::ServerConfig;

const FAULTY: &str = "sig N { next: lone N } \
    fact { some n: N | n in n.next } \
    assert NoSelf { all n: N | n not in n.next } \
    check NoSelf for 3 expect 0";

fn cache_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("specrepaird-persist-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn boot(config: ServerConfig) -> (specrepair_server::ServerHandle, String) {
    let handle = spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..config
    })
    .expect("binding an ephemeral port");
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn call(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connecting to the daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    roundtrip(&mut stream, method, path, body).expect("a well-formed response")
}

fn repair_body(technique: &str) -> String {
    let mut spec = String::new();
    push_json_string(FAULTY, &mut spec);
    format!("{{\"spec\":{spec},\"technique\":\"{technique}\"}}")
}

fn metric(addr: &str, pointer: &[&str]) -> f64 {
    let (status, body) = call(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let value: serde::Value = serde_json::from_str(&body).expect("metrics is JSON");
    let mut cursor = &value;
    for key in pointer {
        let serde::Value::Map(map) = cursor else {
            panic!("{pointer:?}: not a map at {key} in {body}");
        };
        cursor = &map
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("{pointer:?}: no {key} in {body}"))
            .1;
    }
    match cursor {
        serde::Value::U64(n) => *n as f64,
        serde::Value::I64(n) => *n as f64,
        serde::Value::F64(n) => *n,
        serde::Value::Bool(b) => {
            if *b {
                1.0
            } else {
                0.0
            }
        }
        other => panic!("{pointer:?}: not a number: {other:?}"),
    }
}

fn repair_wave(addr: &str) {
    for technique in ["ATR", "BeAFix"] {
        let (status, body) = call(addr, "POST", "/repair", &repair_body(technique));
        assert_eq!(status, 200, "{technique}: {body}");
    }
}

#[test]
fn warm_boot_preloads_and_serves_persist_hits() {
    let dir = cache_dir("warm");

    // Cold boot: empty tier, every verdict is computed and appended.
    let (handle, addr) = boot(ServerConfig {
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    assert_eq!(metric(&addr, &["persistent", "enabled"]), 1.0);
    assert_eq!(metric(&addr, &["persistent", "preloaded"]), 0.0);
    repair_wave(&addr);
    let appends = metric(&addr, &["persistent", "appends"]);
    assert!(appends >= 1.0, "cold run appended nothing");
    assert_eq!(metric(&addr, &["oracle_cache", "persist_hits"]), 0.0);
    handle.shutdown();
    handle.join();

    // Warm boot: the same verdicts come off disk instead of the solver.
    let (handle, addr) = boot(ServerConfig {
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let preloaded = metric(&addr, &["persistent", "preloaded"]);
    assert!(preloaded >= 1.0, "warm boot recovered nothing");
    let hit_rate_cold = metric(&addr, &["oracle_cache", "hit_rate"]);
    repair_wave(&addr);
    let persist_hits = metric(&addr, &["oracle_cache", "persist_hits"]);
    assert!(
        persist_hits >= 1.0,
        "warm run never hit the persistent tier"
    );
    let hit_rate_warm = metric(&addr, &["oracle_cache", "hit_rate"]);
    assert!(
        hit_rate_warm > hit_rate_cold,
        "persistent tier did not lift the hit rate: {hit_rate_cold} -> {hit_rate_warm}"
    );
    handle.shutdown();
    handle.join();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_record_is_quarantined_not_fatal() {
    let dir = cache_dir("quarantine");

    let (handle, addr) = boot(ServerConfig {
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    repair_wave(&addr);
    handle.shutdown();
    handle.join();

    // Damage the sealed log: one garbage line plus one flipped byte in the
    // first record.
    let log = dir.join("verdicts.log");
    let mut bytes = std::fs::read(&log).unwrap();
    if !bytes.is_empty() {
        bytes[2] ^= 0x40;
    }
    bytes.extend_from_slice(b"this is not a verdict record\n");
    std::fs::write(&log, &bytes).unwrap();

    // The daemon boots anyway, counts the damage, and keeps serving.
    let (handle, addr) = boot(ServerConfig {
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    assert!(
        metric(&addr, &["persistent", "quarantined"]) >= 1.0,
        "damage was not quarantined"
    );
    let (status, _) = call(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    repair_wave(&addr);
    handle.shutdown();
    handle.join();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaotic_disk_degrades_gracefully_and_seal_heals_the_log() {
    let dir = cache_dir("chaos");

    // Every append faults. The daemon must keep answering 200s (memory-only
    // at worst) and the drain-time seal must rebuild the log from memory.
    let (handle, addr) = boot(ServerConfig {
        cache_dir: Some(dir.clone()),
        disk_chaos_rate: 1.0,
        disk_chaos_seed: 0xD15C,
        ..ServerConfig::default()
    });
    repair_wave(&addr);
    let injected = metric(&addr, &["persistent", "injected_write_errors"])
        + metric(&addr, &["persistent", "injected_short_writes"])
        + metric(&addr, &["persistent", "injected_bit_flips"]);
    assert!(injected >= 1.0, "chaos rate 1.0 injected nothing");
    let live = metric(&addr, &["persistent", "live_entries"]);
    assert!(live >= 1.0, "no verdicts held in memory");
    handle.shutdown();
    handle.join();

    // Warm boot with a healthy disk: the sealed log replays every verdict
    // the chaotic run acknowledged, with nothing quarantined.
    let (handle, addr) = boot(ServerConfig {
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let preloaded = metric(&addr, &["persistent", "preloaded"]);
    assert!(
        preloaded >= live,
        "seal lost verdicts: {live} live, {preloaded} preloaded"
    );
    assert_eq!(metric(&addr, &["persistent", "quarantined"]), 0.0);
    handle.shutdown();
    handle.join();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn collapsed_counter_reconciles_with_metrics() {
    let (handle, addr) = boot(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    });

    // Concurrent identical repairs: any solve collapsed by singleflight
    // re-probes the memo, so every collapse also lands a hit.
    std::thread::scope(|scope| {
        for _ in 0..6 {
            let addr = &addr;
            scope.spawn(move || {
                let (status, body) = call(addr, "POST", "/repair", &repair_body("ATR"));
                assert_eq!(status, 200, "{body}");
            });
        }
    });
    let collapsed = metric(&addr, &["oracle_cache", "collapsed"]);
    let hits = metric(&addr, &["oracle_cache", "hits"]);
    assert!(
        collapsed <= hits,
        "collapsed ({collapsed}) cannot exceed hits ({hits})"
    );

    handle.shutdown();
    handle.join();
}
